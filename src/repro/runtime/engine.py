"""The heterogeneous runtime engine (StarPU-like, paper §IV-D).

Builds an executable runtime *from a PDL platform description*: Worker
entities become execution lanes, MemoryRegions become memory nodes,
Interconnects become the (contended) transfer fabric, and descriptor
properties feed the performance model.  This is the paper's thesis made
concrete — retargeting a program is swapping the descriptor.

Two execution modes share one API:

``sim``
    Discrete-event simulation with calibrated cost models.  Optionally
    executes kernel payloads on real arrays (functional validation while
    timing analytically).
``real``
    Actually runs kernels on host threads and reports wall-clock times
    (numpy releases the GIL in BLAS calls, so CPU workers genuinely
    parallelize).

Typical use::

    engine = RuntimeEngine(load_platform("xeon_x5550_2gpu"), scheduler="dmda")
    C, A, B = (engine.register(shape=(n, n)) for _ in range(3))
    ... partition, submit dgemm tile tasks ...
    result = engine.run()
    print(result.summary())
"""

from __future__ import annotations

import dataclasses
import threading
import time as _time
from typing import Optional, Sequence

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # repro.analysis.__init__ imports back into the runtime
    from repro.analysis.diagnostics import Diagnostic

from repro.errors import (
    PropertyError,
    RuntimeEngineError,
    SchedulerError,
    TaskFailureError,
    WatchdogTimeoutError,
    WorkerFailureError,
)
from repro.kernels.registry import KernelRegistry, default_kernel_registry
from repro.model.entities import ProcessingUnit
from repro.obs import spans as _obs
from repro.obs.bridge import record_trace_log
from repro.model.platform import Platform
from repro.perf.calibration import TASK_SCHEDULING_OVERHEAD_S
from repro.perf.models import PerfModel
from repro.perf.transfer import TransferModel
from repro.runtime.capacity import MemoryCapacityManager
from repro.runtime.coherence import CoherenceDirectory, TransferNeed
from repro.runtime.data import DataHandle
from repro.runtime.faults import FaultPolicy, ProgressClock
from repro.runtime.schedulers import Scheduler, make_scheduler
from repro.runtime.simclock import EventQueue
from repro.runtime.tasks import (
    DependencyTracker,
    RuntimeTask,
    TaskState,
    TaskTable,
)
from repro.runtime.trace import (
    FaultTrace,
    RunResult,
    TaskTrace,
    TraceLog,
    TransferTrace,
)
from repro.runtime.workers import WorkerContext, expand_workers

__all__ = ["RuntimeEngine"]


def _availability(pu: ProcessingUnit) -> "tuple[bool, Optional[Diagnostic]]":
    """Dynamic availability: AVAILABLE=false excludes a Worker.

    A *malformed* AVAILABLE value (text that is not a boolean) used to be
    swallowed by a blanket ``except`` and treated as available — silently
    scheduling work onto a lane whose descriptor is corrupt.  Now only
    the specific parse failure is caught, it resolves to **unavailable**
    (fail safe: a lane of unknown state gets no work), and the caller
    receives a diagnostic in the PDL-lint shape to surface on
    ``engine.diagnostics``.
    """
    prop = pu.descriptor.find("AVAILABLE")
    if prop is None:
        return True, None
    try:
        return prop.value.as_bool(), None
    except PropertyError as exc:
        # deferred: repro.analysis's package __init__ imports the rule
        # packs, which import this module (the diagnostics *module*
        # itself is stdlib-only by design)
        from repro.analysis.diagnostics import Diagnostic, Severity

        return False, Diagnostic(
            rule="RT001",
            severity=Severity.WARNING,
            message=(
                f"malformed AVAILABLE property on {pu.id!r}: {exc};"
                " treating the lane as unavailable"
            ),
            subject=pu.id,
            hint="set AVAILABLE to true/false (or remove the property)",
        )


def _is_available(pu: ProcessingUnit) -> bool:
    """Boolean-only view of :func:`_availability` (diagnostic dropped)."""
    ok, _ = _availability(pu)
    return ok


class _EngineCostModel:
    """CostModel protocol implementation backed by the engine's state."""

    def __init__(self, engine: "RuntimeEngine"):
        self._engine = engine

    def supports(self, task: RuntimeTask, worker: WorkerContext) -> bool:
        if worker.instance_id in self._engine._offline:
            return False  # mid-run dynamic event took this worker down
        return self._engine.registry.get(task.kernel).supports(worker.architecture)

    def exec_estimate(self, task: RuntimeTask, worker: WorkerContext) -> float:
        return self._engine.sched_estimate(task, worker)

    def transfer_estimate(self, task: RuntimeTask, worker: WorkerContext) -> float:
        engine = self._engine
        total = 0.0
        for access in task.accesses:
            need = engine.coherence.required_transfer(
                access.handle, worker.memory_node, access.mode
            )
            if need is not None:
                total += engine.transfer_model.ideal_time(
                    engine.node_anchor[need.src_node],
                    worker.entity_id,
                    need.nbytes,
                )
        return total


class _VectorCostModel:
    """Array cost model: memoized signature-keyed tables + batch rows.

    Implements both the scalar :class:`~repro.runtime.schedulers.CostModel`
    protocol (for paths that stay scalar: steal, peek, unit use) and the
    :class:`~repro.runtime.schedulers.BatchCostModel` row interface the
    vectorized schedulers score against.  Parity with
    :class:`_EngineCostModel` is by construction, not by re-derivation:

    * execution rows memoize the **exact** ``engine.sched_estimate``
      calls, keyed by cost signature (kernel + effective dims) — a tiled
      DGEMM collapses 45k model evaluations into one row;
    * transfer rows sum ``ideal_time_cached`` values (the memoized
      scalar computation) per ``(entity, memory node)`` worker group, in
      task-access order — the identical float-summation order as the
      scalar loop, hence bit-identical totals.
    """

    def __init__(self, engine: "RuntimeEngine"):
        self._engine = engine
        workers = engine.workers
        self._n = len(workers)
        self._windex = {w.instance_id: i for i, w in enumerate(workers)}
        self._arch = [w.architecture for w in workers]
        # workers sharing (entity, memory node) have identical transfer
        # costs; resolve each group once and broadcast into the row
        groups: dict[tuple[str, int], list[int]] = {}
        for i, w in enumerate(workers):
            groups.setdefault((w.entity_id, w.memory_node), []).append(i)
        self._groups = [
            (eid, node, np.array(ix, dtype=np.intp))
            for (eid, node), ix in groups.items()
        ]
        # worker index → group index, for scattering per-group totals
        # back into a per-worker row with one fancy index
        self._group_of_worker = np.empty(self._n, dtype=np.intp)
        for g, (_eid, _node, ix) in enumerate(self._groups):
            self._group_of_worker[ix] = g
        self._ngroups = len(self._groups)
        # many groups can share one memory node (e.g. mesh tiles over a
        # shared memory); resolve read sources once per distinct node
        self._distinct_nodes = sorted({node for _eid, node, _ix in self._groups})
        node_slot = {node: s for s, node in enumerate(self._distinct_nodes)}
        self._node_slot_of_group = [
            node_slot[node] for _eid, node, _ix in self._groups
        ]
        #: cost signature id → exec-seconds row (np.inf = no implementation)
        self._exec_rows: dict[int, np.ndarray] = {}
        #: cost signature id → *truth-model* exec row (run durations);
        #: separate from the scheduler rows because ``sched_perf_model``
        #: may deliberately diverge from simulated truth
        self._truth_rows: dict[int, np.ndarray] = {}
        #: handle id → (validity epoch, per-group ideal-transfer row);
        #: valid until the handle's coherence state changes
        self._handle_rows: dict[int, tuple[int, np.ndarray]] = {}
        #: kernel kind id → bool support row over workers
        self._kind_rows: list[np.ndarray] = []
        self._kind_matrix: Optional[np.ndarray] = None

    # -- interning bridges ------------------------------------------------
    def kind_of(self, task: RuntimeTask) -> int:
        kid = task.kind_id
        if kid is None:
            # task bypassed engine.submit (unit-test construction)
            self._engine.task_table.add(task)
            kid = task.kind_id
        self._ensure_kind(kid)
        return kid

    def _ensure_kind(self, kid: int) -> None:
        table = self._engine.task_table
        registry = self._engine.registry
        while len(self._kind_rows) <= kid:
            kernel_def = registry.get(table.kernel_names[len(self._kind_rows)])
            self._kind_rows.append(
                np.array([kernel_def.supports(a) for a in self._arch], dtype=bool)
            )
            self._kind_matrix = None

    def _matrix(self) -> np.ndarray:
        if self._kind_matrix is None:
            self._kind_matrix = np.vstack(self._kind_rows)
        return self._kind_matrix

    # -- batch rows -------------------------------------------------------
    def exec_row(self, task: RuntimeTask) -> np.ndarray:
        sid = task.cost_sig
        if sid is None:
            self._engine.task_table.add(task)
            sid = task.cost_sig
        row = self._exec_rows.get(sid)
        if row is None:
            engine = self._engine
            rep = engine.task_table.sig_representative[sid]
            kernel_def = engine.registry.get(rep.kernel)
            row = np.empty(self._n, dtype=np.float64)
            for i, worker in enumerate(engine.workers):
                if kernel_def.supports(worker.architecture):
                    row[i] = engine.sched_estimate(rep, worker)
                else:
                    row[i] = np.inf
            self._exec_rows[sid] = row
        return row

    def _handle_group_row(self, handle) -> Optional[np.ndarray]:
        """Per-group ideal read-fetch seconds for one handle, memoized
        against the handle's coherence epoch.  ``None`` means the handle
        is resident everywhere it matters (an all-zero row)."""
        engine = self._engine
        coherence = engine.coherence
        epoch = coherence.epoch_of(handle)
        cached = self._handle_rows.get(handle.id)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        srcs = coherence.needed_src_many(handle, self._distinct_nodes)
        row: Optional[np.ndarray] = None
        if any(s >= 0 for s in srcs):
            ideal = engine.transfer_model.ideal_time_cached
            anchor = engine.node_anchor
            nbytes = handle.nbytes
            slots = self._node_slot_of_group
            row = np.zeros(self._ngroups, dtype=np.float64)
            for g, (entity_id, _node, _ix) in enumerate(self._groups):
                src = srcs[slots[g]]
                if src >= 0:
                    row[g] = ideal(anchor[src], entity_id, nbytes)
        self._handle_rows[handle.id] = (epoch, row)
        return row

    def transfer_row(self, task: RuntimeTask) -> Optional[np.ndarray]:
        """Per-worker read-fetch seconds, or ``None`` when all zero.

        Elementwise adds in task-access order reproduce the scalar
        loop's float-summation order per worker exactly; skipping
        all-zero rows is float-identical because every contribution is
        non-negative (``x + 0.0 == x``)."""
        total = None
        for access in task.accesses:
            if not access.mode.reads:
                continue
            group_row = self._handle_group_row(access.handle)
            if group_row is None:
                continue
            total = group_row.copy() if total is None else total + group_row
        if total is None:
            return None
        return total[self._group_of_worker]

    def cost_row(self, task: RuntimeTask, data_aware: bool) -> np.ndarray:
        # callers treat the row as read-only, so the memoized exec row
        # may be returned as-is when there is nothing to add
        row = self.exec_row(task)
        if data_aware:
            extra = self.transfer_row(task)
            if extra is not None:
                row = row + extra
        offline = self._engine._offline
        if offline:
            mask = np.array(
                [w.instance_id in offline for w in self._engine.workers],
                dtype=bool,
            )
            row = np.where(mask, np.inf, row)
        return row

    def eager_mask(self, kinds: np.ndarray, worker_index: int) -> np.ndarray:
        m = self._matrix()
        if m.shape[0] == 1:
            # single kernel kind: a scalar bool broadcasts in the
            # caller's `live & mask`, skipping the fancy index
            return m[0, worker_index]
        return m[kinds, worker_index]

    def worker_online(self, worker_index: int) -> bool:
        offline = self._engine._offline
        if not offline:
            return True
        return self._engine.workers[worker_index].instance_id not in offline

    def invalidate_exec(self) -> None:
        """Drop memoized execution rows (descriptor properties changed)."""
        self._exec_rows.clear()
        self._truth_rows.clear()

    def truth_duration(self, task: RuntimeTask, worker: WorkerContext) -> float:
        """Memoized ``engine.exec_estimate`` — the simulated-truth run
        duration, which (like the scheduler estimate) depends only on the
        task's cost signature and the worker."""
        sid = task.cost_sig
        if sid is None:
            self._engine.task_table.add(task)
            sid = task.cost_sig
        row = self._truth_rows.get(sid)
        if row is None:
            engine = self._engine
            rep = engine.task_table.sig_representative[sid]
            kernel_def = engine.registry.get(rep.kernel)
            row = np.empty(self._n, dtype=np.float64)
            for i, w in enumerate(engine.workers):
                if kernel_def.supports(w.architecture):
                    row[i] = engine.exec_estimate(rep, w)
                else:
                    row[i] = np.inf
            self._truth_rows[sid] = row
        return float(row[self._windex[worker.instance_id]])

    # -- scalar CostModel protocol ---------------------------------------
    def supports(self, task: RuntimeTask, worker: WorkerContext) -> bool:
        if worker.instance_id in self._engine._offline:
            return False
        return self._engine.registry.get(task.kernel).supports(worker.architecture)

    def exec_estimate(self, task: RuntimeTask, worker: WorkerContext) -> float:
        return float(self.exec_row(task)[self._windex[worker.instance_id]])

    def transfer_estimate(self, task: RuntimeTask, worker: WorkerContext) -> float:
        engine = self._engine
        node = worker.memory_node
        total = 0.0
        for access in task.accesses:
            if not access.mode.reads:
                continue
            src = engine.coherence.needed_src(access.handle, node)
            if src >= 0:
                total += engine.transfer_model.ideal_time_cached(
                    engine.node_anchor[src],
                    worker.entity_id,
                    access.handle.nbytes,
                )
        return total


class RuntimeEngine:
    """A StarPU-like runtime instantiated from a platform description."""

    def __init__(
        self,
        platform: Platform,
        *,
        scheduler: str | Scheduler = "dmda",
        registry: Optional[KernelRegistry] = None,
        perf_model: Optional[PerfModel] = None,
        sched_perf_model: Optional[PerfModel] = None,
        execute_kernels: bool = False,
        task_overhead_s: float = TASK_SCHEDULING_OVERHEAD_S,
        prefetch: bool = False,
        model_capacity: bool = False,
        model_contention: bool = True,
        model_interference: bool = False,
        vectorized: bool = True,
    ):
        self.platform = platform
        #: sim runs score ready tasks through numpy-backed cost rows
        #: (bit-identical placements, 10-100x event throughput); real
        #: mode always re-attaches the scalar cost model
        self.vectorized = vectorized
        #: runtime-emitted findings (e.g. malformed descriptor properties),
        #: in the PDL-lint Diagnostic shape
        self.diagnostics: "list[Diagnostic]" = []
        self.registry = registry if registry is not None else default_kernel_registry()
        self.perf = perf_model if perf_model is not None else PerfModel()
        #: model driving *scheduler placement decisions*; defaults to the
        #: simulation-truth model.  Passing a distinct model (e.g. a
        #: tuned :class:`~repro.tune.model.HistoryPerfModel`) makes the
        #: scheduler plan with measured estimates while simulated task
        #: durations stay governed by ``perf_model`` — the setup needed
        #: to evaluate how estimate quality affects placement.
        self.sched_perf = sched_perf_model if sched_perf_model is not None else self.perf
        self.execute_kernels = execute_kernels
        self.task_overhead_s = task_overhead_s
        #: stage the next queued task's operands while the current one runs
        self.prefetch = prefetch
        #: enforce MemoryRegion SIZE limits with LRU eviction + write-back
        self.model_capacity = model_capacity
        self.capacity: Optional["MemoryCapacityManager"] = None

        # --- memory nodes -------------------------------------------------
        # node 0 is host RAM anchored at the first Master; every non-Master
        # PU owning a MemoryRegion gets its own node.
        if not platform.masters:
            raise RuntimeEngineError("platform has no Master processing unit")
        self.node_anchor: dict[int, str] = {0: platform.masters[0].id}
        self._node_of_entity: dict[str, int] = {}
        next_node = 1
        for pu in platform.walk():
            if pu.kind != "Master" and pu.memory_regions:
                self._node_of_entity[pu.id] = next_node
                self.node_anchor[next_node] = pu.id
                next_node += 1
        # PUs without own memory inherit the nearest ancestor's node (or 0)
        for pu in platform.walk():
            if pu.id in self._node_of_entity:
                continue
            node = 0
            for ancestor in pu.ancestors():
                if ancestor.id in self._node_of_entity:
                    node = self._node_of_entity[ancestor.id]
                    break
            self._node_of_entity[pu.id] = node

        # --- workers -----------------------------------------------------------
        # dynamic availability (repro.dynamic events) is honored here:
        # Workers whose descriptor says AVAILABLE=false are not lanes,
        # and a malformed AVAILABLE excludes the lane with a diagnostic
        leaf_workers = []
        for pu in platform.walk():
            if pu.kind != "Worker":
                continue
            ok, diag = _availability(pu)
            if diag is not None:
                self.diagnostics.append(diag)
            if ok:
                leaf_workers.append(pu)
        if not leaf_workers:
            raise RuntimeEngineError(
                f"platform {platform.name!r} declares no (available) Worker PUs"
            )
        self.workers: list[WorkerContext] = expand_workers(
            leaf_workers, self._node_of_entity
        )

        # --- plumbing -------------------------------------------------------------
        self.transfer_model = TransferModel(
            platform,
            model_contention=model_contention,
            model_interference=model_interference,
        )
        self.coherence = CoherenceDirectory()
        #: struct-of-arrays mirror of the task population (state /
        #: kernel / signature / worker / ready-time columns)
        self.task_table = TaskTable()
        self.scheduler: Scheduler = (
            scheduler if isinstance(scheduler, Scheduler) else make_scheduler(scheduler)
        )
        self._vec_cost: Optional[_VectorCostModel] = None
        if self.vectorized:
            self._vec_cost = _VectorCostModel(self)
            self.scheduler.attach(self.workers, self._vec_cost)
            self.scheduler.enable_batch(self._vec_cost)
            # contended transfer scheduling may read link latency/
            # bandwidth thousands of times; memoize the parsed values
            # (dropped on invalidate_routes, so dynamic interconnect
            # events still take effect)
            self.transfer_model.param_cache_enabled = True
        else:
            self.scheduler.attach(self.workers, _EngineCostModel(self))

        self._tasks: list[RuntimeTask] = []
        self._tracker = DependencyTracker()
        self._handles: list[DataHandle] = []
        self._ran = False
        #: worker instance ids taken down by mid-run dynamic events
        self._offline: set[str] = set()
        #: real mode only: per-lane kill switches (live during run_real)
        self._kill_events: Optional[dict[str, threading.Event]] = None
        self._kill_reasons: dict[str, str] = {}
        #: real mode only: per-lane graceful-retirement requests
        self._retire_events: Optional[dict[str, threading.Event]] = None
        self._retire_reasons: dict[str, str] = {}

    # ------------------------------------------------------------------
    # data API
    # ------------------------------------------------------------------
    def register(
        self,
        array: Optional[np.ndarray] = None,
        *,
        shape: Optional[Sequence[int]] = None,
        dtype=np.float64,
        name: str = "",
    ) -> DataHandle:
        """Register a datum with the runtime (array, or shape for sim-only)."""
        handle = DataHandle(shape=shape, dtype=dtype, array=array, name=name)
        self._handles.append(handle)
        return handle

    # ------------------------------------------------------------------
    # task API
    # ------------------------------------------------------------------
    def submit(
        self,
        kernel: str,
        accesses: Sequence[tuple],
        *,
        dims: Optional[tuple] = None,
        args: Optional[dict] = None,
        priority: int = 0,
        tag: str = "",
    ) -> RuntimeTask:
        """Submit one task; dependencies are inferred from access modes."""
        if self._ran:
            raise RuntimeEngineError(
                "engine already ran; create a new engine for another run"
            )
        kernel_def = self.registry.get(kernel)  # raises on unknown kernel
        if not any(kernel_def.supports(w.architecture) for w in self.workers):
            raise SchedulerError(
                f"kernel {kernel!r} has no implementation for any worker"
                f" architecture on platform {self.platform.name!r}"
                f" (architectures: {sorted({w.architecture for w in self.workers})})"
            )
        task = RuntimeTask(
            kernel, accesses, dims=dims, args=args, priority=priority, tag=tag,
            # run-local ids (1..n in submit order): two engines fed the
            # same DAG mint the same ids → identical default tags →
            # comparable trace fingerprints across engine instances
            task_id=len(self._tasks) + 1,
        )
        for access in task.accesses:
            if access.handle.is_partitioned:
                raise RuntimeEngineError(
                    f"task {task.tag}: handle {access.handle.name!r} is"
                    " partitioned; submit tasks on its leaf children"
                )
        self._tracker.register(task)
        self._tasks.append(task)
        self.task_table.add(task)
        return task

    @property
    def task_count(self) -> int:
        return len(self._tasks)

    # ------------------------------------------------------------------
    # cost estimation (also used by schedulers through _EngineCostModel)
    # ------------------------------------------------------------------
    def _estimate_with(
        self, model: PerfModel, task: RuntimeTask, worker: WorkerContext
    ) -> float:
        kernel_def = self.registry.get(task.kernel)
        dims = task.dims
        if dims is None:
            # derive a size proxy from the first access
            dims = task.accesses[0].handle.shape
        flops = kernel_def.flops(dims)
        nbytes = kernel_def.bytes_touched(dims)
        return model.estimate(
            worker.pu,
            kernel=task.kernel,
            flops=flops,
            bytes_touched=nbytes,
            dims=dims if len(dims) == 3 else None,
        )

    def exec_estimate(self, task: RuntimeTask, worker: WorkerContext) -> float:
        """Simulated-truth duration of ``task`` on ``worker``."""
        return self._estimate_with(self.perf, task, worker)

    def sched_estimate(self, task: RuntimeTask, worker: WorkerContext) -> float:
        """The estimate scheduler placement decisions see (may differ
        from simulated truth when ``sched_perf_model`` was given)."""
        return self._estimate_with(self.sched_perf, task, worker)

    # ------------------------------------------------------------------
    # simulated execution
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        gather_to_home: bool = True,
        dynamic_events: Optional[Sequence[tuple]] = None,
        fault_policy: Optional[FaultPolicy] = None,
    ) -> RunResult:
        """Run all submitted tasks in discrete-event simulation (see
        :meth:`_run_sim` for the semantics of every parameter).

        When a tracer is active (:mod:`repro.obs`) the run executes under
        a ``runtime.run`` span and the finished :class:`TraceLog` is
        replayed as sim-clock spans (per-task, per-transfer, per-fault),
        so wall-time and simulated-time views align in one trace.  With
        tracing disabled this wrapper adds one global read.
        """
        tracer = _obs.get_tracer()
        if tracer is None:
            return self._run_sim(
                gather_to_home=gather_to_home,
                dynamic_events=dynamic_events,
                fault_policy=fault_policy,
            )
        with tracer.span(
            "runtime.run",
            platform=self.platform.name,
            scheduler=self.scheduler.name,
            mode="sim",
            tasks=len(self._tasks),
            workers=len(self.workers),
        ) as span_:
            result = self._run_sim(
                gather_to_home=gather_to_home,
                dynamic_events=dynamic_events,
                fault_policy=fault_policy,
            )
            span_.set(
                makespan_s=result.makespan,
                transfers=result.transfer_count,
                task_failures=result.task_failures,
            )
            record_trace_log(tracer, result.trace, parent=span_, mode="sim")
            return result

    def _run_sim(
        self,
        *,
        gather_to_home: bool = True,
        dynamic_events: Optional[Sequence[tuple]] = None,
        fault_policy: Optional[FaultPolicy] = None,
    ) -> RunResult:
        """Run all submitted tasks in discrete-event simulation.

        ``gather_to_home`` appends the transfers that bring written data
        back to host memory (as the paper's experiment must, to hand the
        result matrix back to the caller) and counts them in the makespan.

        ``dynamic_events`` is an optional list of ``(time_s, event)``
        pairs (see :mod:`repro.dynamic.events`) applied *while the
        simulation runs* — the "highly dynamic run-time schedulers" of
        the paper's conclusion.  A worker taken offline finishes its
        current task, its queued tasks are drained back to the scheduler,
        and no new work reaches it until a matching online event.  A
        :class:`~repro.dynamic.WorkerFault` additionally aborts the
        lane's in-flight task (requeued to survivors); a
        :class:`~repro.dynamic.TaskFault` fails one attempt of a task,
        retried under ``fault_policy``.

        ``fault_policy`` configures retry/backoff for injected task
        faults (defaults to :class:`~repro.runtime.faults.FaultPolicy`).
        """
        # lazy: repro.dynamic's package __init__ imports this module
        from repro.dynamic.events import TaskFault, WorkerFault

        if self._ran:
            raise RuntimeEngineError("engine already ran")
        self._ran = True
        policy = fault_policy if fault_policy is not None else FaultPolicy()
        fault_stats = {
            "task_failures": 0,
            "retries": 0,
            "requeues": 0,
            "worker_failures": 0,
        }
        wall_start = _time.perf_counter()

        clock = EventQueue()
        trace = TraceLog()
        self.transfer_model.reset()
        self.coherence.reset()
        for worker in self.workers:
            worker.reset()

        if self.model_capacity:
            node_capacity: dict[int, Optional[float]] = {0: None}
            for node, anchor_id in self.node_anchor.items():
                if node == 0:
                    continue
                anchor = self.platform.pu(anchor_id)
                sizes = [
                    r.size_bytes
                    for r in anchor.memory_regions
                    if r.size_bytes is not None
                ]
                node_capacity[node] = sum(sizes) if sizes else None
            self.capacity = MemoryCapacityManager(self.coherence, node_capacity)

        def charge_writeback(need: TransferNeed, when: float) -> float:
            est = self.transfer_model.schedule(
                self.node_anchor[need.src_node],
                self.node_anchor[need.dst_node],
                need.nbytes,
                when,
            )
            trace.record_transfer(
                TransferTrace(
                    handle_name=need.handle.name,
                    nbytes=need.nbytes,
                    src_node=need.src_node,
                    dst_node=need.dst_node,
                    start=est.start,
                    end=est.finish,
                )
            )
            return est.finish

        pending = sum(1 for t in self._tasks if t.state != TaskState.DONE)
        written_handles: dict[int, DataHandle] = {}
        idle: dict[str, WorkerContext] = {}
        worker_by_id = {w.instance_id: w for w in self.workers}
        worker_pos = {w.instance_id: i for i, w in enumerate(self.workers)}
        table = self.task_table
        # vectorized mode routes per-task resolution through the memoized
        # lanes (identical results); scalar mode keeps the reference
        # implementations so the two paths stay independently checkable
        vec = self._vec_cost
        required_transfer = (
            self.coherence.required_transfer_cached
            if vec is not None
            else self.coherence.required_transfer
        )
        #: task id → (memory node prefetch targeted, initiation time);
        #: commits are deferred until the task actually starts there
        prefetched_until: dict[int, tuple[int, float]] = {}

        def wake_idle() -> None:
            for worker in list(idle.values()):
                del idle[worker.instance_id]
                clock.schedule_call_in(0.0, worker_tick, worker)

        def worker_tick(worker: WorkerContext) -> None:
            now = clock.now
            if worker.instance_id in self._offline:
                return  # taken down by a dynamic event; no new work
            if now < worker.busy_until - 1e-15:
                return  # still executing; its completion event will re-tick
            task = self.scheduler.next_task(worker, now)
            if task is None:
                idle[worker.instance_id] = worker
                return
            start_task(task, worker, now)

        def stage_operands(
            task: RuntimeTask, worker: WorkerContext, now: float
        ) -> float:
            """Schedule missing-operand transfers; returns their finish time."""
            node = worker.memory_node
            data_ready = now
            for access in task.accesses:
                need = required_transfer(access.handle, node, access.mode)
                if need is None:
                    # already resident (or write-only): room still needed
                    # for write-only claims under capacity modeling
                    if self.capacity is not None:
                        if self.coherence.is_valid_on(access.handle, node):
                            self.capacity.touch(access.handle, node, now)
                        elif access.mode.writes:
                            ready = self.capacity.make_room(
                                node, access.handle.nbytes, now,
                                writeback=charge_writeback,
                            )
                            self.capacity.note_resident(
                                access.handle, node, ready
                            )
                            data_ready = max(data_ready, ready)
                    continue
                start_at = now
                if self.capacity is not None:
                    start_at = self.capacity.make_room(
                        node, need.nbytes, now, writeback=charge_writeback
                    )
                est = self.transfer_model.schedule(
                    self.node_anchor[need.src_node],
                    worker.entity_id,
                    need.nbytes,
                    start_at,
                )
                self.coherence.note_transfer(need)
                if self.capacity is not None:
                    self.capacity.note_resident(access.handle, node, est.finish)
                trace.record_transfer(
                    TransferTrace(
                        handle_name=need.handle.name,
                        nbytes=need.nbytes,
                        src_node=need.src_node,
                        dst_node=node,
                        start=est.start,
                        end=est.finish,
                    )
                )
                data_ready = max(data_ready, est.finish)
            return data_ready

        def start_task(task: RuntimeTask, worker: WorkerContext, now: float) -> None:
            if task.fault_armed:
                # an injected TaskFault armed before the task started:
                # this attempt fails immediately; the retry policy decides
                task.fault_armed = False
                fail_attempt(task, now, worker.instance_id, "injected task fault")
                clock.schedule_call_in(0.0, worker_tick, worker)
                return
            task.state = TaskState.RUNNING
            table.state[task.table_index] = 2  # RUNNING
            table.worker[task.table_index] = worker_pos[worker.instance_id]
            # pin the task's working set first so staging one operand can
            # never evict another operand of the same task
            if self.capacity is not None:
                for access in task.accesses:
                    self.capacity.pin(access.handle, worker.memory_node)
            # stage operands; a prefetch noted for this worker's node is
            # committed here, back-dated to its initiation time, so the
            # transfers overlap the previous task's compute — and a task
            # that was drained or stolen after the peek never charges
            # transfers or link occupancy it did not use
            staged = prefetched_until.pop(task.id, None)
            stage_at = now
            if staged is not None and staged[0] == worker.memory_node:
                stage_at = staged[1]
            data_ready = max(now, stage_operands(task, worker, stage_at))
            transfer_wait = data_ready - now

            start = data_ready + self.task_overhead_s
            if vec is not None:
                duration = vec.truth_duration(task, worker)
            else:
                duration = self.exec_estimate(task, worker)
            end = start + duration

            # coherence transition at start (write ownership is claimed
            # when the kernel begins mutating the buffer)
            for access in task.accesses:
                self.coherence.note_access(
                    access.handle, worker.memory_node, access.mode
                )
                if access.mode.writes:
                    written_handles[access.handle.id] = access.handle
                if self.capacity is not None and access.mode.writes:
                    self.capacity.note_invalidated(
                        access.handle, worker.memory_node
                    )
                    self.capacity.note_resident(
                        access.handle, worker.memory_node, start
                    )

            worker.busy_until = end
            worker.is_idle = False
            task.worker_id = worker.instance_id
            task.start_time = start
            task.end_time = end
            incarnation = task.incarnation
            clock.schedule_call(
                end, finish_task, (task, worker, transfer_wait, incarnation)
            )

            # data prefetch: note the *next* queued task's operands for
            # staging while this one computes (StarPU's dmda-prefetch
            # behaviour); the commit is deferred to its own start
            if self.prefetch:
                upcoming = self.scheduler.peek(worker)
                if (
                    upcoming is not None
                    and upcoming.id not in prefetched_until
                ):
                    prefetched_until[upcoming.id] = (worker.memory_node, now)

        def finish_task(item: tuple) -> None:
            # single-tuple signature: scheduled through the clock's
            # closure-free lane (no per-completion lambda allocation)
            task, worker, transfer_wait, incarnation = item
            nonlocal pending
            now = clock.now
            if task.incarnation != incarnation or task.state is not TaskState.RUNNING:
                return  # attempt aborted by a fault event; stale completion
            # the payload runs at completion, not dispatch, so an aborted
            # attempt never half-applies a non-idempotent kernel
            if self.execute_kernels:
                self._execute_payload(task, worker)
            task.state = TaskState.DONE
            table.state[task.table_index] = 3  # DONE
            pending -= 1
            worker.busy_time += task.duration or 0.0
            worker.tasks_executed += 1
            if self.capacity is not None:
                for access in task.accesses:
                    self.capacity.unpin(access.handle, worker.memory_node)
                    self.capacity.touch(access.handle, worker.memory_node, now)
            trace.record_task(
                TaskTrace(
                    task_id=task.id,
                    tag=task.tag,
                    kernel=task.kernel,
                    worker_id=worker.instance_id,
                    architecture=worker.architecture,
                    start=task.start_time or 0.0,
                    end=now,
                    transfer_wait=transfer_wait,
                )
            )
            newly_ready = [
                dep for dep in task.dependents if dep.notify_producer_done()
            ]
            for dep in newly_ready:
                dep.state = TaskState.READY
                table.mark_ready(dep.table_index, now)
                self.scheduler.task_ready(dep, now)
            if newly_ready:
                wake_idle()
            worker_tick(worker)

        def record_fault(kind: str, task_tag: str, worker_id: str, detail: str) -> None:
            trace.record_fault(
                FaultTrace(kind, clock.now, task_tag, worker_id, detail)
            )

        def release_pins(task: RuntimeTask, worker: WorkerContext) -> None:
            if self.capacity is not None:
                for access in task.accesses:
                    self.capacity.unpin(access.handle, worker.memory_node)

        def fail_attempt(
            task: RuntimeTask, now: float, worker_id: str, detail: str
        ) -> None:
            """One execution attempt failed; retry with backoff or give up."""
            task.incarnation += 1
            task.attempt += 1
            task.last_error = detail
            fault_stats["task_failures"] += 1
            record_fault("task-fault", task.tag, worker_id or "", detail)
            if task.state is TaskState.RUNNING:
                worker = worker_by_id[task.worker_id]
                release_pins(task, worker)
                worker.busy_until = now
                clock.schedule_call_in(0.0, worker_tick, worker)
            task.worker_id = None
            task.start_time = task.end_time = None
            table.worker[task.table_index] = -1
            if task.attempt > policy.max_retries:
                task.state = TaskState.FAILED
                table.state[task.table_index] = 4  # FAILED
                raise TaskFailureError(
                    f"task {task.tag!r} failed permanently after"
                    f" {task.attempt} attempt(s); last error: {detail}",
                    task_tag=task.tag,
                    attempts=task.attempt,
                )
            task.state = TaskState.READY
            table.state[task.table_index] = 1  # READY
            fault_stats["retries"] += 1
            delay = policy.backoff(task.attempt)
            record_fault(
                "retry", task.tag, worker_id or "",
                f"attempt {task.attempt + 1} after {delay:.4g}s backoff",
            )

            def resubmit(t=task):
                self.scheduler.task_ready(t, clock.now)
                wake_idle()

            clock.schedule_in(delay, resubmit)

        def abort_inflight(worker: WorkerContext, now: float, reason: str) -> None:
            """Requeue the task executing on a faulted lane (work lost)."""
            for task in self._tasks:
                if (
                    task.state is TaskState.RUNNING
                    and task.worker_id == worker.instance_id
                ):
                    task.incarnation += 1  # the scheduled finish is void
                    release_pins(task, worker)
                    task.worker_id = None
                    task.start_time = task.end_time = None
                    task.state = TaskState.READY
                    table.state[task.table_index] = 1  # READY
                    table.worker[task.table_index] = -1
                    fault_stats["requeues"] += 1
                    record_fault("requeue", task.tag, worker.instance_id, reason)
                    self.scheduler.task_ready(task, now)
            worker.busy_until = now

        def on_dynamic_event(event) -> None:
            now = clock.now
            event.apply(self.platform)
            if isinstance(event, TaskFault):
                target = next(
                    (t for t in self._tasks if t.tag == event.task_tag), None
                )
                if target is None:
                    raise RuntimeEngineError(
                        f"TaskFault: no submitted task with tag"
                        f" {event.task_tag!r}"
                    )
                if target.state in (TaskState.DONE, TaskState.FAILED):
                    return  # completed before the fault landed
                if target.state is TaskState.RUNNING:
                    fail_attempt(target, now, target.worker_id, event.describe())
                else:
                    target.fault_armed = True
                wake_idle()
                return
            # descriptor properties feed the cost models; drop stale rates
            self.perf.invalidate()
            if self.sched_perf is not self.perf:
                self.sched_perf.invalidate()
            if self._vec_cost is not None:
                # memoized execution rows are derived from the (now
                # stale) model caches; rebuild on next score
                self._vec_cost.invalidate_exec()
            if event.affects_interconnect:
                self.transfer_model.invalidate_routes()
            for worker in self.workers:
                if worker.entity_id != event.pu_id:
                    continue
                available, diag = _availability(worker.pu)
                if diag is not None:
                    self.diagnostics.append(diag)
                if available:
                    if worker.instance_id in self._offline and not worker.retired:
                        self._offline.discard(worker.instance_id)
                        idle.pop(worker.instance_id, None)
                        clock.schedule_call_in(0.0, worker_tick, worker)
                else:
                    if worker.instance_id not in self._offline:
                        self._offline.add(worker.instance_id)
                        idle.pop(worker.instance_id, None)
                        if isinstance(event, WorkerFault):
                            # abrupt death: in-flight work is lost and
                            # requeued; the lane never comes back
                            worker.retired = True
                            fault_stats["worker_failures"] += 1
                            record_fault(
                                "worker-fault", "", worker.instance_id,
                                event.describe(),
                            )
                            abort_inflight(worker, now, event.describe())
                        # re-queue whatever was bound to this worker
                        for task in self.scheduler.drain(worker):
                            fault_stats["requeues"] += 1
                            record_fault(
                                "requeue", task.tag, worker.instance_id,
                                "queued work drained off offline lane",
                            )
                            self.scheduler.task_ready(task, now)
            wake_idle()

        # seed: initially-ready tasks and all workers
        for task in self._tasks:
            if task.ready:
                task.state = TaskState.READY
                table.mark_ready(task.table_index, 0.0)
                self.scheduler.task_ready(task, 0.0)
        for worker in self.workers:
            clock.schedule_call(0.0, worker_tick, worker)
        for when, event in dynamic_events or ():
            clock.schedule_call(float(when), on_dynamic_event, event)

        clock.run()

        if pending:
            raise RuntimeEngineError(
                self._stall_diagnosis("simulation", pending, self.workers)
            )

        makespan = trace.makespan
        if gather_to_home:
            makespan = self._gather(written_handles.values(), makespan, trace)

        wall = _time.perf_counter() - wall_start
        return RunResult(
            makespan=makespan,
            mode="sim",
            scheduler=self.scheduler.name,
            task_count=len(self._tasks),
            trace=trace,
            transfer_count=self.coherence.transfer_count,
            bytes_transferred=self.coherence.bytes_transferred,
            wall_time=wall,
            eviction_count=(
                self.capacity.eviction_count if self.capacity is not None else 0
            ),
            writeback_bytes=(
                self.capacity.writeback_bytes if self.capacity is not None else 0.0
            ),
            task_failures=fault_stats["task_failures"],
            retry_count=fault_stats["retries"],
            requeue_count=fault_stats["requeues"],
            worker_failures=fault_stats["worker_failures"],
            diagnostics=self._diagnostic_payloads(),
        )

    def _diagnostic_payloads(self) -> list:
        """Runtime findings in canonical order as JSON payloads, so the
        result of a degraded run carries its own health report."""
        return [
            diag.to_payload()
            for diag in sorted(self.diagnostics, key=lambda d: d.sort_key())
        ]

    def _stall_diagnosis(
        self,
        where: str,
        pending: int,
        workers: Sequence[WorkerContext],
        running: Optional[dict[str, str]] = None,
    ) -> str:
        """Human-readable account of why no forward progress is possible."""
        by_state: dict[str, list[str]] = {}
        for t in self._tasks:
            if t.state not in (TaskState.DONE, TaskState.FAILED):
                by_state.setdefault(t.state.value, []).append(t.tag)
        online = [w for w in workers if w.instance_id not in self._offline]
        lines = [f"{where} stalled with {pending} unfinished tasks"]
        for state, tags in sorted(by_state.items()):
            shown = ", ".join(tags[:8]) + (", ..." if len(tags) > 8 else "")
            lines.append(f"  {state}: {len(tags)} task(s) [{shown}]")
        if running:
            lines.append(
                "  running: "
                + ", ".join(f"{w}={t}" for w, t in sorted(running.items()))
            )
        if self._offline:
            lines.append(f"  offline lanes: {sorted(self._offline)}")
        lines.append(
            f"  online lanes: {[w.instance_id for w in online]}"
        )
        orphans = [
            t.tag
            for t in self._tasks
            if t.state in (TaskState.READY, TaskState.BLOCKED)
            and not any(
                self.registry.get(t.kernel).supports(w.architecture)
                for w in online
            )
        ]
        if orphans:
            lines.append(
                f"  no compatible online lane for: {orphans[:8]}"
                f"{' ...' if len(orphans) > 8 else ''}"
            )
        lines.append("  (dependency cycle, scheduler bug, or unrecovered fault)")
        return "\n".join(lines)

    def _gather(self, handles, start_time: float, trace: TraceLog) -> float:
        """Flush written handles back to the host node; returns new makespan."""
        end = start_time
        for handle in handles:
            need = self.coherence.flush_to_home(handle)
            if need is None:
                continue
            est = self.transfer_model.schedule(
                self.node_anchor[need.src_node],
                self.node_anchor[need.dst_node],
                need.nbytes,
                start_time,
            )
            self.coherence.note_transfer(need)
            trace.record_transfer(
                TransferTrace(
                    handle_name=need.handle.name,
                    nbytes=need.nbytes,
                    src_node=need.src_node,
                    dst_node=need.dst_node,
                    start=est.start,
                    end=est.finish,
                )
            )
            end = max(end, est.finish)
        return end

    def _execute_payload(self, task: RuntimeTask, worker: WorkerContext) -> None:
        impl = self.registry.get(task.kernel).variant_for(worker.architecture)
        arrays = [access.handle.require_array() for access in task.accesses]
        impl.fn(*arrays, **task.args)

    # ------------------------------------------------------------------
    # real (threaded) execution
    # ------------------------------------------------------------------
    def kill_worker(self, instance_id: str, *, reason: str = "") -> None:
        """Abruptly kill one real-mode worker lane (fault injection).

        Thread-safe; callable from a timer or another thread while
        :meth:`run_real` executes.  The lane stops claiming work, its
        claimed-but-unexecuted task and queued tasks are requeued to
        surviving compatible lanes, and the run continues degraded.
        """
        events = self._kill_events
        if events is None or instance_id not in events:
            raise RuntimeEngineError(
                f"kill_worker: no live lane {instance_id!r}"
                " (only valid while run_real executes)"
            )
        self._kill_reasons[instance_id] = reason or "killed"
        events[instance_id].set()

    def retire_worker(self, instance_id: str, *, reason: str = "") -> None:
        """Gracefully retire one real-mode worker lane (scale-down).

        Thread-safe, like :meth:`kill_worker` — but where a kill abandons
        the lane's claimed task mid-flight, retirement is cooperative:
        the lane finishes the task it is executing, its *queued* tasks
        are drained and requeued to surviving compatible lanes, and the
        lane leaves the fleet without counting as a worker failure.
        """
        events = self._retire_events
        if events is None or instance_id not in events:
            raise RuntimeEngineError(
                f"retire_worker: no live lane {instance_id!r}"
                " (only valid while run_real executes)"
            )
        self._retire_reasons[instance_id] = reason or "retired"
        events[instance_id].set()

    def run_real(
        self,
        *,
        max_threads: Optional[int] = None,
        fault_policy: Optional[FaultPolicy] = None,
        watchdog_s: Optional[float] = None,
        kill_at: Optional[Sequence[tuple[float, str]]] = None,
    ) -> RunResult:
        """Execute all tasks for real on host threads (semantics in
        :meth:`_run_real_impl`); traced like :meth:`run`, but replayed
        task spans stay on the wall clock anchored at the run's start."""
        tracer = _obs.get_tracer()
        if tracer is None:
            return self._run_real_impl(
                max_threads=max_threads,
                fault_policy=fault_policy,
                watchdog_s=watchdog_s,
                kill_at=kill_at,
            )
        with tracer.span(
            "runtime.run_real",
            platform=self.platform.name,
            scheduler=self.scheduler.name,
            mode="real",
            tasks=len(self._tasks),
        ) as span_:
            start = span_.start
            result = self._run_real_impl(
                max_threads=max_threads,
                fault_policy=fault_policy,
                watchdog_s=watchdog_s,
                kill_at=kill_at,
            )
            span_.set(
                makespan_s=result.makespan,
                task_failures=result.task_failures,
                worker_failures=result.worker_failures,
            )
            record_trace_log(
                tracer, result.trace, parent=span_, mode="real", wall_offset=start
            )
            return result

    def _run_real_impl(
        self,
        *,
        max_threads: Optional[int] = None,
        fault_policy: Optional[FaultPolicy] = None,
        watchdog_s: Optional[float] = None,
        kill_at: Optional[Sequence[tuple[float, str]]] = None,
    ) -> RunResult:
        """Execute all tasks for real on host threads.

        Every worker context runs a thread pulling from the same scheduler
        (under a lock).  Data transfers are no-ops (host shared memory);
        the coherence directory is bypassed.  All accessed handles must be
        array-backed.

        Fault tolerance (``fault_policy``, default :class:`FaultPolicy`):

        * transient kernel failures are retried on any compatible lane
          with capped exponential backoff;
        * a dying worker thread (or one killed via :meth:`kill_worker` /
          ``kill_at``) requeues its claimed task to surviving compatible
          lanes and is marked offline instead of aborting the run;
        * a stall watchdog raises
          :class:`~repro.errors.WatchdogTimeoutError` with a diagnosis of
          the blocked tasks/workers instead of spinning forever.

        ``watchdog_s`` overrides ``fault_policy.watchdog_s``.  ``kill_at``
        is a list of ``(delay_s, instance_id)`` fault injections: each
        lane observes its own deadline against the run's wall clock (a
        separate timer thread would be GIL-starved behind busy workers
        and fire arbitrarily late).
        """
        if self._ran:
            raise RuntimeEngineError("engine already ran")
        self._ran = True
        policy = fault_policy if fault_policy is not None else FaultPolicy()
        if watchdog_s is not None:
            policy = dataclasses.replace(policy, watchdog_s=watchdog_s)
        for task in self._tasks:
            for access in task.accesses:
                access.handle.require_array()

        workers = self.workers if max_threads is None else self.workers[:max_threads]
        if not workers:
            raise RuntimeEngineError("no workers to run on")
        # re-check feasibility against the *truncated* worker set: the
        # submit-time check ran against all lanes, and a kernel whose only
        # compatible lane was cut would leave every thread waiting forever
        active = [w for w in workers if w.instance_id not in self._offline]
        infeasible: dict[str, list[str]] = {}
        for task in self._tasks:
            if task.state is TaskState.DONE:
                continue
            kernel_def = self.registry.get(task.kernel)
            if not any(kernel_def.supports(w.architecture) for w in active):
                infeasible.setdefault(task.kernel, []).append(task.tag)
        if infeasible:
            detail = "; ".join(
                f"kernel {k!r} ({len(tags)} task(s), e.g. {tags[:3]})"
                for k, tags in sorted(infeasible.items())
            )
            raise SchedulerError(
                "run_real: no compatible worker lane for submitted work after"
                f" max_threads={max_threads} truncated the lanes to"
                f" {[w.instance_id for w in active]}: {detail}"
            )
        self.scheduler.attach(workers, _EngineCostModel(self))

        trace = TraceLog()
        lock = threading.Lock()
        work_available = threading.Condition(lock)
        pending = [sum(1 for t in self._tasks if t.state != TaskState.DONE)]
        failure: list[BaseException] = []
        stats = {
            "task_failures": 0,
            "retries": 0,
            "requeues": 0,
            "worker_failures": 0,
        }
        #: instance id → task currently executing there (for diagnosis)
        running: dict[str, RuntimeTask] = {}
        # lock-protected monotonic progress timestamp (the historical
        # bare shared list raced between lanes and could publish a stale
        # value over a fresher one, flapping the stall watchdog)
        progress = ProgressClock()
        self._kill_events = {w.instance_id: threading.Event() for w in workers}
        self._kill_reasons = {}
        self._retire_events = {w.instance_id: threading.Event() for w in workers}
        self._retire_reasons = {}
        t0 = _time.perf_counter()

        def now_s() -> float:
            return _time.perf_counter() - t0

        def note_progress() -> None:
            progress.note()

        def record_fault(kind: str, task_tag: str, worker_id: str, detail: str):
            trace.record_fault(
                FaultTrace(kind, now_s(), task_tag, worker_id, detail)
            )

        def retire_worker(
            worker: WorkerContext, claimed: Optional[RuntimeTask], why: str
        ) -> None:
            """Mark a dead lane offline and requeue its work (under lock)."""
            if worker.retired:
                return  # already recovered from this lane's death
            self._offline.add(worker.instance_id)
            worker.retired = True
            running.pop(worker.instance_id, None)
            stats["worker_failures"] += 1
            record_fault("worker-fault", "", worker.instance_id, why)
            requeued: list[RuntimeTask] = []
            if claimed is not None:
                claimed.incarnation += 1
                requeued.append(claimed)
            requeued.extend(self.scheduler.drain(worker))
            for t in requeued:
                t.state = TaskState.READY
                t.worker_id = None
                stats["requeues"] += 1
                record_fault("requeue", t.tag, worker.instance_id, why)
                try:
                    self.scheduler.task_ready(t, now_s())
                except SchedulerError as exc:
                    failure.append(exc)
            if not any(
                w.instance_id not in self._offline for w in workers
            ):
                failure.append(
                    WorkerFailureError(
                        "every worker lane has failed; cannot recover"
                        f" (last: {worker.instance_id}: {why})"
                    )
                )
            note_progress()
            work_available.notify_all()

        def graceful_retire(worker: WorkerContext, why: str) -> None:
            """Drain-down for a cooperative scale-down (under lock).

            The in-flight task (if any) already completed by the time the
            lane observes the request, so only the queue is requeued —
            and the lane leaving is *not* a worker failure.
            """
            if worker.retired:
                return
            self._offline.add(worker.instance_id)
            worker.retired = True
            record_fault("retire", "", worker.instance_id, why)
            for t in self.scheduler.drain(worker):
                t.state = TaskState.READY
                t.worker_id = None
                stats["requeues"] += 1
                record_fault("requeue", t.tag, worker.instance_id, why)
                try:
                    self.scheduler.task_ready(t, now_s())
                except SchedulerError as exc:
                    failure.append(exc)
            if pending[0] and not any(
                w.instance_id not in self._offline for w in workers
            ):
                failure.append(
                    WorkerFailureError(
                        "every worker lane retired with work still pending"
                        f" (last: {worker.instance_id}: {why})"
                    )
                )
            note_progress()
            work_available.notify_all()

        with lock:
            for task in self._tasks:
                if task.ready:
                    task.state = TaskState.READY
                    self.scheduler.task_ready(task, 0.0)

        deadlines: dict[str, float] = {}
        for delay, instance_id in kill_at or ():
            if instance_id not in self._kill_events:
                raise RuntimeEngineError(
                    f"kill_at: unknown worker lane {instance_id!r}"
                )
            delay = float(delay)
            if instance_id not in deadlines or delay < deadlines[instance_id]:
                deadlines[instance_id] = delay

        def loop(worker: WorkerContext) -> None:
            kill = self._kill_events[worker.instance_id]
            deadline = deadlines.get(worker.instance_id)
            try:
                self._worker_loop(
                    worker, kill, deadline, policy, lock, work_available,
                    pending, failure, stats, running, progress, trace,
                    t0, retire_worker, workers,
                    self._retire_events[worker.instance_id], graceful_retire,
                )
            except BaseException as exc:
                # the lane itself died (scheduler bug, chaos injection):
                # recover around it instead of aborting the whole run
                with lock:
                    claimed = running.get(worker.instance_id)
                    try:
                        retire_worker(
                            worker, claimed, f"worker thread died: {exc!r}"
                        )
                    except BaseException as requeue_exc:
                        failure.append(requeue_exc)
                        work_available.notify_all()

        threads = [
            threading.Thread(target=loop, args=(w,), name=w.instance_id, daemon=True)
            for w in workers
        ]
        for thread in threads:
            thread.start()
        try:
            for thread in threads:
                thread.join()
        finally:
            self._kill_events = None
            self._kill_reasons = {}
            self._retire_events = None
            self._retire_reasons = {}
        if failure:
            raise failure[0]
        if pending[0]:
            raise RuntimeEngineError(
                self._stall_diagnosis(
                    "real execution", pending[0], workers,
                    {w: t.tag for w, t in running.items()},
                )
            )
        wall = _time.perf_counter() - t0
        return RunResult(
            makespan=trace.makespan,
            mode="real",
            scheduler=self.scheduler.name,
            task_count=len(self._tasks),
            trace=trace,
            wall_time=wall,
            task_failures=stats["task_failures"],
            retry_count=stats["retries"],
            requeue_count=stats["requeues"],
            worker_failures=stats["worker_failures"],
            diagnostics=self._diagnostic_payloads(),
        )

    def _worker_loop(
        self, worker, kill, deadline, policy, lock, work_available, pending,
        failure, stats, running, progress, trace, t0, retire_worker,
        workers, retire, graceful_retire,
    ) -> None:
        """One real-mode worker lane: claim, execute, retry, recover."""

        def now_s() -> float:
            return _time.perf_counter() - t0

        def lane_killed() -> bool:
            if kill.is_set():
                return True
            if deadline is not None and now_s() >= deadline:
                self._kill_reasons.setdefault(
                    worker.instance_id, f"kill_at t={deadline:g}s"
                )
                return True
            return False

        while True:
            with lock:
                if failure or pending[0] == 0:
                    work_available.notify_all()
                    return
                if lane_killed():
                    retire_worker(
                        worker, None,
                        self._kill_reasons.get(worker.instance_id, "killed"),
                    )
                    return
                if retire.is_set():
                    # cooperative scale-down: only honored *between* tasks,
                    # so a claimed task always runs to completion first
                    graceful_retire(
                        worker,
                        self._retire_reasons.get(worker.instance_id, "retired"),
                    )
                    return
                now = now_s()
                task = self.scheduler.next_task(worker, now)
                if task is None:
                    if (
                        policy.watchdog_s is not None
                        and pending[0] > 0
                        and not running
                        and progress.seconds_since() > policy.watchdog_s
                    ):
                        failure.append(
                            WatchdogTimeoutError(
                                self._stall_diagnosis(
                                    "real execution (watchdog"
                                    f" {policy.watchdog_s:g}s)",
                                    pending[0], workers,
                                    {w: t.tag for w, t in running.items()},
                                )
                            )
                        )
                        trace.record_fault(
                            FaultTrace(
                                "watchdog", now, "", worker.instance_id,
                                f"no progress for {policy.watchdog_s:g}s",
                            )
                        )
                        work_available.notify_all()
                        return
                    work_available.wait(timeout=0.05)
                    continue
                task.state = TaskState.RUNNING
                task.worker_id = worker.instance_id
                running[worker.instance_id] = task
                progress.note()
                if lane_killed():
                    # died after claiming but before the kernel ran: the
                    # claim is lost work, requeued to surviving lanes
                    retire_worker(
                        worker, task,
                        self._kill_reasons.get(worker.instance_id, "killed"),
                    )
                    return
            try:
                start = now_s()
                self._execute_payload(task, worker)
                end = now_s()
            except BaseException as exc:
                delay = 0.0
                with lock:
                    running.pop(worker.instance_id, None)
                    task.attempt += 1
                    task.last_error = repr(exc)
                    stats["task_failures"] += 1
                    trace.record_fault(
                        FaultTrace(
                            "task-fault", now_s(), task.tag,
                            worker.instance_id, repr(exc),
                        )
                    )
                    retryable = (
                        isinstance(exc, policy.retry_on)
                        and task.attempt <= policy.max_retries
                    )
                    if not retryable:
                        task.state = TaskState.FAILED
                        failure.append(exc)
                        work_available.notify_all()
                        return
                    stats["retries"] += 1
                    delay = policy.backoff(task.attempt)
                    trace.record_fault(
                        FaultTrace(
                            "retry", now_s(), task.tag, worker.instance_id,
                            f"attempt {task.attempt + 1} after"
                            f" {delay:.4g}s backoff",
                        )
                    )
                if delay > 0.0:
                    _time.sleep(delay)  # backoff outside the lock
                with lock:
                    task.state = TaskState.READY
                    task.incarnation += 1
                    task.worker_id = None
                    try:
                        # back to the shared pool: any compatible lane may
                        # pick the retry up, not just the one that failed
                        self.scheduler.task_ready(task, now_s())
                    except SchedulerError as exc2:
                        failure.append(exc2)
                    progress.note()
                    work_available.notify_all()
                continue
            with lock:
                running.pop(worker.instance_id, None)
                task.state = TaskState.DONE
                task.worker_id = worker.instance_id
                task.start_time, task.end_time = start, end
                worker.busy_time += end - start
                worker.tasks_executed += 1
                pending[0] -= 1
                progress.note()
                trace.record_task(
                    TaskTrace(
                        task_id=task.id,
                        tag=task.tag,
                        kernel=task.kernel,
                        worker_id=worker.instance_id,
                        architecture=worker.architecture,
                        start=start,
                        end=end,
                        transfer_wait=0.0,
                    )
                )
                now = end
                for dep in task.dependents:
                    if dep.notify_producer_done():
                        dep.state = TaskState.READY
                        self.scheduler.task_ready(dep, now)
                work_available.notify_all()
                if lane_killed():
                    # the kernel's side effects are committed, so the
                    # task completes; the lane dies afterwards
                    retire_worker(
                        worker, None,
                        self._kill_reasons.get(worker.instance_id, "killed"),
                    )
                    return

    def __repr__(self) -> str:
        return (
            f"RuntimeEngine({self.platform.name!r},"
            f" workers={len(self.workers)},"
            f" scheduler={self.scheduler.name!r})"
        )
