"""The heterogeneous runtime engine (StarPU-like, paper §IV-D).

Builds an executable runtime *from a PDL platform description*: Worker
entities become execution lanes, MemoryRegions become memory nodes,
Interconnects become the (contended) transfer fabric, and descriptor
properties feed the performance model.  This is the paper's thesis made
concrete — retargeting a program is swapping the descriptor.

Two execution modes share one API:

``sim``
    Discrete-event simulation with calibrated cost models.  Optionally
    executes kernel payloads on real arrays (functional validation while
    timing analytically).
``real``
    Actually runs kernels on host threads and reports wall-clock times
    (numpy releases the GIL in BLAS calls, so CPU workers genuinely
    parallelize).

Typical use::

    engine = RuntimeEngine(load_platform("xeon_x5550_2gpu"), scheduler="dmda")
    C, A, B = (engine.register(shape=(n, n)) for _ in range(3))
    ... partition, submit dgemm tile tasks ...
    result = engine.run()
    print(result.summary())
"""

from __future__ import annotations

import threading
import time as _time
from typing import Optional, Sequence

import numpy as np

from repro.errors import RuntimeEngineError, SchedulerError
from repro.kernels.registry import KernelRegistry, default_kernel_registry
from repro.model.entities import ProcessingUnit
from repro.model.platform import Platform
from repro.perf.calibration import TASK_SCHEDULING_OVERHEAD_S
from repro.perf.models import PerfModel
from repro.perf.transfer import TransferModel
from repro.runtime.capacity import MemoryCapacityManager
from repro.runtime.coherence import CoherenceDirectory, TransferNeed
from repro.runtime.data import DataHandle
from repro.runtime.schedulers import Scheduler, make_scheduler
from repro.runtime.simclock import EventQueue
from repro.runtime.tasks import DependencyTracker, RuntimeTask, TaskState
from repro.runtime.trace import RunResult, TaskTrace, TraceLog, TransferTrace
from repro.runtime.workers import WorkerContext, expand_workers

__all__ = ["RuntimeEngine"]


def _is_available(pu: ProcessingUnit) -> bool:
    """Dynamic availability: AVAILABLE=false excludes a Worker."""
    prop = pu.descriptor.find("AVAILABLE")
    if prop is None:
        return True
    try:
        return prop.value.as_bool()
    except Exception:
        return True


class _EngineCostModel:
    """CostModel protocol implementation backed by the engine's state."""

    def __init__(self, engine: "RuntimeEngine"):
        self._engine = engine

    def supports(self, task: RuntimeTask, worker: WorkerContext) -> bool:
        if worker.instance_id in self._engine._offline:
            return False  # mid-run dynamic event took this worker down
        return self._engine.registry.get(task.kernel).supports(worker.architecture)

    def exec_estimate(self, task: RuntimeTask, worker: WorkerContext) -> float:
        return self._engine.exec_estimate(task, worker)

    def transfer_estimate(self, task: RuntimeTask, worker: WorkerContext) -> float:
        engine = self._engine
        total = 0.0
        for access in task.accesses:
            need = engine.coherence.required_transfer(
                access.handle, worker.memory_node, access.mode
            )
            if need is not None:
                total += engine.transfer_model.ideal_time(
                    engine.node_anchor[need.src_node],
                    worker.entity_id,
                    need.nbytes,
                )
        return total


class RuntimeEngine:
    """A StarPU-like runtime instantiated from a platform description."""

    def __init__(
        self,
        platform: Platform,
        *,
        scheduler: str | Scheduler = "dmda",
        registry: Optional[KernelRegistry] = None,
        perf_model: Optional[PerfModel] = None,
        execute_kernels: bool = False,
        task_overhead_s: float = TASK_SCHEDULING_OVERHEAD_S,
        prefetch: bool = False,
        model_capacity: bool = False,
        model_contention: bool = True,
    ):
        self.platform = platform
        self.registry = registry if registry is not None else default_kernel_registry()
        self.perf = perf_model if perf_model is not None else PerfModel()
        self.execute_kernels = execute_kernels
        self.task_overhead_s = task_overhead_s
        #: stage the next queued task's operands while the current one runs
        self.prefetch = prefetch
        #: enforce MemoryRegion SIZE limits with LRU eviction + write-back
        self.model_capacity = model_capacity
        self.capacity: Optional["MemoryCapacityManager"] = None

        # --- memory nodes -------------------------------------------------
        # node 0 is host RAM anchored at the first Master; every non-Master
        # PU owning a MemoryRegion gets its own node.
        if not platform.masters:
            raise RuntimeEngineError("platform has no Master processing unit")
        self.node_anchor: dict[int, str] = {0: platform.masters[0].id}
        self._node_of_entity: dict[str, int] = {}
        next_node = 1
        for pu in platform.walk():
            if pu.kind != "Master" and pu.memory_regions:
                self._node_of_entity[pu.id] = next_node
                self.node_anchor[next_node] = pu.id
                next_node += 1
        # PUs without own memory inherit the nearest ancestor's node (or 0)
        for pu in platform.walk():
            if pu.id in self._node_of_entity:
                continue
            node = 0
            for ancestor in pu.ancestors():
                if ancestor.id in self._node_of_entity:
                    node = self._node_of_entity[ancestor.id]
                    break
            self._node_of_entity[pu.id] = node

        # --- workers -----------------------------------------------------------
        # dynamic availability (repro.dynamic events) is honored here:
        # Workers whose descriptor says AVAILABLE=false are not lanes
        leaf_workers = [
            pu
            for pu in platform.walk()
            if pu.kind == "Worker" and _is_available(pu)
        ]
        if not leaf_workers:
            raise RuntimeEngineError(
                f"platform {platform.name!r} declares no (available) Worker PUs"
            )
        self.workers: list[WorkerContext] = expand_workers(
            leaf_workers, self._node_of_entity
        )

        # --- plumbing -------------------------------------------------------------
        self.transfer_model = TransferModel(
            platform, model_contention=model_contention
        )
        self.coherence = CoherenceDirectory()
        self.scheduler: Scheduler = (
            scheduler if isinstance(scheduler, Scheduler) else make_scheduler(scheduler)
        )
        self.scheduler.attach(self.workers, _EngineCostModel(self))

        self._tasks: list[RuntimeTask] = []
        self._tracker = DependencyTracker()
        self._handles: list[DataHandle] = []
        self._ran = False
        #: worker instance ids taken down by mid-run dynamic events
        self._offline: set[str] = set()

    # ------------------------------------------------------------------
    # data API
    # ------------------------------------------------------------------
    def register(
        self,
        array: Optional[np.ndarray] = None,
        *,
        shape: Optional[Sequence[int]] = None,
        dtype=np.float64,
        name: str = "",
    ) -> DataHandle:
        """Register a datum with the runtime (array, or shape for sim-only)."""
        handle = DataHandle(shape=shape, dtype=dtype, array=array, name=name)
        self._handles.append(handle)
        return handle

    # ------------------------------------------------------------------
    # task API
    # ------------------------------------------------------------------
    def submit(
        self,
        kernel: str,
        accesses: Sequence[tuple],
        *,
        dims: Optional[tuple] = None,
        args: Optional[dict] = None,
        priority: int = 0,
        tag: str = "",
    ) -> RuntimeTask:
        """Submit one task; dependencies are inferred from access modes."""
        if self._ran:
            raise RuntimeEngineError(
                "engine already ran; create a new engine for another run"
            )
        kernel_def = self.registry.get(kernel)  # raises on unknown kernel
        if not any(kernel_def.supports(w.architecture) for w in self.workers):
            raise SchedulerError(
                f"kernel {kernel!r} has no implementation for any worker"
                f" architecture on platform {self.platform.name!r}"
                f" (architectures: {sorted({w.architecture for w in self.workers})})"
            )
        task = RuntimeTask(
            kernel, accesses, dims=dims, args=args, priority=priority, tag=tag
        )
        for access in task.accesses:
            if access.handle.is_partitioned:
                raise RuntimeEngineError(
                    f"task {task.tag}: handle {access.handle.name!r} is"
                    " partitioned; submit tasks on its leaf children"
                )
        self._tracker.register(task)
        self._tasks.append(task)
        return task

    @property
    def task_count(self) -> int:
        return len(self._tasks)

    # ------------------------------------------------------------------
    # cost estimation (also used by schedulers through _EngineCostModel)
    # ------------------------------------------------------------------
    def exec_estimate(self, task: RuntimeTask, worker: WorkerContext) -> float:
        kernel_def = self.registry.get(task.kernel)
        dims = task.dims
        if dims is None:
            # derive a size proxy from the first access
            dims = task.accesses[0].handle.shape
        flops = kernel_def.flops(dims)
        nbytes = kernel_def.bytes_touched(dims)
        return self.perf.estimate(
            worker.pu,
            kernel=task.kernel,
            flops=flops,
            bytes_touched=nbytes,
            dims=dims if len(dims) == 3 else None,
        )

    # ------------------------------------------------------------------
    # simulated execution
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        gather_to_home: bool = True,
        dynamic_events: Optional[Sequence[tuple]] = None,
    ) -> RunResult:
        """Run all submitted tasks in discrete-event simulation.

        ``gather_to_home`` appends the transfers that bring written data
        back to host memory (as the paper's experiment must, to hand the
        result matrix back to the caller) and counts them in the makespan.

        ``dynamic_events`` is an optional list of ``(time_s, event)``
        pairs (see :mod:`repro.dynamic.events`) applied *while the
        simulation runs* — the "highly dynamic run-time schedulers" of
        the paper's conclusion.  A worker taken offline finishes its
        current task, its queued tasks are drained back to the scheduler,
        and no new work reaches it until a matching online event.
        """
        if self._ran:
            raise RuntimeEngineError("engine already ran")
        self._ran = True
        wall_start = _time.perf_counter()

        clock = EventQueue()
        trace = TraceLog()
        self.transfer_model.reset()
        self.coherence.reset()
        for worker in self.workers:
            worker.reset()

        if self.model_capacity:
            node_capacity: dict[int, Optional[float]] = {0: None}
            for node, anchor_id in self.node_anchor.items():
                if node == 0:
                    continue
                anchor = self.platform.pu(anchor_id)
                sizes = [
                    r.size_bytes
                    for r in anchor.memory_regions
                    if r.size_bytes is not None
                ]
                node_capacity[node] = sum(sizes) if sizes else None
            self.capacity = MemoryCapacityManager(self.coherence, node_capacity)

        def charge_writeback(need: TransferNeed, when: float) -> float:
            est = self.transfer_model.schedule(
                self.node_anchor[need.src_node],
                self.node_anchor[need.dst_node],
                need.nbytes,
                when,
            )
            trace.record_transfer(
                TransferTrace(
                    handle_name=need.handle.name,
                    nbytes=need.nbytes,
                    src_node=need.src_node,
                    dst_node=need.dst_node,
                    start=est.start,
                    end=est.finish,
                )
            )
            return est.finish

        pending = sum(1 for t in self._tasks if t.state != TaskState.DONE)
        written_handles: dict[int, DataHandle] = {}
        idle: dict[str, WorkerContext] = {}
        #: task id → (memory node prefetched into, arrival time)
        prefetched_until: dict[int, tuple[int, float]] = {}

        def wake_idle() -> None:
            for worker in list(idle.values()):
                del idle[worker.instance_id]
                clock.schedule_in(0.0, lambda w=worker: worker_tick(w))

        def worker_tick(worker: WorkerContext) -> None:
            now = clock.now
            if worker.instance_id in self._offline:
                return  # taken down by a dynamic event; no new work
            if now < worker.busy_until - 1e-15:
                return  # still executing; its completion event will re-tick
            task = self.scheduler.next_task(worker, now)
            if task is None:
                idle[worker.instance_id] = worker
                return
            start_task(task, worker, now)

        def stage_operands(
            task: RuntimeTask, worker: WorkerContext, now: float
        ) -> float:
            """Schedule missing-operand transfers; returns their finish time."""
            node = worker.memory_node
            data_ready = now
            for access in task.accesses:
                need = self.coherence.required_transfer(
                    access.handle, node, access.mode
                )
                if need is None:
                    # already resident (or write-only): room still needed
                    # for write-only claims under capacity modeling
                    if self.capacity is not None:
                        if self.coherence.is_valid_on(access.handle, node):
                            self.capacity.touch(access.handle, node, now)
                        elif access.mode.writes:
                            ready = self.capacity.make_room(
                                node, access.handle.nbytes, now,
                                writeback=charge_writeback,
                            )
                            self.capacity.note_resident(
                                access.handle, node, ready
                            )
                            data_ready = max(data_ready, ready)
                    continue
                start_at = now
                if self.capacity is not None:
                    start_at = self.capacity.make_room(
                        node, need.nbytes, now, writeback=charge_writeback
                    )
                est = self.transfer_model.schedule(
                    self.node_anchor[need.src_node],
                    worker.entity_id,
                    need.nbytes,
                    start_at,
                )
                self.coherence.note_transfer(need)
                if self.capacity is not None:
                    self.capacity.note_resident(access.handle, node, est.finish)
                trace.record_transfer(
                    TransferTrace(
                        handle_name=need.handle.name,
                        nbytes=need.nbytes,
                        src_node=need.src_node,
                        dst_node=node,
                        start=est.start,
                        end=est.finish,
                    )
                )
                data_ready = max(data_ready, est.finish)
            return data_ready

        def start_task(task: RuntimeTask, worker: WorkerContext, now: float) -> None:
            task.state = TaskState.RUNNING
            # pin the task's working set first so staging one operand can
            # never evict another operand of the same task
            if self.capacity is not None:
                for access in task.accesses:
                    self.capacity.pin(access.handle, worker.memory_node)
            # stage operands (already-prefetched ones are valid in the
            # coherence directory and cost nothing here; we only wait for
            # their arrival time)
            data_ready = stage_operands(task, worker, now)
            staged = prefetched_until.pop(task.id, None)
            if staged is not None and staged[0] == worker.memory_node:
                # stolen tasks may run elsewhere; only wait for a prefetch
                # that targeted this worker's node
                data_ready = max(data_ready, staged[1])
            transfer_wait = data_ready - now

            start = data_ready + self.task_overhead_s
            duration = self.exec_estimate(task, worker)
            end = start + duration

            # coherence transition at start (write ownership is claimed
            # when the kernel begins mutating the buffer)
            for access in task.accesses:
                self.coherence.note_access(
                    access.handle, worker.memory_node, access.mode
                )
                if access.mode.writes:
                    written_handles[access.handle.id] = access.handle
                if self.capacity is not None and access.mode.writes:
                    self.capacity.note_invalidated(
                        access.handle, worker.memory_node
                    )
                    self.capacity.note_resident(
                        access.handle, worker.memory_node, start
                    )

            if self.execute_kernels:
                self._execute_payload(task, worker)

            worker.busy_until = end
            worker.is_idle = False
            task.worker_id = worker.instance_id
            task.start_time = start
            task.end_time = end
            clock.schedule_at(
                end, lambda: finish_task(task, worker, transfer_wait)
            )

            # data prefetch: stage the *next* queued task's operands while
            # this one computes (StarPU's dmda-prefetch behaviour)
            if self.prefetch:
                upcoming = self.scheduler.peek(worker)
                if (
                    upcoming is not None
                    and upcoming.id not in prefetched_until
                ):
                    prefetched_until[upcoming.id] = (
                        worker.memory_node,
                        stage_operands(upcoming, worker, now),
                    )

        def finish_task(
            task: RuntimeTask, worker: WorkerContext, transfer_wait: float
        ) -> None:
            nonlocal pending
            now = clock.now
            task.state = TaskState.DONE
            pending -= 1
            worker.busy_time += task.duration or 0.0
            worker.tasks_executed += 1
            if self.capacity is not None:
                for access in task.accesses:
                    self.capacity.unpin(access.handle, worker.memory_node)
                    self.capacity.touch(access.handle, worker.memory_node, now)
            trace.record_task(
                TaskTrace(
                    task_id=task.id,
                    tag=task.tag,
                    kernel=task.kernel,
                    worker_id=worker.instance_id,
                    architecture=worker.architecture,
                    start=task.start_time or 0.0,
                    end=now,
                    transfer_wait=transfer_wait,
                )
            )
            newly_ready = [
                dep for dep in task.dependents if dep.notify_producer_done()
            ]
            for dep in newly_ready:
                dep.state = TaskState.READY
                self.scheduler.task_ready(dep, now)
            if newly_ready:
                wake_idle()
            worker_tick(worker)

        def on_dynamic_event(event) -> None:
            now = clock.now
            event.apply(self.platform)
            # descriptor properties feed the cost models; drop stale rates
            self.perf._cache.clear()
            for worker in self.workers:
                if worker.entity_id != event.pu_id:
                    continue
                if _is_available(worker.pu):
                    if worker.instance_id in self._offline:
                        self._offline.discard(worker.instance_id)
                        idle.pop(worker.instance_id, None)
                        clock.schedule_in(0.0, lambda w=worker: worker_tick(w))
                else:
                    if worker.instance_id not in self._offline:
                        self._offline.add(worker.instance_id)
                        idle.pop(worker.instance_id, None)
                        # re-queue whatever was bound to this worker
                        for task in self.scheduler.drain(worker):
                            self.scheduler.task_ready(task, now)
            wake_idle()

        # seed: initially-ready tasks and all workers
        for task in self._tasks:
            if task.ready:
                task.state = TaskState.READY
                self.scheduler.task_ready(task, 0.0)
        for worker in self.workers:
            clock.schedule_at(0.0, lambda w=worker: worker_tick(w))
        for when, event in dynamic_events or ():
            clock.schedule_at(float(when), lambda e=event: on_dynamic_event(e))

        clock.run()

        if pending:
            stuck = [t.tag for t in self._tasks if t.state != TaskState.DONE][:10]
            raise RuntimeEngineError(
                f"simulation stalled with {pending} unfinished tasks"
                f" (first: {stuck}); dependency cycle or scheduler bug"
            )

        makespan = trace.makespan
        if gather_to_home:
            makespan = self._gather(written_handles.values(), makespan, trace)

        wall = _time.perf_counter() - wall_start
        return RunResult(
            makespan=makespan,
            mode="sim",
            scheduler=self.scheduler.name,
            task_count=len(self._tasks),
            trace=trace,
            transfer_count=self.coherence.transfer_count,
            bytes_transferred=self.coherence.bytes_transferred,
            wall_time=wall,
            eviction_count=(
                self.capacity.eviction_count if self.capacity is not None else 0
            ),
            writeback_bytes=(
                self.capacity.writeback_bytes if self.capacity is not None else 0.0
            ),
        )

    def _gather(self, handles, start_time: float, trace: TraceLog) -> float:
        """Flush written handles back to the host node; returns new makespan."""
        end = start_time
        for handle in handles:
            need = self.coherence.flush_to_home(handle)
            if need is None:
                continue
            est = self.transfer_model.schedule(
                self.node_anchor[need.src_node],
                self.node_anchor[need.dst_node],
                need.nbytes,
                start_time,
            )
            self.coherence.note_transfer(need)
            trace.record_transfer(
                TransferTrace(
                    handle_name=need.handle.name,
                    nbytes=need.nbytes,
                    src_node=need.src_node,
                    dst_node=need.dst_node,
                    start=est.start,
                    end=est.finish,
                )
            )
            end = max(end, est.finish)
        return end

    def _execute_payload(self, task: RuntimeTask, worker: WorkerContext) -> None:
        impl = self.registry.get(task.kernel).variant_for(worker.architecture)
        arrays = [access.handle.require_array() for access in task.accesses]
        impl.fn(*arrays, **task.args)

    # ------------------------------------------------------------------
    # real (threaded) execution
    # ------------------------------------------------------------------
    def run_real(self, *, max_threads: Optional[int] = None) -> RunResult:
        """Execute all tasks for real on host threads.

        Every worker context runs a thread pulling from the same scheduler
        (under a lock).  Data transfers are no-ops (host shared memory);
        the coherence directory is bypassed.  All accessed handles must be
        array-backed.
        """
        if self._ran:
            raise RuntimeEngineError("engine already ran")
        self._ran = True
        for task in self._tasks:
            for access in task.accesses:
                access.handle.require_array()

        workers = self.workers if max_threads is None else self.workers[:max_threads]
        if not workers:
            raise RuntimeEngineError("no workers to run on")
        self.scheduler.attach(workers, _EngineCostModel(self))

        trace = TraceLog()
        lock = threading.Lock()
        work_available = threading.Condition(lock)
        pending = [sum(1 for t in self._tasks if t.state != TaskState.DONE)]
        failure: list[BaseException] = []
        t0 = _time.perf_counter()

        with lock:
            for task in self._tasks:
                if task.ready:
                    task.state = TaskState.READY
                    self.scheduler.task_ready(task, 0.0)

        def loop(worker: WorkerContext) -> None:
            while True:
                with lock:
                    if failure or pending[0] == 0:
                        work_available.notify_all()
                        return
                    now = _time.perf_counter() - t0
                    task = self.scheduler.next_task(worker, now)
                    if task is None:
                        work_available.wait(timeout=0.05)
                        continue
                    task.state = TaskState.RUNNING
                try:
                    start = _time.perf_counter() - t0
                    self._execute_payload(task, worker)
                    end = _time.perf_counter() - t0
                except BaseException as exc:  # propagate to caller
                    with lock:
                        failure.append(exc)
                        work_available.notify_all()
                    return
                with lock:
                    task.state = TaskState.DONE
                    task.worker_id = worker.instance_id
                    task.start_time, task.end_time = start, end
                    worker.busy_time += end - start
                    worker.tasks_executed += 1
                    pending[0] -= 1
                    trace.record_task(
                        TaskTrace(
                            task_id=task.id,
                            tag=task.tag,
                            kernel=task.kernel,
                            worker_id=worker.instance_id,
                            architecture=worker.architecture,
                            start=start,
                            end=end,
                            transfer_wait=0.0,
                        )
                    )
                    now = end
                    for dep in task.dependents:
                        if dep.notify_producer_done():
                            dep.state = TaskState.READY
                            self.scheduler.task_ready(dep, now)
                    work_available.notify_all()

        threads = [
            threading.Thread(target=loop, args=(w,), name=w.instance_id, daemon=True)
            for w in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failure:
            raise failure[0]
        if pending[0]:
            raise RuntimeEngineError(
                f"real execution stalled with {pending[0]} unfinished tasks"
            )
        wall = _time.perf_counter() - t0
        return RunResult(
            makespan=trace.makespan,
            mode="real",
            scheduler=self.scheduler.name,
            task_count=len(self._tasks),
            trace=trace,
            wall_time=wall,
        )

    def __repr__(self) -> str:
        return (
            f"RuntimeEngine({self.platform.name!r},"
            f" workers={len(self.workers)},"
            f" scheduler={self.scheduler.name!r})"
        )
