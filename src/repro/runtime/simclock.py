"""Discrete-event simulation clock.

A deterministic event queue: events fire in time order, ties broken by
insertion sequence (so equal-time events run in schedule order, which
keeps simulations reproducible run-to-run).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import RuntimeEngineError

__all__ = ["EventQueue", "NO_ARG"]

#: sentinel marking an event scheduled without an argument
NO_ARG = object()


class EventQueue:
    """Priority queue of ``(time, callback)`` events with a current clock.

    Two scheduling lanes share one heap (and therefore one total order):

    * :meth:`schedule_at` / :meth:`schedule_in` take a zero-argument
      callable — the historical closure-based API;
    * :meth:`schedule_call` / :meth:`schedule_call_in` take a callable
      plus one argument, stored as a typed 4-tuple.  The hot loop of the
      vectorized engine uses this lane to avoid allocating a lambda per
      event (worker ticks, task completions), which is a measurable
      fraction of per-event cost at million-task scale.
    """

    def __init__(self):
        self._heap: list[tuple] = []
        self._seq = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def _check_time(self, when: float) -> None:
        if when < self._now - 1e-12:
            raise RuntimeEngineError(
                f"cannot schedule event at {when} before current time {self._now}"
            )

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``when``."""
        self._check_time(when)
        heapq.heappush(self._heap, (when, next(self._seq), callback, NO_ARG))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise RuntimeEngineError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, callback)

    def schedule_call(self, when: float, callback: Callable, arg) -> None:
        """Schedule ``callback(arg)`` at absolute time ``when``.

        Closure-free lane: the argument rides in the heap entry instead
        of being captured in a lambda.
        """
        self._check_time(when)
        heapq.heappush(self._heap, (when, next(self._seq), callback, arg))

    def schedule_call_in(self, delay: float, callback: Callable, arg) -> None:
        """Schedule ``callback(arg)`` ``delay`` seconds from now."""
        if delay < 0:
            raise RuntimeEngineError(f"negative delay {delay}")
        self.schedule_call(self._now + delay, callback, arg)

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _, callback, arg = heapq.heappop(self._heap)
        self._now = when
        if arg is NO_ARG:
            callback()
        else:
            callback(arg)
        return True

    def run(self, *, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Drain the queue (optionally up to time ``until``); returns the
        final clock value."""
        fired = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if fired >= max_events:
                raise RuntimeEngineError(
                    f"event budget exceeded ({max_events}); runaway simulation?"
                )
            self.step()
            fired += 1
        return self._now

    def reset(self) -> None:
        self._heap.clear()
        self._now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap
