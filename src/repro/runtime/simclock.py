"""Discrete-event simulation clock.

A deterministic event queue: events fire in time order, ties broken by
insertion sequence (so equal-time events run in schedule order, which
keeps simulations reproducible run-to-run).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import RuntimeEngineError

__all__ = ["EventQueue"]


class EventQueue:
    """Priority queue of ``(time, callback)`` events with a current clock."""

    def __init__(self):
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self._now - 1e-12:
            raise RuntimeEngineError(
                f"cannot schedule event at {when} before current time {self._now}"
            )
        heapq.heappush(self._heap, (when, next(self._seq), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise RuntimeEngineError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _, callback = heapq.heappop(self._heap)
        self._now = when
        callback()
        return True

    def run(self, *, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Drain the queue (optionally up to time ``until``); returns the
        final clock value."""
        fired = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if fired >= max_events:
                raise RuntimeEngineError(
                    f"event budget exceeded ({max_events}); runaway simulation?"
                )
            self.step()
            fired += 1
        return self._now

    def reset(self) -> None:
        self._heap.clear()
        self._now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap
