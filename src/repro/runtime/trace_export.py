"""Trace export: Paje, JSON and ASCII-Gantt renderings of run traces.

StarPU ships FxT/Paje trace export for post-mortem analysis (ViTE etc.);
this module provides the same observability surface for our runtime:

* :func:`to_paje` — a minimal, valid Paje trace (header + container/state
  events) per worker;
* :func:`to_json` — structured dump for external tooling;
* :func:`gantt_ascii` — terminal Gantt chart, one row per worker.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.runtime.trace import TraceLog

__all__ = ["to_paje", "to_json", "gantt_ascii"]

_PAJE_HEADER = """\
%EventDef PajeDefineContainerType 1
% Alias string
% ContainerType string
% Name string
%EndEventDef
%EventDef PajeDefineStateType 2
% Alias string
% ContainerType string
% Name string
%EndEventDef
%EventDef PajeCreateContainer 3
% Time date
% Alias string
% Type string
% Container string
% Name string
%EndEventDef
%EventDef PajeSetState 4
% Time date
% Container string
% Type string
% Value string
%EndEventDef
"""


def to_paje(trace: TraceLog) -> str:
    """Render the trace in (minimal) Paje format.

    Containers: one per worker under a root "Machine" container.  States:
    the kernel name while a task runs, "Idle" otherwise.
    """
    lines = [_PAJE_HEADER]
    lines.append('1 CT_Machine 0 "Machine"')
    lines.append('1 CT_Worker CT_Machine "Worker"')
    lines.append('2 ST_WorkerState CT_Worker "Worker State"')
    lines.append('3 0.000000 machine CT_Machine 0 "machine"')

    workers = sorted({t.worker_id for t in trace.tasks})
    for worker in workers:
        lines.append(
            f'3 0.000000 {_paje_id(worker)} CT_Worker machine "{worker}"'
        )
        lines.append(
            f'4 0.000000 {_paje_id(worker)} ST_WorkerState "Idle"'
        )
    for task in sorted(trace.tasks, key=lambda t: t.start):
        container = _paje_id(task.worker_id)
        lines.append(
            f'4 {task.start:.9f} {container} ST_WorkerState "{task.kernel}"'
        )
        lines.append(
            f'4 {task.end:.9f} {container} ST_WorkerState "Idle"'
        )
    return "\n".join(lines) + "\n"


def _paje_id(worker_id: str) -> str:
    return "w_" + worker_id.replace("#", "_")


def to_json(trace: TraceLog, *, indent: Optional[int] = None) -> str:
    """Structured JSON dump of tasks and transfers."""
    payload = {
        "makespan": trace.makespan,
        "tasks": [
            {
                "id": t.task_id,
                "tag": t.tag,
                "kernel": t.kernel,
                "worker": t.worker_id,
                "architecture": t.architecture,
                "start": t.start,
                "end": t.end,
                "transfer_wait": t.transfer_wait,
            }
            for t in sorted(trace.tasks, key=lambda t: (t.start, t.task_id))
        ],
        "transfers": [
            {
                "handle": x.handle_name,
                "bytes": x.nbytes,
                "src_node": x.src_node,
                "dst_node": x.dst_node,
                "start": x.start,
                "end": x.end,
            }
            for x in sorted(trace.transfers, key=lambda x: x.start)
        ],
        "utilization": trace.utilization(),
    }
    return json.dumps(payload, indent=indent)


def gantt_ascii(trace: TraceLog, *, width: int = 72) -> str:
    """One Gantt row per worker; '#' = busy, '.' = idle.

    Time is discretized into ``width`` buckets over the makespan; a bucket
    is busy when any task overlaps it.
    """
    span = trace.makespan
    if span <= 0 or not trace.tasks:
        return "(empty trace)"
    rows = trace.gantt_rows()
    label_width = max(len(w) for w in rows)
    out = [
        f"{'':{label_width}}   0{'-' * (width - 10)}{span:.3f}s",
    ]
    for worker in sorted(rows):
        cells = ["."] * width
        for start, end, _tag in rows[worker]:
            lo = min(width - 1, int(start / span * width))
            hi = min(width - 1, int(max(start, end - 1e-12) / span * width))
            for i in range(lo, hi + 1):
                cells[i] = "#"
        busy = trace.busy_time(worker) / span
        out.append(f"{worker:{label_width}} |{''.join(cells)}| {busy:4.0%}")
    return "\n".join(out)
