"""Device-memory capacity modeling with LRU eviction.

The Figure-5 GPUs hold 1.5 GB / 1 GB; the three 8192² matrices (512 MiB
each) fit, but larger problems must *stream*: tiles get evicted and
re-fetched, and dirty tiles must be written back before their slot can
be reused.  This module adds that behaviour to the runtime:

* per-memory-node capacities from the descriptor's ``MemoryRegion SIZE``
  (node 0 — host RAM — is treated as unbounded by default),
* residency tracking of valid copies per node,
* LRU victim selection among non-pinned handles (operands of running
  tasks are pinned),
* write-back of sole-owner victims to the home node before invalidation
  (the write-back transfer is charged to the interconnect like any other).

StarPU's memory manager does exactly this dance; modeling it lets the
reproduction answer "what happens past device memory?" honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import DataError
from repro.runtime.coherence import CoherenceDirectory, TransferNeed
from repro.runtime.data import DataHandle

__all__ = ["CapacityError", "MemoryCapacityManager"]


class CapacityError(DataError):
    """A task's working set cannot fit the target memory node at all."""


@dataclass
class _Resident:
    handle: DataHandle
    last_use: float


class MemoryCapacityManager:
    """Tracks residency per memory node and frees room via LRU eviction."""

    def __init__(
        self,
        coherence: CoherenceDirectory,
        node_capacity: dict[int, Optional[float]],
    ):
        """``node_capacity``: node → bytes (None = unbounded)."""
        self.coherence = coherence
        self.capacity = dict(node_capacity)
        #: node → handle id → residency record
        self._resident: dict[int, dict[int, _Resident]] = {}
        #: handle ids pinned per node (operands of running tasks)
        self._pinned: dict[int, dict[int, int]] = {}
        self.eviction_count = 0
        self.writeback_bytes = 0.0

    # -- bookkeeping ---------------------------------------------------------
    def note_resident(self, handle: DataHandle, node: int, now: float) -> None:
        """A valid copy of ``handle`` now lives on ``node``."""
        self._resident.setdefault(node, {})[handle.id] = _Resident(handle, now)

    def note_invalidated(self, handle: DataHandle, keep_node: int) -> None:
        """A write on ``keep_node`` invalidated the other copies."""
        for node, table in self._resident.items():
            if node != keep_node:
                table.pop(handle.id, None)

    def touch(self, handle: DataHandle, node: int, now: float) -> None:
        record = self._resident.get(node, {}).get(handle.id)
        if record is not None:
            record.last_use = now

    def pin(self, handle: DataHandle, node: int) -> None:
        table = self._pinned.setdefault(node, {})
        table[handle.id] = table.get(handle.id, 0) + 1

    def unpin(self, handle: DataHandle, node: int) -> None:
        table = self._pinned.get(node, {})
        count = table.get(handle.id, 0)
        if count <= 1:
            table.pop(handle.id, None)
        else:
            table[handle.id] = count - 1

    def resident_bytes(self, node: int) -> float:
        return sum(
            r.handle.nbytes for r in self._resident.get(node, {}).values()
        )

    def resident_count(self, node: int) -> int:
        return len(self._resident.get(node, {}))

    # -- the capacity protocol ----------------------------------------------
    def make_room(
        self,
        node: int,
        nbytes: float,
        now: float,
        *,
        writeback: Callable[[TransferNeed, float], float],
    ) -> float:
        """Ensure ``nbytes`` fit on ``node``; returns when room is ready.

        Evicts LRU non-pinned residents.  A victim whose only valid copy
        lives here is written back to its home node first — ``writeback``
        performs/charges that transfer and returns its finish time.
        Raises :class:`CapacityError` when pinned data alone exceeds the
        node (the task can never fit).
        """
        limit = self.capacity.get(node)
        if limit is None:
            return now
        if nbytes > limit:
            raise CapacityError(
                f"handle of {nbytes / 2**20:.1f} MiB exceeds node {node}"
                f" capacity {limit / 2**20:.1f} MiB entirely"
            )
        ready = now
        table = self._resident.setdefault(node, {})
        pinned = self._pinned.get(node, {})
        while self.resident_bytes(node) + nbytes > limit:
            victims = [
                r
                for hid, r in table.items()
                if hid not in pinned and r.handle.home_node != node
            ]
            if not victims:
                raise CapacityError(
                    f"node {node}: cannot make room for"
                    f" {nbytes / 2**20:.1f} MiB —"
                    f" {self.resident_bytes(node) / 2**20:.1f} MiB pinned by"
                    " running tasks"
                )
            victim = min(victims, key=lambda r: r.last_use)
            ready = max(ready, self._evict(victim.handle, node, now, writeback))
        return ready

    def _evict(
        self,
        handle: DataHandle,
        node: int,
        now: float,
        writeback: Callable[[TransferNeed, float], float],
    ) -> float:
        valid = self.coherence.valid_nodes(handle)
        finish = now
        if valid == {node} and node != handle.home_node:
            # sole dirty copy: write back before dropping it
            need = TransferNeed(handle, node, handle.home_node)
            finish = writeback(need, now)
            self.coherence.note_transfer(need)
            self.note_resident(handle, handle.home_node, finish)
            self.writeback_bytes += handle.nbytes
        valid.discard(node)
        if not valid:
            # the home copy must survive; never drop the last copy
            valid.add(handle.home_node)
        # the validity set was edited in place: memoized read sources
        # for this handle are stale
        self.coherence.invalidate_need_cache(handle)
        self._resident[node].pop(handle.id, None)
        self.eviction_count += 1
        return finish

    def __repr__(self) -> str:
        nodes = {
            node: f"{self.resident_bytes(node) / 2**20:.0f}MiB"
            for node in self._resident
        }
        return f"MemoryCapacityManager({nodes}, evictions={self.eviction_count})"
