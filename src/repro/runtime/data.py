"""Data handles and partitioning (StarPU-style data management).

A :class:`DataHandle` names a block of data the runtime manages across
memory nodes.  Handles either wrap a real numpy array (real execution and
functionally-validated simulation) or carry only shape/dtype metadata
(pure timing simulation of problem sizes too big to materialize — the
8192×8192 Figure-5 matrices are 512 MB each ×3).

Handles partition into child handles (block rows, block columns, or 2D
tiles); tasks operate on *leaf* handles, mirroring StarPU's
``starpu_data_partition`` usage in the DGEMM example.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import DataError

__all__ = ["DataHandle", "block_ranges"]

_handle_ids = itertools.count(1)


def block_ranges(extent: int, nparts: int) -> list[tuple[int, int]]:
    """Split ``extent`` into ``nparts`` contiguous ranges (BLOCK distribution).

    The first ``extent % nparts`` parts get one extra element — the standard
    balanced block distribution.
    """
    if nparts < 1:
        raise DataError(f"nparts must be >= 1, got {nparts}")
    if extent < nparts:
        raise DataError(f"cannot split extent {extent} into {nparts} parts")
    base, extra = divmod(extent, nparts)
    ranges = []
    start = 0
    for i in range(nparts):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


class DataHandle:
    """One runtime-managed datum.

    Parameters
    ----------
    shape:
        Logical array shape.
    dtype:
        numpy dtype (default float64, the paper's DGEMM precision).
    array:
        Optional backing numpy array; ``shape``/``dtype`` are derived from
        it when given.
    name:
        Debug label (e.g. ``"A"``, ``"C[2,3]"``).
    home_node:
        Memory node holding the initial valid copy (default 0, host RAM).
    """

    def __init__(
        self,
        shape: Optional[Sequence[int]] = None,
        dtype=np.float64,
        *,
        array: Optional[np.ndarray] = None,
        name: str = "",
        home_node: int = 0,
    ):
        if array is not None:
            self.array: Optional[np.ndarray] = array
            self.shape = tuple(array.shape)
            self.dtype = array.dtype
        else:
            if shape is None:
                raise DataError("DataHandle needs a shape or a backing array")
            self.array = None
            self.shape = tuple(int(s) for s in shape)
            self.dtype = np.dtype(dtype)
        self.id = next(_handle_ids)
        self.name = name or f"h{self.id}"
        self.home_node = home_node
        self.parent: Optional["DataHandle"] = None
        self.children: list["DataHandle"] = []
        #: slice of the parent this child covers (for reporting)
        self.parent_slice: Optional[tuple] = None

    # -- geometry -----------------------------------------------------------
    @property
    def nbytes(self) -> int:
        n = self.dtype.itemsize
        for s in self.shape:
            n *= s
        return n

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def is_partitioned(self) -> bool:
        return bool(self.children)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    # -- partitioning --------------------------------------------------------
    def _child(self, view, shape, name, parent_slice) -> "DataHandle":
        child = DataHandle(
            shape=shape,
            dtype=self.dtype,
            array=view,
            name=name,
            home_node=self.home_node,
        )
        if view is None:
            # metadata-only child keeps declared shape/dtype
            child.shape = tuple(shape)
            child.dtype = self.dtype
        child.parent = self
        child.parent_slice = parent_slice
        self.children.append(child)
        return child

    def partition_rows(self, nparts: int) -> list["DataHandle"]:
        """BLOCK partition along the first axis."""
        self._check_partitionable()
        out = []
        for i, (lo, hi) in enumerate(block_ranges(self.shape[0], nparts)):
            shape = (hi - lo,) + self.shape[1:]
            view = self.array[lo:hi] if self.array is not None else None
            out.append(self._child(view, shape, f"{self.name}[{i}]", (slice(lo, hi),)))
        return out

    def partition_cols(self, nparts: int) -> list["DataHandle"]:
        """BLOCK partition along the second axis (matrices only)."""
        self._check_partitionable()
        if self.ndim < 2:
            raise DataError(f"{self.name}: column partition needs a 2-D handle")
        out = []
        for j, (lo, hi) in enumerate(block_ranges(self.shape[1], nparts)):
            shape = (self.shape[0], hi - lo) + self.shape[2:]
            view = self.array[:, lo:hi] if self.array is not None else None
            out.append(
                self._child(
                    view, shape, f"{self.name}[:,{j}]", (slice(None), slice(lo, hi))
                )
            )
        return out

    def partition_tiles(self, prow: int, pcol: int) -> list[list["DataHandle"]]:
        """2-D BLOCK/BLOCK tiling; returns a ``prow × pcol`` nested list."""
        self._check_partitionable()
        if self.ndim != 2:
            raise DataError(f"{self.name}: tile partition needs a 2-D handle")
        rows = block_ranges(self.shape[0], prow)
        cols = block_ranges(self.shape[1], pcol)
        grid: list[list[DataHandle]] = []
        for i, (rlo, rhi) in enumerate(rows):
            row_handles = []
            for j, (clo, chi) in enumerate(cols):
                shape = (rhi - rlo, chi - clo)
                view = (
                    self.array[rlo:rhi, clo:chi] if self.array is not None else None
                )
                row_handles.append(
                    self._child(
                        view,
                        shape,
                        f"{self.name}[{i},{j}]",
                        (slice(rlo, rhi), slice(clo, chi)),
                    )
                )
            grid.append(row_handles)
        return grid

    def unpartition(self) -> None:
        """Drop children (data already lives in the parent array via views)."""
        for child in self.children:
            child.parent = None
        self.children.clear()

    def _check_partitionable(self) -> None:
        if self.children:
            raise DataError(f"{self.name}: already partitioned")

    # -- traversal ------------------------------------------------------------
    def leaves(self) -> Iterator["DataHandle"]:
        if self.is_leaf:
            yield self
        else:
            for child in self.children:
                yield from child.leaves()

    def require_array(self) -> np.ndarray:
        if self.array is None:
            raise DataError(
                f"{self.name}: no backing array (metadata-only handle);"
                " functional execution requires real arrays"
            )
        return self.array

    def __repr__(self) -> str:
        backing = "array" if self.array is not None else "meta"
        return f"DataHandle({self.name!r}, shape={self.shape}, {backing})"
