"""Fault-tolerance policy knobs shared by both execution modes.

The runtime's failure model distinguishes three classes of fault:

* **task faults** — one execution attempt of a kernel fails (a transient
  launch error, an injected :class:`repro.dynamic.TaskFault`).  Handled by
  per-task retry with capped exponential backoff.
* **worker faults** — an execution lane dies mid-run (a thread crash in
  real mode, a :class:`repro.dynamic.WorkerFault` event in simulation).
  The lane is marked offline, its claimed and queued tasks are requeued
  to surviving compatible workers, and the run continues degraded.
* **stalls** — no lane can make forward progress (dependency-accounting
  bug, every compatible lane offline).  A watchdog bounds the wait and
  raises a diagnostic error instead of spinning forever.

:class:`FaultPolicy` carries the knobs; `RunResult` reports the
failure/retry/requeue counters so benchmarks can assert graceful
degradation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

__all__ = ["FaultPolicy", "ProgressClock"]


class ProgressClock:
    """Thread-safe last-progress timestamp for the stall watchdog.

    Real-mode worker threads previously shared a bare one-element list of
    ``perf_counter`` values with unsynchronized read-modify-write from
    every lane — a data race that could publish a stale timestamp over a
    fresher one and trip (or suppress) the watchdog spuriously.  This
    clock serializes updates under a lock and is *monotonic in what it
    reports*: :meth:`note` never moves the timestamp backwards, so a
    slow thread that loses the race cannot erase a faster thread's
    progress report.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._last = time.monotonic()

    def note(self) -> None:
        """Record that forward progress happened (now)."""
        t = time.monotonic()
        with self._lock:
            if t > self._last:
                self._last = t

    def seconds_since(self) -> float:
        """Seconds elapsed since the most recent progress report."""
        with self._lock:
            return time.monotonic() - self._last


@dataclass(frozen=True)
class FaultPolicy:
    """Retry/backoff/watchdog configuration for one engine run.

    Parameters
    ----------
    max_retries:
        How many *additional* attempts a failed task gets before its
        failure is considered permanent.  ``0`` disables retry.
    backoff_base_s:
        Delay before the first retry.
    backoff_factor:
        Multiplier applied per subsequent retry (exponential backoff).
    backoff_cap_s:
        Upper bound on any single backoff delay.
    watchdog_s:
        Real mode: raise :class:`~repro.errors.WatchdogTimeoutError` when
        tasks remain pending but nothing has run or completed for this
        many wall-clock seconds.  ``None`` disables the watchdog
        (restores the historical hang-forever behaviour; not advised).
    retry_on:
        Exception classes considered transient in real mode.  Failures
        outside this tuple (e.g. ``KeyboardInterrupt``) propagate
        immediately without retry.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.001
    backoff_factor: float = 2.0
    backoff_cap_s: float = 0.25
    watchdog_s: Optional[float] = 30.0
    retry_on: tuple = (Exception,)

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.watchdog_s is not None and self.watchdog_s <= 0:
            raise ValueError("watchdog_s must be positive (or None)")

    def backoff(self, attempt: int) -> float:
        """Backoff delay before retry number ``attempt`` (1-based)."""
        if attempt <= 0:
            return 0.0
        delay = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        return min(self.backoff_cap_s, delay)
