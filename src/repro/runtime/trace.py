"""Execution traces and run statistics.

Every simulated (or real) run produces a :class:`TraceLog`: per-task
records plus aggregate views (makespan, per-worker utilization, Gantt
rows, CSV export).  The Figure-5 harness and the scheduler-ablation bench
read their numbers from here.
"""

from __future__ import annotations

import io
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.digest import fingerprint_payload

__all__ = ["TaskTrace", "TransferTrace", "FaultTrace", "TraceLog", "RunResult"]


@dataclass(frozen=True)
class TaskTrace:
    """One executed task."""

    task_id: int
    tag: str
    kernel: str
    worker_id: str
    architecture: str
    start: float
    end: float
    transfer_wait: float  # seconds spent staging operands before start

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TransferTrace:
    """One data movement."""

    handle_name: str
    nbytes: int
    src_node: int
    dst_node: int
    start: float
    end: float


@dataclass(frozen=True)
class FaultTrace:
    """One fault-tolerance event (failure, retry, requeue, watchdog).

    ``kind`` is one of ``task-fault`` (an execution attempt failed),
    ``worker-fault`` (a lane died), ``retry`` (a failed task was given
    another attempt), ``requeue`` (a claimed or queued task migrated off
    a dead or retiring lane), ``watchdog`` (the stall watchdog fired),
    ``retire`` (a lane left the fleet gracefully — scale-down, not a
    failure), or — serving front end — ``shed`` / ``rate-limited`` (an
    arrival was rejected by admission control).
    """

    kind: str
    time: float
    task_tag: str
    worker_id: str
    detail: str = ""


class TraceLog:
    """Accumulates traces during one run.

    ``max_events`` (per record kind) turns the log into a bounded ring
    buffer for long-lived runs — the serving loop records forever, so an
    unbounded list would grow without bound.  Once a ring is full the
    oldest record of that kind is evicted for each new one and the
    matching ``dropped_*`` counter increments; counters and the
    ``dropped`` block in :meth:`to_payload` stay at zero until an
    eviction actually happens, so payloads and fingerprints of runs that
    never hit the bound are byte-identical to the unbounded form.
    """

    def __init__(self, *, max_events: Optional[int] = None):
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events!r}")
        self.max_events = max_events
        if max_events is None:
            self.tasks: list[TaskTrace] = []
            self.transfers: list[TransferTrace] = []
            self.faults: list[FaultTrace] = []
        else:
            self.tasks = deque(maxlen=max_events)  # type: ignore[assignment]
            self.transfers = deque(maxlen=max_events)  # type: ignore[assignment]
            self.faults = deque(maxlen=max_events)  # type: ignore[assignment]
        self.dropped_tasks = 0
        self.dropped_transfers = 0
        self.dropped_faults = 0

    def _full(self, records) -> bool:
        return self.max_events is not None and len(records) == self.max_events

    # -- recording ---------------------------------------------------------
    def record_task(self, trace: TaskTrace) -> None:
        if self._full(self.tasks):
            self.dropped_tasks += 1
        self.tasks.append(trace)

    def record_transfer(self, trace: TransferTrace) -> None:
        if self._full(self.transfers):
            self.dropped_transfers += 1
        self.transfers.append(trace)

    def record_fault(self, trace: FaultTrace) -> None:
        if self._full(self.faults):
            self.dropped_faults += 1
        self.faults.append(trace)

    @property
    def dropped_events(self) -> int:
        """Total records evicted by the ring bound (0 when unbounded)."""
        return self.dropped_tasks + self.dropped_transfers + self.dropped_faults

    # -- aggregates ------------------------------------------------------------
    @property
    def makespan(self) -> float:
        if not self.tasks:
            return 0.0
        end = max(t.end for t in self.tasks)
        if self.transfers:
            end = max(end, max(t.end for t in self.transfers))
        return end

    def busy_time(self, worker_id: str) -> float:
        return sum(t.duration for t in self.tasks if t.worker_id == worker_id)

    def utilization(self) -> dict[str, float]:
        """worker id → busy fraction of the makespan."""
        span = self.makespan
        if span <= 0:
            return {}
        workers = {t.worker_id for t in self.tasks}
        return {w: self.busy_time(w) / span for w in sorted(workers)}

    def tasks_per_worker(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for t in self.tasks:
            counts[t.worker_id] = counts.get(t.worker_id, 0) + 1
        return counts

    def tasks_per_architecture(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for t in self.tasks:
            counts[t.architecture] = counts.get(t.architecture, 0) + 1
        return counts

    def fault_counts(self) -> dict[str, int]:
        """fault kind → occurrence count (empty dict for a clean run)."""
        counts: dict[str, int] = {}
        for f in self.faults:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        return counts

    @property
    def bytes_transferred(self) -> float:
        return sum(t.nbytes for t in self.transfers)

    def gantt_rows(self) -> dict[str, list[tuple[float, float, str]]]:
        """worker id → list of (start, end, tag) sorted by start."""
        rows: dict[str, list[tuple[float, float, str]]] = {}
        for t in sorted(self.tasks, key=lambda t: t.start):
            rows.setdefault(t.worker_id, []).append((t.start, t.end, t.tag))
        return rows

    def to_csv(self) -> str:
        out = io.StringIO()
        out.write("task_id,tag,kernel,worker,architecture,start,end,transfer_wait\n")
        for t in sorted(self.tasks, key=lambda t: (t.start, t.task_id)):
            out.write(
                f"{t.task_id},{t.tag},{t.kernel},{t.worker_id},"
                f"{t.architecture},{t.start:.9f},{t.end:.9f},{t.transfer_wait:.9f}\n"
            )
        return out.getvalue()

    def to_payload(self) -> dict:
        """Canonical JSON-serializable form of the full event log.

        Every float goes in *exactly* (no rounding): the payload is the
        substrate of the scalar-vs-vectorized parity gate, which demands
        bit-identical timelines, not approximately-equal ones.  Records
        are canonically sorted so that benign reorderings of same-time
        recordings (two transfers issued in one event) cannot produce a
        spurious mismatch while every value still participates.

        A bounded log that actually evicted records gains a ``dropped``
        block; a bounded log that never hit its ring bound emits exactly
        the unbounded payload.
        """
        payload = {
            "tasks": [
                {
                    "task_id": t.task_id,
                    "tag": t.tag,
                    "kernel": t.kernel,
                    "worker": t.worker_id,
                    "architecture": t.architecture,
                    "start": t.start,
                    "end": t.end,
                    "transfer_wait": t.transfer_wait,
                }
                for t in sorted(self.tasks, key=lambda t: (t.task_id, t.start))
            ],
            "transfers": [
                {
                    "handle": t.handle_name,
                    "nbytes": t.nbytes,
                    "src": t.src_node,
                    "dst": t.dst_node,
                    "start": t.start,
                    "end": t.end,
                }
                for t in sorted(
                    self.transfers,
                    key=lambda t: (
                        t.start, t.end, t.handle_name, t.src_node,
                        t.dst_node, t.nbytes,
                    ),
                )
            ],
            "faults": [
                {
                    "kind": f.kind,
                    "time": f.time,
                    "task_tag": f.task_tag,
                    "worker": f.worker_id,
                    "detail": f.detail,
                }
                for f in sorted(
                    self.faults,
                    key=lambda f: (
                        f.time, f.kind, f.task_tag, f.worker_id, f.detail
                    ),
                )
            ],
        }
        if self.dropped_events:
            payload["dropped"] = {
                "tasks": self.dropped_tasks,
                "transfers": self.dropped_transfers,
                "faults": self.dropped_faults,
            }
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "TraceLog":
        """Rehydrate a log from its :meth:`to_payload` form (the replay
        driver feeds saved trace files back in as arrival streams).
        Dropped-event counters survive the round trip; the evicted
        records themselves are gone by construction."""
        log = cls()
        for t in payload.get("tasks", ()):
            log.record_task(
                TaskTrace(
                    task_id=t["task_id"],
                    tag=t["tag"],
                    kernel=t["kernel"],
                    worker_id=t["worker"],
                    architecture=t["architecture"],
                    start=t["start"],
                    end=t["end"],
                    transfer_wait=t["transfer_wait"],
                )
            )
        for t in payload.get("transfers", ()):
            log.record_transfer(
                TransferTrace(
                    handle_name=t["handle"],
                    nbytes=t["nbytes"],
                    src_node=t["src"],
                    dst_node=t["dst"],
                    start=t["start"],
                    end=t["end"],
                )
            )
        for f in payload.get("faults", ()):
            log.record_fault(
                FaultTrace(
                    kind=f["kind"],
                    time=f["time"],
                    task_tag=f["task_tag"],
                    worker_id=f["worker"],
                    detail=f["detail"],
                )
            )
        dropped = payload.get("dropped", {})
        log.dropped_tasks = dropped.get("tasks", 0)
        log.dropped_transfers = dropped.get("transfers", 0)
        log.dropped_faults = dropped.get("faults", 0)
        return log

    def fingerprint(self) -> str:
        """Stable sha256 over :meth:`to_payload` (the shared convention
        of every toolchain report object).  Two runs of the same DAG on
        the same platform fingerprint identically iff their complete
        task/transfer/fault timelines are byte-identical."""
        return fingerprint_payload(self.to_payload())


@dataclass
class RunResult:
    """Outcome of one engine run."""

    makespan: float
    mode: str  # "sim" | "real"
    scheduler: str
    task_count: int
    trace: TraceLog
    transfer_count: int = 0
    bytes_transferred: float = 0.0
    #: wall-clock seconds the run itself took (host time, both modes)
    wall_time: float = 0.0
    #: capacity modeling (when enabled): LRU evictions and write-back volume
    eviction_count: int = 0
    writeback_bytes: float = 0.0
    #: fault tolerance: failed execution attempts (task faults)
    task_failures: int = 0
    #: fault tolerance: failed attempts that were given another try
    retry_count: int = 0
    #: fault tolerance: tasks migrated off a dead/offline lane
    requeue_count: int = 0
    #: fault tolerance: worker lanes lost mid-run
    worker_failures: int = 0
    #: runtime-emitted findings (``engine.diagnostics`` at run end, e.g.
    #: RT001 corrupt-AVAILABLE lane exclusions), as canonical-ordered
    #: JSON payloads — a sweep scoring this platform sees the run was
    #: degraded instead of silently trusting the makespan
    diagnostics: list = field(default_factory=list)

    def gflops(self, total_flops: float) -> float:
        """Achieved GFLOP/s for a computation of ``total_flops``."""
        if self.makespan <= 0:
            return 0.0
        return total_flops / self.makespan / 1e9

    def to_payload(self) -> dict:
        """JSON-serializable aggregate of the run.

        Deterministic for deterministic simulations: ``wall_time`` (host
        time, noisy by nature) is deliberately excluded so two identical
        sim runs fingerprint identically; per-event detail stays on
        :attr:`trace`.
        """
        return {
            "makespan_s": self.makespan,
            "mode": self.mode,
            "scheduler": self.scheduler,
            "task_count": self.task_count,
            "transfer_count": self.transfer_count,
            "bytes_transferred": self.bytes_transferred,
            "eviction_count": self.eviction_count,
            "writeback_bytes": self.writeback_bytes,
            "faults": {
                "task_failures": self.task_failures,
                "retries": self.retry_count,
                "requeues": self.requeue_count,
                "worker_failures": self.worker_failures,
            },
            "tasks_by_architecture": dict(
                sorted(self.trace.tasks_per_architecture().items())
            ),
            "utilization": {
                w: round(u, 9) for w, u in self.trace.utilization().items()
            },
            "diagnostics": list(self.diagnostics),
        }

    def fingerprint(self) -> str:
        """Stable sha256 over :meth:`to_payload` (the shared convention
        of every toolchain report object)."""
        return fingerprint_payload(self.to_payload())

    def summary(self) -> str:
        lines = [
            f"mode={self.mode} scheduler={self.scheduler}"
            f" tasks={self.task_count}",
            f"makespan: {self.makespan:.6f} s",
            f"transfers: {self.transfer_count}"
            f" ({self.bytes_transferred / 2**20:.1f} MiB)",
        ]
        if (
            self.task_failures
            or self.retry_count
            or self.requeue_count
            or self.worker_failures
        ):
            lines.append(
                f"faults: {self.task_failures} task failures,"
                f" {self.retry_count} retries, {self.requeue_count} requeues,"
                f" {self.worker_failures} worker failures"
            )
        util = self.trace.utilization()
        if util:
            per_arch = self.trace.tasks_per_architecture()
            lines.append(
                "tasks by architecture: "
                + ", ".join(f"{a}={n}" for a, n in sorted(per_arch.items()))
            )
            lines.append(
                "utilization: "
                + ", ".join(f"{w}={u:.0%}" for w, u in util.items())
            )
        return "\n".join(lines)
