"""Worker contexts: the runtime's view of one executable processing unit.

The engine expands PDL Worker entities (``quantity=8`` → eight worker
contexts) and binds each to a memory node.  A worker context carries the
PU *entity* id (used for interconnect routing — links are declared against
entities) and a unique *instance* id (used for traces and scheduling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuntimeEngineError
from repro.kernels.registry import KernelRegistry
from repro.model.entities import ProcessingUnit

__all__ = ["WorkerContext"]


@dataclass
class WorkerContext:
    """One schedulable execution lane."""

    instance_id: str  # unique, e.g. "cpu#3" or "gpu0"
    entity_id: str  # PDL entity id, e.g. "cpu" (for routing)
    pu: ProcessingUnit  # the (possibly shared) PDL entity
    architecture: str
    memory_node: int

    # -- simulation state ------------------------------------------------
    busy_until: float = 0.0
    is_idle: bool = True
    #: accumulated busy seconds (exec only, not transfers)
    busy_time: float = 0.0
    tasks_executed: int = 0
    #: lane died mid-run (worker fault); it never comes back, unlike an
    #: AVAILABLE=false lane that a PUOnline event can revive
    retired: bool = False

    def reset(self) -> None:
        self.busy_until = 0.0
        self.is_idle = True
        self.busy_time = 0.0
        self.tasks_executed = 0
        self.retired = False

    def supports(self, registry: KernelRegistry, kernel: str) -> bool:
        """Whether this worker has an implementation variant for ``kernel``."""
        return registry.get(kernel).supports(self.architecture)

    def __repr__(self) -> str:
        return (
            f"WorkerContext({self.instance_id!r}, arch={self.architecture!r},"
            f" node={self.memory_node})"
        )


def expand_workers(
    leaf_pus: list[ProcessingUnit],
    node_of_entity: dict[str, int],
) -> list[WorkerContext]:
    """Expand PDL worker entities into per-instance contexts."""
    workers: list[WorkerContext] = []
    for pu in leaf_pus:
        arch = pu.architecture
        if arch is None:
            raise RuntimeEngineError(
                f"worker PU {pu.id!r} lacks an ARCHITECTURE property"
            )
        node = node_of_entity[pu.id]
        if pu.quantity == 1:
            workers.append(
                WorkerContext(
                    instance_id=pu.id,
                    entity_id=pu.id,
                    pu=pu,
                    architecture=arch,
                    memory_node=node,
                )
            )
        else:
            for k in range(pu.quantity):
                workers.append(
                    WorkerContext(
                        instance_id=f"{pu.id}#{k}",
                        entity_id=pu.id,
                        pu=pu,
                        architecture=arch,
                        memory_node=node,
                    )
                )
    return workers
