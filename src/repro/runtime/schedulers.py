"""Pluggable task schedulers (StarPU's scheduling-policy zoo, §IV-D).

Four policies, matching the families StarPU shipped at the paper's time:

``eager``
    One central FIFO; idle workers grab the first compatible task.
``ws`` (work stealing)
    Per-worker deques; ready tasks go to the shortest compatible queue,
    idle workers steal from the longest.
``dm`` (deque model)
    Performance-model driven: each ready task is placed on the worker with
    the earliest *estimated finish time* considering execution cost only.
``dmda`` (deque model, data aware)
    Like ``dm`` but the estimate adds the data-transfer cost of operands
    not yet valid on the candidate worker's memory node — the policy the
    StarPU DGEMM experiments used.

Schedulers interact with the engine through two calls:
:meth:`Scheduler.task_ready` (a task's dependencies resolved) and
:meth:`Scheduler.next_task` (an idle worker asks for work).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional, Protocol

import numpy as np

from repro.errors import SchedulerError
from repro.runtime.tasks import RuntimeTask
from repro.runtime.workers import WorkerContext

__all__ = [
    "CostModel",
    "Scheduler",
    "EagerScheduler",
    "WorkStealingScheduler",
    "DequeModelScheduler",
    "RandomScheduler",
    "make_scheduler",
    "SCHEDULER_NAMES",
]


class CostModel(Protocol):
    """What a performance-model-driven scheduler may ask the engine."""

    def exec_estimate(self, task: RuntimeTask, worker: WorkerContext) -> float:
        """Estimated kernel execution seconds of ``task`` on ``worker``."""
        ...

    def transfer_estimate(self, task: RuntimeTask, worker: WorkerContext) -> float:
        """Estimated seconds to stage missing operands onto ``worker``."""
        ...

    def supports(self, task: RuntimeTask, worker: WorkerContext) -> bool:
        """Whether ``worker`` has an implementation for ``task``."""
        ...


class BatchCostModel(Protocol):
    """What the vectorized engine offers batch-capable schedulers.

    A batch model answers *rows*: one float64/bool value per attached
    worker, aligned with the scheduler's worker list.  Scalar
    :class:`CostModel` calls remain available (and must return the same
    floats element-for-element) for the paths that stay scalar — steal,
    drain, peek.
    """

    def cost_row(self, task: RuntimeTask, data_aware: bool) -> "np.ndarray":
        """``exec [+ transfer]`` seconds per worker; +inf where the
        worker is offline or lacks an implementation."""
        ...

    def eager_mask(self, kinds: "np.ndarray", worker_index: int) -> "np.ndarray":
        """Bool mask over kernel-kind codes: which a worker can run."""
        ...

    def worker_online(self, worker_index: int) -> bool:
        ...

    def kind_of(self, task: RuntimeTask) -> int:
        """Interned kernel-kind code for ``task``."""
        ...


class Scheduler:
    """Base class; concrete policies override the queue behaviour."""

    name = "base"

    def __init__(self):
        self.workers: list[WorkerContext] = []
        self.cost: Optional[CostModel] = None
        #: batch cost model when the engine enabled vectorized scoring
        self._batch: Optional[BatchCostModel] = None

    def attach(self, workers: list[WorkerContext], cost: CostModel) -> None:
        self.workers = list(workers)
        self.cost = cost
        self._batch = None  # re-enabled explicitly after each attach
        self.reset()

    def enable_batch(self, batch: BatchCostModel) -> bool:
        """Offer a batch cost model; returns True when the policy uses it.

        Policies without an array fast path ignore the offer and keep
        their scalar behaviour (the engine works either way).
        """
        return False

    def reset(self) -> None:
        """Clear queues for a fresh run."""

    # -- protocol ----------------------------------------------------------
    def task_ready(self, task: RuntimeTask, now: float) -> None:
        raise NotImplementedError

    def next_task(self, worker: WorkerContext, now: float) -> Optional[RuntimeTask]:
        raise NotImplementedError

    def peek(self, worker: WorkerContext) -> Optional[RuntimeTask]:
        """The task ``worker`` would get next, without removing it.

        Used by the engine's data-prefetch path; policies without a
        per-worker queue may return None (no prefetch opportunity).
        """
        return None

    def drain(self, worker: WorkerContext) -> list[RuntimeTask]:
        """Remove and return every task queued specifically for ``worker``.

        Called when a worker goes offline mid-run; the engine re-submits
        the drained tasks so other workers pick them up.  Central-queue
        policies have nothing worker-bound to drain.
        """
        return []

    def pending_count(self) -> int:
        raise NotImplementedError


class _EagerArrayQueue:
    """SoA central queue: priority/kind/liveness arrays + task refs.

    The scalar eager policy re-scans its whole deque per idle-worker
    poll (O(queue) Python iterations each).  Here the scan is one numpy
    ``argmax`` over a masked priority column.  ``argmax`` returns the
    *first* occurrence of the maximum, which is exactly the scalar
    loop's first-strict-greater rule — FIFO among equal priorities — so
    pick order (and hence trace fingerprints) is unchanged.
    """

    _GROW = 1024

    def __init__(self, batch: BatchCostModel):
        self._batch = batch
        cap = self._GROW
        self._prio = np.full(cap, -np.inf, dtype=np.float64)
        self._kind = np.zeros(cap, dtype=np.int32)
        self._live = np.zeros(cap, dtype=bool)
        self._tasks: list[Optional[RuntimeTask]] = [None] * cap
        self._n = 0
        self._alive = 0

    def push(self, task: RuntimeTask) -> None:
        if self._n == len(self._prio):
            self._compact_or_grow()
        i = self._n
        self._n += 1
        self._prio[i] = task.priority
        self._kind[i] = self._batch.kind_of(task)
        self._live[i] = True
        self._tasks[i] = task
        self._alive += 1

    def _compact_or_grow(self) -> None:
        n = self._n
        keep = np.flatnonzero(self._live[:n])
        if len(keep) <= n // 2:
            # mostly dead rows: compact in place, preserving FIFO order
            m = len(keep)
            self._prio[:m] = self._prio[keep]
            self._kind[:m] = self._kind[keep]
            self._live[:m] = True
            self._live[m:n] = False
            self._prio[m:n] = -np.inf
            self._tasks[:m] = [self._tasks[i] for i in keep]
            self._tasks[m:n] = [None] * (n - m)
            self._n = m
            return
        cap = len(self._prio) * 2
        for name, fill in (("_prio", -np.inf), ("_kind", 0), ("_live", False)):
            old = getattr(self, name)
            grown = np.full(cap, fill, dtype=old.dtype)
            grown[: len(old)] = old
            setattr(self, name, grown)
        self._tasks.extend([None] * (cap - len(self._tasks)))

    def _best(self, worker_index: int) -> Optional[int]:
        if self._alive == 0 or not self._batch.worker_online(worker_index):
            return None
        n = self._n
        mask = self._live[:n] & self._batch.eager_mask(self._kind[:n], worker_index)
        scores = np.where(mask, self._prio[:n], -np.inf)
        i = int(scores.argmax()) if n else 0
        if n == 0 or scores[i] == -np.inf:
            return None
        return i

    def pop(self, worker_index: int) -> Optional[RuntimeTask]:
        i = self._best(worker_index)
        if i is None:
            return None
        task = self._tasks[i]
        self._tasks[i] = None
        self._live[i] = False
        self._prio[i] = -np.inf
        self._alive -= 1
        return task

    def peek(self, worker_index: int) -> Optional[RuntimeTask]:
        i = self._best(worker_index)
        return None if i is None else self._tasks[i]

    def __len__(self) -> int:
        return self._alive


class EagerScheduler(Scheduler):
    """Central queue; highest-priority compatible task wins, FIFO on ties."""

    name = "eager"

    def reset(self) -> None:
        self._queue: deque[RuntimeTask] = deque()
        self._aq: Optional[_EagerArrayQueue] = (
            _EagerArrayQueue(self._batch) if self._batch is not None else None
        )
        self._windex = {w.instance_id: i for i, w in enumerate(self.workers)}

    def enable_batch(self, batch: BatchCostModel) -> bool:
        self._batch = batch
        self.reset()
        return True

    def task_ready(self, task: RuntimeTask, now: float) -> None:
        if self._aq is not None:
            self._aq.push(task)
        else:
            self._queue.append(task)

    def next_task(self, worker: WorkerContext, now: float) -> Optional[RuntimeTask]:
        if self._aq is not None:
            return self._aq.pop(self._windex[worker.instance_id])
        best_index: Optional[int] = None
        best_priority = None
        for i, task in enumerate(self._queue):
            if not self.cost.supports(task, worker):
                continue
            if best_index is None or task.priority > best_priority:
                best_index, best_priority = i, task.priority
        if best_index is None:
            return None
        task = self._queue[best_index]
        del self._queue[best_index]
        return task

    def peek(self, worker: WorkerContext) -> Optional[RuntimeTask]:
        if self._aq is not None:
            return self._aq.peek(self._windex[worker.instance_id])
        best = None
        for task in self._queue:
            if not self.cost.supports(task, worker):
                continue
            if best is None or task.priority > best.priority:
                best = task
        return best

    def pending_count(self) -> int:
        if self._aq is not None:
            return len(self._aq)
        return len(self._queue)


class WorkStealingScheduler(Scheduler):
    """Per-worker deques with stealing from the longest queue."""

    name = "ws"

    def reset(self) -> None:
        self._queues: dict[str, deque[RuntimeTask]] = {
            w.instance_id: deque() for w in self.workers
        }

    def task_ready(self, task: RuntimeTask, now: float) -> None:
        candidates = [w for w in self.workers if self.cost.supports(task, w)]
        if not candidates:
            raise SchedulerError(
                f"no worker supports kernel {task.kernel!r}"
            )
        target = min(candidates, key=lambda w: len(self._queues[w.instance_id]))
        self._queues[target.instance_id].append(task)

    def next_task(self, worker: WorkerContext, now: float) -> Optional[RuntimeTask]:
        own = self._queues[worker.instance_id]
        if own:
            return own.popleft()
        # steal from the back of the longest compatible queue
        victims = sorted(
            (w for w in self.workers if w.instance_id != worker.instance_id),
            key=lambda w: -len(self._queues[w.instance_id]),
        )
        for victim in victims:
            queue = self._queues[victim.instance_id]
            for i in range(len(queue) - 1, -1, -1):
                if self.cost.supports(queue[i], worker):
                    task = queue[i]
                    del queue[i]
                    return task
        return None

    def peek(self, worker: WorkerContext) -> Optional[RuntimeTask]:
        own = self._queues[worker.instance_id]
        return own[0] if own else None

    def drain(self, worker: WorkerContext) -> list[RuntimeTask]:
        own = self._queues[worker.instance_id]
        drained = list(own)
        own.clear()
        return drained


    def pending_count(self) -> int:
        return sum(len(q) for q in self._queues.values())


class DequeModelScheduler(Scheduler):
    """StarPU's ``dm`` / ``dmda``: earliest-estimated-finish placement.

    Maintains a per-worker estimated-free clock; each ready task is
    appended to the deque of the worker minimizing

    ``max(now, est_free) + (transfer if data_aware) + exec``.

    The estimated cost *charged* per queued task is remembered so the
    clock can be rewound when a task leaves a queue without running
    there: :meth:`drain` (worker went offline) credits the drained
    costs back, and with ``steal=True`` an idle worker that steals a
    queued task moves its charge from the victim to the thief.  Without
    the rewind an offline/online cycle leaves the revived lane with an
    inflated finish estimate and dm/dmda placement shuns it.

    The rewind is a *re-derivation*, not a clamped subtraction: each
    lane also tracks a ``committed`` horizon — the finish estimate of
    work already popped for execution there — and after any refund
    ``est_free`` is recomputed as ``committed + Σ remaining charges``.
    The historical ``max(0, est_free - refund)`` clamp silently dropped
    part of the refund whenever the subtraction crossed zero (repeated
    steals off a lane whose clock had mostly drained), leaving the
    victim permanently over-booked and shunned by later placements.
    """

    def __init__(self, *, data_aware: bool = True, steal: bool = False):
        super().__init__()
        self.data_aware = data_aware
        #: idle workers may steal queued tasks from the longest queue
        #: (charge-migrating; off by default to preserve strict dm/dmda
        #: pre-assignment semantics)
        self.steal = steal
        self.name = "dmda" if data_aware else "dm"

    def reset(self) -> None:
        self._queues: dict[str, deque[RuntimeTask]] = {
            w.instance_id: deque() for w in self.workers
        }
        self._est_free: dict[str, float] = {w.instance_id: 0.0 for w in self.workers}
        #: worker id → {task id → estimated cost charged while queued}
        self._charge: dict[str, dict[int, float]] = {
            w.instance_id: {} for w in self.workers
        }
        #: worker id → finish horizon of work already popped to execute
        #: there (the part of est_free no refund may touch)
        self._committed: dict[str, float] = {
            w.instance_id: 0.0 for w in self.workers
        }
        self._windex = {w.instance_id: i for i, w in enumerate(self.workers)}
        self._est_free_arr: Optional[np.ndarray] = (
            np.zeros(len(self.workers), dtype=np.float64)
            if self._batch is not None
            else None
        )

    def enable_batch(self, batch: BatchCostModel) -> bool:
        self._batch = batch
        self.reset()
        return True

    def _set_est_free(self, instance_id: str, value: float) -> None:
        self._est_free[instance_id] = value
        if self._est_free_arr is not None:
            self._est_free_arr[self._windex[instance_id]] = value

    def _rederive(self, instance_id: str) -> None:
        """Recompute ``est_free`` from committed work + queued charges."""
        self._set_est_free(
            instance_id,
            self._committed[instance_id]
            + sum(self._charge[instance_id].values()),
        )

    def _task_cost(self, task: RuntimeTask, worker: WorkerContext) -> float:
        cost = self.cost.exec_estimate(task, worker)
        if self.data_aware:
            cost += self.cost.transfer_estimate(task, worker)
        return cost

    def task_ready(self, task: RuntimeTask, now: float) -> None:
        if self._batch is not None:
            self._task_ready_batch(task, now)
            return
        best: Optional[WorkerContext] = None
        best_finish = float("inf")
        best_cost = 0.0
        for worker in self.workers:
            if not self.cost.supports(task, worker):
                continue
            begin = max(now, self._est_free[worker.instance_id])
            cost = self._task_cost(task, worker)
            finish = begin + cost
            if finish < best_finish:
                best_finish = finish
                best = worker
                best_cost = cost
        if best is None:
            raise SchedulerError(f"no worker supports kernel {task.kernel!r}")
        self._queues[best.instance_id].append(task)
        self._charge[best.instance_id][task.id] = best_cost
        self._set_est_free(best.instance_id, best_finish)

    def _task_ready_batch(self, task: RuntimeTask, now: float) -> None:
        """Array scoring: one vectorized pass over the candidate row.

        Element-for-element this computes the same IEEE doubles as the
        scalar loop (``np.maximum``/``+`` are the same operations), and
        ``argmin`` returns the first occurrence of the minimum — the
        scalar loop's first-strict-less winner — so placement, charges
        and clocks match the scalar path bit-for-bit.
        """
        cost = self._batch.cost_row(task, self.data_aware)
        finish = np.maximum(now, self._est_free_arr) + cost
        i = int(finish.argmin())
        best_finish = float(finish[i])
        if best_finish == float("inf"):
            raise SchedulerError(f"no worker supports kernel {task.kernel!r}")
        instance_id = self.workers[i].instance_id
        self._queues[instance_id].append(task)
        self._charge[instance_id][task.id] = float(cost[i])
        self._est_free[instance_id] = best_finish
        self._est_free_arr[i] = best_finish

    def next_task(self, worker: WorkerContext, now: float) -> Optional[RuntimeTask]:
        own = self._queues[worker.instance_id]
        if own:
            task = own.popleft()
            # the cost stays baked into est_free: the worker is about to
            # spend it executing.  The charge record migrates into the
            # committed horizon so later refunds cannot rewind past it.
            charge = self._charge[worker.instance_id].pop(task.id, None)
            if charge is not None:
                self._committed[worker.instance_id] = (
                    max(now, self._committed[worker.instance_id]) + charge
                )
            return task
        if not self.steal:
            return None
        victims = sorted(
            (w for w in self.workers if w.instance_id != worker.instance_id),
            key=lambda w: -len(self._queues[w.instance_id]),
        )
        for victim in victims:
            queue = self._queues[victim.instance_id]
            for i in range(len(queue) - 1, -1, -1):
                if not self.cost.supports(queue[i], worker):
                    continue
                task = queue[i]
                del queue[i]
                # migrate the charge: re-derive the victim's clock from
                # its committed work + remaining queued charges, debit
                # the thief's with the thief's own estimate
                refund = self._charge[victim.instance_id].pop(task.id, None)
                if refund is not None:
                    self._rederive(victim.instance_id)
                debited = max(
                    now, self._est_free[worker.instance_id]
                ) + self._task_cost(task, worker)
                self._set_est_free(worker.instance_id, debited)
                # the stolen task executes immediately on the thief: its
                # cost is committed work, not a refundable queue charge
                self._committed[worker.instance_id] = debited
                return task
        return None

    def peek(self, worker: WorkerContext) -> Optional[RuntimeTask]:
        own = self._queues[worker.instance_id]
        return own[0] if own else None

    def drain(self, worker: WorkerContext) -> list[RuntimeTask]:
        own = self._queues[worker.instance_id]
        drained = list(own)
        own.clear()
        charges = self._charge[worker.instance_id]
        for t in drained:
            charges.pop(t.id, None)
        # rewind the estimated-free clock so a later online event sees
        # the lane as free, not burdened by work it will never run —
        # but never below the horizon of work it already accepted
        self._rederive(worker.instance_id)
        return drained

    def pending_count(self) -> int:
        return sum(len(q) for q in self._queues.values())


class RandomScheduler(Scheduler):
    """Uniform-random placement over compatible workers (ablation baseline)."""

    name = "random"

    def __init__(self, seed: int = 0):
        super().__init__()
        self._seed = seed

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._queues: dict[str, deque[RuntimeTask]] = {
            w.instance_id: deque() for w in self.workers
        }

    def task_ready(self, task: RuntimeTask, now: float) -> None:
        candidates = [w for w in self.workers if self.cost.supports(task, w)]
        if not candidates:
            raise SchedulerError(f"no worker supports kernel {task.kernel!r}")
        target = self._rng.choice(candidates)
        self._queues[target.instance_id].append(task)

    def next_task(self, worker: WorkerContext, now: float) -> Optional[RuntimeTask]:
        own = self._queues[worker.instance_id]
        if own:
            return own.popleft()
        return None

    def peek(self, worker: WorkerContext) -> Optional[RuntimeTask]:
        own = self._queues[worker.instance_id]
        return own[0] if own else None

    def drain(self, worker: WorkerContext) -> list[RuntimeTask]:
        own = self._queues[worker.instance_id]
        drained = list(own)
        own.clear()
        return drained


    def pending_count(self) -> int:
        return sum(len(q) for q in self._queues.values())


SCHEDULER_NAMES = ("eager", "ws", "dm", "dmda", "random")


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Factory by policy name (``eager | ws | dm | dmda | random``)."""
    if name == "eager":
        return EagerScheduler()
    if name == "ws":
        return WorkStealingScheduler()
    if name == "dm":
        return DequeModelScheduler(data_aware=False, **kwargs)
    if name == "dmda":
        return DequeModelScheduler(data_aware=True, **kwargs)
    if name == "random":
        return RandomScheduler(**kwargs)
    raise SchedulerError(
        f"unknown scheduler {name!r}; available: {SCHEDULER_NAMES}"
    )
