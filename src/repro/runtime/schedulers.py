"""Pluggable task schedulers (StarPU's scheduling-policy zoo, §IV-D).

Four policies, matching the families StarPU shipped at the paper's time:

``eager``
    One central FIFO; idle workers grab the first compatible task.
``ws`` (work stealing)
    Per-worker deques; ready tasks go to the shortest compatible queue,
    idle workers steal from the longest.
``dm`` (deque model)
    Performance-model driven: each ready task is placed on the worker with
    the earliest *estimated finish time* considering execution cost only.
``dmda`` (deque model, data aware)
    Like ``dm`` but the estimate adds the data-transfer cost of operands
    not yet valid on the candidate worker's memory node — the policy the
    StarPU DGEMM experiments used.

Schedulers interact with the engine through two calls:
:meth:`Scheduler.task_ready` (a task's dependencies resolved) and
:meth:`Scheduler.next_task` (an idle worker asks for work).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional, Protocol

from repro.errors import SchedulerError
from repro.runtime.tasks import RuntimeTask
from repro.runtime.workers import WorkerContext

__all__ = [
    "CostModel",
    "Scheduler",
    "EagerScheduler",
    "WorkStealingScheduler",
    "DequeModelScheduler",
    "RandomScheduler",
    "make_scheduler",
    "SCHEDULER_NAMES",
]


class CostModel(Protocol):
    """What a performance-model-driven scheduler may ask the engine."""

    def exec_estimate(self, task: RuntimeTask, worker: WorkerContext) -> float:
        """Estimated kernel execution seconds of ``task`` on ``worker``."""
        ...

    def transfer_estimate(self, task: RuntimeTask, worker: WorkerContext) -> float:
        """Estimated seconds to stage missing operands onto ``worker``."""
        ...

    def supports(self, task: RuntimeTask, worker: WorkerContext) -> bool:
        """Whether ``worker`` has an implementation for ``task``."""
        ...


class Scheduler:
    """Base class; concrete policies override the queue behaviour."""

    name = "base"

    def __init__(self):
        self.workers: list[WorkerContext] = []
        self.cost: Optional[CostModel] = None

    def attach(self, workers: list[WorkerContext], cost: CostModel) -> None:
        self.workers = list(workers)
        self.cost = cost
        self.reset()

    def reset(self) -> None:
        """Clear queues for a fresh run."""

    # -- protocol ----------------------------------------------------------
    def task_ready(self, task: RuntimeTask, now: float) -> None:
        raise NotImplementedError

    def next_task(self, worker: WorkerContext, now: float) -> Optional[RuntimeTask]:
        raise NotImplementedError

    def peek(self, worker: WorkerContext) -> Optional[RuntimeTask]:
        """The task ``worker`` would get next, without removing it.

        Used by the engine's data-prefetch path; policies without a
        per-worker queue may return None (no prefetch opportunity).
        """
        return None

    def drain(self, worker: WorkerContext) -> list[RuntimeTask]:
        """Remove and return every task queued specifically for ``worker``.

        Called when a worker goes offline mid-run; the engine re-submits
        the drained tasks so other workers pick them up.  Central-queue
        policies have nothing worker-bound to drain.
        """
        return []

    def pending_count(self) -> int:
        raise NotImplementedError


class EagerScheduler(Scheduler):
    """Central queue; highest-priority compatible task wins, FIFO on ties."""

    name = "eager"

    def reset(self) -> None:
        self._queue: deque[RuntimeTask] = deque()

    def task_ready(self, task: RuntimeTask, now: float) -> None:
        self._queue.append(task)

    def next_task(self, worker: WorkerContext, now: float) -> Optional[RuntimeTask]:
        best_index: Optional[int] = None
        best_priority = None
        for i, task in enumerate(self._queue):
            if not self.cost.supports(task, worker):
                continue
            if best_index is None or task.priority > best_priority:
                best_index, best_priority = i, task.priority
        if best_index is None:
            return None
        task = self._queue[best_index]
        del self._queue[best_index]
        return task

    def peek(self, worker: WorkerContext) -> Optional[RuntimeTask]:
        best = None
        for task in self._queue:
            if not self.cost.supports(task, worker):
                continue
            if best is None or task.priority > best.priority:
                best = task
        return best

    def pending_count(self) -> int:
        return len(self._queue)


class WorkStealingScheduler(Scheduler):
    """Per-worker deques with stealing from the longest queue."""

    name = "ws"

    def reset(self) -> None:
        self._queues: dict[str, deque[RuntimeTask]] = {
            w.instance_id: deque() for w in self.workers
        }

    def task_ready(self, task: RuntimeTask, now: float) -> None:
        candidates = [w for w in self.workers if self.cost.supports(task, w)]
        if not candidates:
            raise SchedulerError(
                f"no worker supports kernel {task.kernel!r}"
            )
        target = min(candidates, key=lambda w: len(self._queues[w.instance_id]))
        self._queues[target.instance_id].append(task)

    def next_task(self, worker: WorkerContext, now: float) -> Optional[RuntimeTask]:
        own = self._queues[worker.instance_id]
        if own:
            return own.popleft()
        # steal from the back of the longest compatible queue
        victims = sorted(
            (w for w in self.workers if w.instance_id != worker.instance_id),
            key=lambda w: -len(self._queues[w.instance_id]),
        )
        for victim in victims:
            queue = self._queues[victim.instance_id]
            for i in range(len(queue) - 1, -1, -1):
                if self.cost.supports(queue[i], worker):
                    task = queue[i]
                    del queue[i]
                    return task
        return None

    def peek(self, worker: WorkerContext) -> Optional[RuntimeTask]:
        own = self._queues[worker.instance_id]
        return own[0] if own else None

    def drain(self, worker: WorkerContext) -> list[RuntimeTask]:
        own = self._queues[worker.instance_id]
        drained = list(own)
        own.clear()
        return drained


    def pending_count(self) -> int:
        return sum(len(q) for q in self._queues.values())


class DequeModelScheduler(Scheduler):
    """StarPU's ``dm`` / ``dmda``: earliest-estimated-finish placement.

    Maintains a per-worker estimated-free clock; each ready task is
    appended to the deque of the worker minimizing

    ``max(now, est_free) + (transfer if data_aware) + exec``.

    The estimated cost *charged* per queued task is remembered so the
    clock can be rewound when a task leaves a queue without running
    there: :meth:`drain` (worker went offline) credits the drained
    costs back, and with ``steal=True`` an idle worker that steals a
    queued task moves its charge from the victim to the thief.  Without
    the rewind an offline/online cycle leaves the revived lane with an
    inflated finish estimate and dm/dmda placement shuns it.
    """

    def __init__(self, *, data_aware: bool = True, steal: bool = False):
        super().__init__()
        self.data_aware = data_aware
        #: idle workers may steal queued tasks from the longest queue
        #: (charge-migrating; off by default to preserve strict dm/dmda
        #: pre-assignment semantics)
        self.steal = steal
        self.name = "dmda" if data_aware else "dm"

    def reset(self) -> None:
        self._queues: dict[str, deque[RuntimeTask]] = {
            w.instance_id: deque() for w in self.workers
        }
        self._est_free: dict[str, float] = {w.instance_id: 0.0 for w in self.workers}
        #: worker id → {task id → estimated cost charged while queued}
        self._charge: dict[str, dict[int, float]] = {
            w.instance_id: {} for w in self.workers
        }

    def _task_cost(self, task: RuntimeTask, worker: WorkerContext) -> float:
        cost = self.cost.exec_estimate(task, worker)
        if self.data_aware:
            cost += self.cost.transfer_estimate(task, worker)
        return cost

    def task_ready(self, task: RuntimeTask, now: float) -> None:
        best: Optional[WorkerContext] = None
        best_finish = float("inf")
        best_cost = 0.0
        for worker in self.workers:
            if not self.cost.supports(task, worker):
                continue
            begin = max(now, self._est_free[worker.instance_id])
            cost = self._task_cost(task, worker)
            finish = begin + cost
            if finish < best_finish:
                best_finish = finish
                best = worker
                best_cost = cost
        if best is None:
            raise SchedulerError(f"no worker supports kernel {task.kernel!r}")
        self._queues[best.instance_id].append(task)
        self._charge[best.instance_id][task.id] = best_cost
        self._est_free[best.instance_id] = best_finish

    def next_task(self, worker: WorkerContext, now: float) -> Optional[RuntimeTask]:
        own = self._queues[worker.instance_id]
        if own:
            task = own.popleft()
            # the cost stays baked into est_free: the worker is about to
            # spend it executing; only the per-task record is retired
            self._charge[worker.instance_id].pop(task.id, None)
            return task
        if not self.steal:
            return None
        victims = sorted(
            (w for w in self.workers if w.instance_id != worker.instance_id),
            key=lambda w: -len(self._queues[w.instance_id]),
        )
        for victim in victims:
            queue = self._queues[victim.instance_id]
            for i in range(len(queue) - 1, -1, -1):
                if not self.cost.supports(queue[i], worker):
                    continue
                task = queue[i]
                del queue[i]
                # migrate the charge: credit the victim's clock, debit
                # the thief's with the thief's own estimate
                refund = self._charge[victim.instance_id].pop(task.id, None)
                if refund is not None:
                    self._est_free[victim.instance_id] = max(
                        0.0, self._est_free[victim.instance_id] - refund
                    )
                self._est_free[worker.instance_id] = max(
                    now, self._est_free[worker.instance_id]
                ) + self._task_cost(task, worker)
                return task
        return None

    def peek(self, worker: WorkerContext) -> Optional[RuntimeTask]:
        own = self._queues[worker.instance_id]
        return own[0] if own else None

    def drain(self, worker: WorkerContext) -> list[RuntimeTask]:
        own = self._queues[worker.instance_id]
        drained = list(own)
        own.clear()
        charges = self._charge[worker.instance_id]
        refund = sum(charges.pop(t.id, 0.0) for t in drained)
        # rewind the estimated-free clock so a later online event sees
        # the lane as free, not burdened by work it will never run
        self._est_free[worker.instance_id] = max(
            0.0, self._est_free[worker.instance_id] - refund
        )
        return drained

    def pending_count(self) -> int:
        return sum(len(q) for q in self._queues.values())


class RandomScheduler(Scheduler):
    """Uniform-random placement over compatible workers (ablation baseline)."""

    name = "random"

    def __init__(self, seed: int = 0):
        super().__init__()
        self._seed = seed

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._queues: dict[str, deque[RuntimeTask]] = {
            w.instance_id: deque() for w in self.workers
        }

    def task_ready(self, task: RuntimeTask, now: float) -> None:
        candidates = [w for w in self.workers if self.cost.supports(task, w)]
        if not candidates:
            raise SchedulerError(f"no worker supports kernel {task.kernel!r}")
        target = self._rng.choice(candidates)
        self._queues[target.instance_id].append(task)

    def next_task(self, worker: WorkerContext, now: float) -> Optional[RuntimeTask]:
        own = self._queues[worker.instance_id]
        if own:
            return own.popleft()
        return None

    def peek(self, worker: WorkerContext) -> Optional[RuntimeTask]:
        own = self._queues[worker.instance_id]
        return own[0] if own else None

    def drain(self, worker: WorkerContext) -> list[RuntimeTask]:
        own = self._queues[worker.instance_id]
        drained = list(own)
        own.clear()
        return drained


    def pending_count(self) -> int:
        return sum(len(q) for q in self._queues.values())


SCHEDULER_NAMES = ("eager", "ws", "dm", "dmda", "random")


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Factory by policy name (``eager | ws | dm | dmda | random``)."""
    if name == "eager":
        return EagerScheduler()
    if name == "ws":
        return WorkStealingScheduler()
    if name == "dm":
        return DequeModelScheduler(data_aware=False, **kwargs)
    if name == "dmda":
        return DequeModelScheduler(data_aware=True, **kwargs)
    if name == "random":
        return RandomScheduler(**kwargs)
    raise SchedulerError(
        f"unknown scheduler {name!r}; available: {SCHEDULER_NAMES}"
    )
