"""Hierarchical spans with contextvars propagation.

A :class:`Tracer` collects :class:`Span` records: named, timestamped
(monotonic, relative to the tracer's epoch), attributed, and linked into
a tree through ``parent_id``.  The *current* span is carried in a
``contextvars.ContextVar``, so nested subsystem calls — ``translate``
calling ``preselect`` calling the query layer — attach automatically
without threading a tracer argument through every signature.

Tracing is **off by default**: the module-level active tracer is
``None`` and :func:`span` returns a shared no-op context manager.  Hot
call sites that would pay even for building an attribute dict guard with
:func:`get_tracer`::

    tracer = obs.get_tracer()
    if tracer is not None:
        tracer.metrics.counter("pdl.parse_cache.hit").inc()

Cross-thread notes: the active tracer is a plain module global (visible
from worker threads, e.g. the registry server's executor pool), while
span *parentage* is context-local.  A span started on a fresh thread
therefore roots a new trace unless an explicit ``trace_id``/``parent``
is passed — exactly what HTTP trace-id propagation does.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.obs.digest import fingerprint_payload
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "span",
    "current_trace_id",
]

#: wall-clock spans measured with ``perf_counter`` against the tracer epoch
WALL_CLOCK = "wall"
#: spans replayed from a simulated-time :class:`~repro.runtime.trace.TraceLog`
SIM_CLOCK = "sim"


@dataclass
class Span:
    """One timed operation."""

    name: str
    span_id: int
    trace_id: str
    parent_id: Optional[int]
    start: float
    end: Optional[float] = None
    attributes: dict = field(default_factory=dict)
    status: str = "ok"
    error: Optional[str] = None
    #: ``"wall"`` (tracer epoch) or ``"sim"`` (simulated seconds)
    clock: str = WALL_CLOCK
    #: logical track for exporters (thread name or sim worker lane)
    track: str = ""

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def to_payload(self) -> dict:
        """Deterministic JSON shape (attribute keys sorted)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "clock": self.clock,
            "track": self.track,
            "attributes": {k: self.attributes[k] for k in sorted(self.attributes)},
        }


class _SpanContext:
    """Context manager for one in-flight span (re-raises, marks errors)."""

    __slots__ = ("_tracer", "span", "_token")

    def __init__(self, tracer: "Tracer", span_: Span):
        self._tracer = tracer
        self.span = span_
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Span:
        self._token = _CURRENT_SPAN.set(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
        if exc is not None:
            self.span.status = "error"
            self.span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._finish(self.span)
        return False  # never swallow


class _NullSpan:
    """Shared disabled-mode stand-in; every operation is a no-op."""

    __slots__ = ()

    trace_id = ""
    span_id = -1
    attributes: dict = {}

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()

_CURRENT_SPAN: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Tracer:
    """Collects finished spans and owns a :class:`MetricsRegistry`.

    ``trace_id`` fixes the id new root spans inherit (useful for
    deterministic payloads and tests); by default each root span starts
    a fresh 16-hex-digit trace id.
    """

    def __init__(self, *, trace_id: Optional[str] = None):
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._next_id = 1
        self._default_trace_id = trace_id
        self.spans: list[Span] = []
        self.metrics = MetricsRegistry()

    # -- time ---------------------------------------------------------------
    def now(self) -> float:
        """Seconds since this tracer's epoch (monotonic)."""
        return time.perf_counter() - self._epoch

    # -- span lifecycle -----------------------------------------------------
    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def _new_trace_id(self) -> str:
        if self._default_trace_id is not None:
            return self._default_trace_id
        return uuid.uuid4().hex[:16]

    def start_span(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent: Optional[Span] = None,
        attributes: Optional[dict] = None,
    ) -> Span:
        """Begin a span *without* entering it as the context-local parent.

        Used by the bridge and by code that must end the span from a
        different stack frame; most callers want :meth:`span`.
        """
        if parent is None:
            parent = _CURRENT_SPAN.get()
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None else self._new_trace_id()
        return Span(
            name=name,
            span_id=self._allocate_id(),
            trace_id=trace_id,
            parent_id=parent.span_id if parent is not None else None,
            start=self.now(),
            attributes=dict(attributes) if attributes else {},
            track=threading.current_thread().name,
        )

    def _finish(self, span_: Span) -> None:
        if span_.end is None:
            span_.end = self.now()
        with self._lock:
            self.spans.append(span_)

    def end_span(self, span_: Span) -> None:
        """Finish a span started with :meth:`start_span`."""
        self._finish(span_)

    def span(self, name: str, *, trace_id: Optional[str] = None, **attributes):
        """Context manager: open a child of the current span.

        >>> tracer = Tracer()
        >>> with tracer.span("parent"):
        ...     with tracer.span("child", detail=1):
        ...         pass
        >>> [s.name for s in tracer.spans]
        ['child', 'parent']
        """
        return _SpanContext(
            self, self.start_span(name, trace_id=trace_id, attributes=attributes)
        )

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent: Optional[Span] = None,
        trace_id: Optional[str] = None,
        clock: str = WALL_CLOCK,
        track: str = "",
        status: str = "ok",
        **attributes: Any,
    ) -> Span:
        """Append an already-timed span (TraceLog replay, external data)."""
        if parent is None:
            parent = _CURRENT_SPAN.get()
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None else self._new_trace_id()
        span_ = Span(
            name=name,
            span_id=self._allocate_id(),
            trace_id=trace_id,
            parent_id=parent.span_id if parent is not None else None,
            start=start,
            end=end,
            attributes=attributes,
            clock=clock,
            track=track or threading.current_thread().name,
            status=status,
        )
        with self._lock:
            self.spans.append(span_)
        return span_

    # -- introspection ------------------------------------------------------
    def current_span(self) -> Optional[Span]:
        return _CURRENT_SPAN.get()

    def finished(self) -> list[Span]:
        """Snapshot of finished spans in completion order."""
        with self._lock:
            return list(self.spans)

    def roots(self) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span_: Span) -> list[Span]:
        with self._lock:
            kids = [s for s in self.spans if s.parent_id == span_.span_id]
        return sorted(kids, key=lambda s: (s.start, s.span_id))

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.finished())

    # -- payloads -----------------------------------------------------------
    def to_payload(self) -> dict:
        """Deterministic JSON: spans sorted by (start, span_id)."""
        spans = sorted(self.finished(), key=lambda s: (s.start, s.span_id))
        return {
            "kind": "repro-trace",
            "version": 1,
            "spans": [s.to_payload() for s in spans],
            "metrics": self.metrics.to_payload(),
        }

    def fingerprint(self) -> str:
        return fingerprint_payload(self.to_payload())

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self)}, metrics={self.metrics!r})"


# -- module-level active tracer ---------------------------------------------

_active_tracer: Optional[Tracer] = None
_active_lock = threading.Lock()


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled.

    The disabled check is a single global read — cheap enough for hot
    paths to call per operation.
    """
    return _active_tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or, with ``None``, disable) the active tracer globally.

    Returns the previously active tracer.
    """
    global _active_tracer
    with _active_lock:
        previous = _active_tracer
        _active_tracer = tracer
        return previous


class use_tracer:
    """Scope a tracer: ``with use_tracer(t): ...`` activates ``t`` and
    restores the previous tracer on exit.  The activation is process-wide
    (worker threads see it), matching how the registry server's executor
    pool must observe the tracer installed by the serving thread.
    """

    def __init__(self, tracer: Optional[Tracer]):
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Optional[Tracer]:
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, *exc_info) -> None:
        set_tracer(self._previous)


def span(name: str, *, trace_id: Optional[str] = None, **attributes):
    """Open a span on the active tracer — or do nothing when disabled.

    The no-op path allocates nothing beyond the call's own frame (the
    returned context manager is a shared singleton); truly hot loops
    should still guard with :func:`get_tracer` to skip building keyword
    attributes.
    """
    tracer = _active_tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, trace_id=trace_id, **attributes)


def current_trace_id() -> Optional[str]:
    """Trace id of the context's current span (for HTTP propagation)."""
    current = _CURRENT_SPAN.get()
    return current.trace_id if current is not None else None
