"""Toolchain-wide observability: spans, metrics, trace export.

The substrate every layer of the toolchain reports into — PDL parsing,
catalog caching, Cascabel translation phases, runtime engine execution,
registry HTTP requests (with ``X-Repro-Trace-Id`` propagation) and
calibration sweeps.  Tracing is **disabled by default** and the
disabled path is near-free: call sites guard on :func:`get_tracer`.

Quick start::

    from repro import obs

    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        translate(source, "xeon_x5550_2gpu")
    print(obs.render_tree(tracer))
    obs.write_chrome_trace(tracer, "trace.json")   # chrome://tracing

See ``docs/observability.md`` for the span model, exporters and
overhead notes.
"""

from repro.obs.digest import (  # noqa: F401
    digest_summary,
    fingerprint_payload,
    percentile,
)
from repro.obs.metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import (  # noqa: F401
    NULL_SPAN,
    SIM_CLOCK,
    WALL_CLOCK,
    Span,
    Tracer,
    current_trace_id,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)
from repro.obs.export import (  # noqa: F401
    chrome_trace,
    render_payload_tree,
    render_tree,
    trace_payload,
    write_chrome_trace,
)
from repro.obs.bridge import record_trace_log  # noqa: F401

__all__ = [
    # digests
    "percentile",
    "digest_summary",
    "fingerprint_payload",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # spans
    "Span",
    "Tracer",
    "span",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "current_trace_id",
    "NULL_SPAN",
    "WALL_CLOCK",
    "SIM_CLOCK",
    # export
    "chrome_trace",
    "write_chrome_trace",
    "trace_payload",
    "render_tree",
    "render_payload_tree",
    "record_trace_log",
]
