"""Bridge the runtime's :class:`~repro.runtime.trace.TraceLog` into spans.

The simulated engine times tasks in *simulated seconds*; the tracer
times spans in *wall seconds*.  Replaying a finished ``TraceLog`` under
the run's span keeps both views in one trace: the wall-clock span says
how long the simulation took to compute, the sim-clock spans (exported
as a separate Chrome trace process) say what the simulated schedule
looked like — per worker lane, with transfers and fault events.

Real-mode runs measure wall time already; their task records are
replayed on the wall clock, offset to the run span's start, so kernel
executions nest under the run that produced them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.spans import SIM_CLOCK, WALL_CLOCK, Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import Tracer
    from repro.runtime.trace import TraceLog

__all__ = ["record_trace_log"]


def record_trace_log(
    tracer: "Tracer",
    trace: "TraceLog",
    *,
    parent: Optional[Span] = None,
    mode: str = "sim",
    wall_offset: float = 0.0,
) -> int:
    """Replay one finished run trace as spans; returns #spans recorded.

    ``mode="sim"`` replays on the simulated clock verbatim;
    ``mode="real"`` shifts task times by ``wall_offset`` (the run span's
    start) onto the wall clock.  Fault events become zero-length spans so
    they surface as instants in every exporter.
    """
    sim = mode != "real"
    clock = SIM_CLOCK if sim else WALL_CLOCK
    offset = 0.0 if sim else wall_offset
    recorded = 0
    for tt in trace.tasks:
        tracer.record_span(
            f"task:{tt.kernel}",
            offset + tt.start,
            offset + tt.end,
            parent=parent,
            clock=clock,
            track=tt.worker_id,
            tag=tt.tag,
            task_id=tt.task_id,
            kernel=tt.kernel,
            worker=tt.worker_id,
            architecture=tt.architecture,
            transfer_wait_s=tt.transfer_wait,
        )
        recorded += 1
    for tr in trace.transfers:
        tracer.record_span(
            f"transfer:{tr.handle_name}",
            offset + tr.start,
            offset + tr.end,
            parent=parent,
            clock=clock,
            track=f"xfer:{tr.src_node}->{tr.dst_node}",
            handle=tr.handle_name,
            nbytes=tr.nbytes,
            src_node=tr.src_node,
            dst_node=tr.dst_node,
        )
        recorded += 1
    for fault in trace.faults:
        tracer.record_span(
            f"fault:{fault.kind}",
            offset + fault.time,
            offset + fault.time,
            parent=parent,
            clock=clock,
            track=fault.worker_id or "faults",
            status="error" if fault.kind in ("task-fault", "worker-fault") else "ok",
            kind=fault.kind,
            task_tag=fault.task_tag,
            worker=fault.worker_id,
            detail=fault.detail,
        )
        recorded += 1
    return recorded
