"""Counters, gauges and histograms for toolchain metrics.

A :class:`MetricsRegistry` is a thread-safe, name-keyed family of
instruments.  Histograms keep a bounded reservoir (most recent
observations) and report the same ``{"count", "p50", "p99"}`` digest
shape as :class:`~repro.service.metrics.ServiceMetrics` latencies —
both are computed by :func:`repro.obs.digest.digest_summary`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

from repro.obs.digest import digest_summary, fingerprint_payload

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """Last-written value (queue depths, cache sizes, ratios)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self._value})"


class Histogram:
    """Bounded-reservoir distribution with p50/p99 digests."""

    __slots__ = ("name", "_lock", "_samples", "_count", "_total")

    def __init__(self, name: str, *, window: int = 2048):
        self.name = name
        self._lock = threading.Lock()
        self._samples: deque = deque(maxlen=window)
        self._count = 0
        self._total = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))
            self._count += 1
            self._total += value

    @property
    def count(self) -> int:
        return self._count

    def snapshot(self) -> dict:
        """``{"count", "p50", "p99", "sum"}`` — the shared digest shape,
        where count/sum cover *all* observations and the percentiles the
        bounded reservoir."""
        with self._lock:
            samples = list(self._samples)
            count, total = self._count, self._total
        summary = digest_summary(samples)
        summary["count"] = count
        summary["sum"] = total
        return summary

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self._count})"


class MetricsRegistry:
    """Get-or-create instrument family, snapshot-able as one payload."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str, *, window: int = 2048) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, window=window)
            return instrument

    def get(self, name: str) -> Optional[object]:
        """Look an instrument up by name across all three families."""
        with self._lock:
            return (
                self._counters.get(name)
                or self._gauges.get(name)
                or self._histograms.get(name)
            )

    def to_payload(self) -> dict:
        """Deterministic JSON snapshot (names sorted within each family)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: counters[n].value for n in sorted(counters)},
            "gauges": {n: gauges[n].value for n in sorted(gauges)},
            "histograms": {n: histograms[n].snapshot() for n in sorted(histograms)},
        }

    # ``snapshot`` mirrors ServiceMetrics' verb for the same concept
    snapshot = to_payload

    def fingerprint(self) -> str:
        return fingerprint_payload(self.to_payload())

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)},"
                f" gauges={len(self._gauges)},"
                f" histograms={len(self._histograms)})"
            )
