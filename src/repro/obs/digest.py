"""Shared numeric digests and payload fingerprints.

One home for the summary math every metrics surface uses, so
:class:`~repro.service.metrics.ServiceMetrics` and the observability
histograms (:mod:`repro.obs.metrics`) report the *same* p50/p99 shape,
and every report object (``SelectionReport``, ``LintReport``,
``RunResult``, tuning payloads, …) derives its ``fingerprint()`` from
one canonical-JSON convention.

Stdlib only — importable from the lowest layers without pulling in the
model or toolchain packages.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Iterable, Mapping, Optional, Sequence

__all__ = [
    "percentile",
    "digest_summary",
    "fingerprint_payload",
    "latency_buckets",
    "merge_buckets",
    "percentile_from_buckets",
    "merge_digest_summaries",
]


def percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """q-th percentile (0..100) by linear interpolation; None when empty."""
    if not samples:
        return None
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be in [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def digest_summary(
    samples: Sequence[float], *, percentiles: Iterable[int] = (50, 99)
) -> dict:
    """The canonical ``{"count", "p50", "p99", ...}`` summary block.

    The same shape ``ServiceMetrics.snapshot()`` reports for request
    latencies, so dashboards and tests treat every latency/size digest
    in the toolchain identically.
    """
    summary: dict = {"count": len(samples)}
    for q in percentiles:
        summary[f"p{q}"] = percentile(samples, q)
    return summary


#: geometric bucket grid shared by every mergeable latency digest:
#: bucket ``i`` covers ``(_BUCKET_MIN * 2**(i-1), _BUCKET_MIN * 2**i]``;
#: bucket ``0`` is everything at or below ``_BUCKET_MIN``.  ~60 buckets
#: span 1 µs .. ~13 days, plenty for any latency-shaped quantity.
_BUCKET_MIN = 1e-6
_BUCKET_MAX_INDEX = 60


def _bucket_index(value: float) -> int:
    if value <= _BUCKET_MIN:
        return 0
    index = int(math.ceil(math.log2(value / _BUCKET_MIN)))
    return min(max(index, 0), _BUCKET_MAX_INDEX)


def _bucket_upper(index: int) -> float:
    return _BUCKET_MIN * (2.0 ** index)


def _bucket_mid(index: int) -> float:
    """Representative value of a bucket (geometric midpoint)."""
    if index <= 0:
        return _BUCKET_MIN
    return _BUCKET_MIN * (2.0 ** (index - 0.5))


def latency_buckets(samples: Sequence[float]) -> dict:
    """Fixed-grid geometric histogram of ``samples``.

    The grid is global (never data-dependent), which is what makes two
    histograms from different processes *mergeable* by plain per-bucket
    addition — the property percentile values themselves lack.
    Returned as ``{bucket_index_str: count}`` with only occupied buckets
    present, so the payload stays tiny and JSON-stable.
    """
    buckets: dict = {}
    for value in samples:
        key = str(_bucket_index(value))
        buckets[key] = buckets.get(key, 0) + 1
    return dict(sorted(buckets.items(), key=lambda kv: int(kv[0])))


def merge_buckets(histograms: Iterable[Mapping]) -> dict:
    """Merge per-process histograms by per-bucket addition."""
    merged: dict = {}
    for hist in histograms:
        for key, count in hist.items():
            merged[key] = merged.get(key, 0) + int(count)
    return dict(sorted(merged.items(), key=lambda kv: int(kv[0])))


def percentile_from_buckets(buckets: Mapping, q: float) -> Optional[float]:
    """q-th percentile (0..100) reconstructed from a bucket histogram.

    Resolution is one bucket (a factor of 2 on the geometric grid) —
    exact enough for p50/p99 dashboards, and crucially *correct* under
    merging, unlike any recombination of already-computed percentiles.
    """
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be in [0, 100]")
    total = sum(int(c) for c in buckets.values())
    if total == 0:
        return None
    rank = (q / 100.0) * total
    seen = 0
    for key in sorted(buckets, key=int):
        seen += int(buckets[key])
        if seen >= rank:
            return _bucket_mid(int(key))
    return _bucket_mid(max(int(k) for k in buckets))


def merge_digest_summaries(summaries: Sequence[Mapping]) -> dict:
    """Aggregate per-process ``digest_summary`` blocks into one.

    Percentiles do **not** average: the p99 of a union of populations is
    not the mean of per-population p99s (one hot shard's tail vanishes
    into N-1 cold shards' averages).  Every summary must therefore carry
    the ``buckets`` histogram (see :func:`latency_buckets`); the merge
    adds buckets and re-derives the percentiles from the merged
    distribution.  Raises ``ValueError`` when a summary has observations
    but no histogram — silently falling back to averaging is exactly the
    bug this function exists to prevent.
    """
    merged_count = 0
    percentile_keys: list = []
    histograms = []
    for summary in summaries:
        count = int(summary.get("count", 0))
        merged_count += count
        for key in summary:
            if key.startswith("p") and key[1:].isdigit():
                if key not in percentile_keys:
                    percentile_keys.append(key)
        if count and "buckets" not in summary:
            raise ValueError(
                "cannot merge a digest summary without its 'buckets'"
                " histogram: percentiles are not mergeable by averaging"
            )
        histograms.append(summary.get("buckets", {}))
    buckets = merge_buckets(histograms)
    out: dict = {"count": merged_count, "buckets": buckets}
    for key in percentile_keys or ["p50", "p99"]:
        out[key] = percentile_from_buckets(buckets, float(key[1:]))
    return out


def fingerprint_payload(payload: dict) -> str:
    """Stable sha256 over a JSON-serializable payload.

    Canonicalization is ``json.dumps(sort_keys=True)`` with compact
    separators — the convention ``SelectionReport.fingerprint()``
    established and every ``to_payload()``-bearing report now shares.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
