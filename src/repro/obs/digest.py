"""Shared numeric digests and payload fingerprints.

One home for the summary math every metrics surface uses, so
:class:`~repro.service.metrics.ServiceMetrics` and the observability
histograms (:mod:`repro.obs.metrics`) report the *same* p50/p99 shape,
and every report object (``SelectionReport``, ``LintReport``,
``RunResult``, tuning payloads, …) derives its ``fingerprint()`` from
one canonical-JSON convention.

Stdlib only — importable from the lowest layers without pulling in the
model or toolchain packages.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Optional, Sequence

__all__ = ["percentile", "digest_summary", "fingerprint_payload"]


def percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """q-th percentile (0..100) by linear interpolation; None when empty."""
    if not samples:
        return None
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be in [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def digest_summary(
    samples: Sequence[float], *, percentiles: Iterable[int] = (50, 99)
) -> dict:
    """The canonical ``{"count", "p50", "p99", ...}`` summary block.

    The same shape ``ServiceMetrics.snapshot()`` reports for request
    latencies, so dashboards and tests treat every latency/size digest
    in the toolchain identically.
    """
    summary: dict = {"count": len(samples)}
    for q in percentiles:
        summary[f"p{q}"] = percentile(samples, q)
    return summary


def fingerprint_payload(payload: dict) -> str:
    """Stable sha256 over a JSON-serializable payload.

    Canonicalization is ``json.dumps(sort_keys=True)`` with compact
    separators — the convention ``SelectionReport.fingerprint()``
    established and every ``to_payload()``-bearing report now shares.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
