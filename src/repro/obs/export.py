"""Trace exporters: Chrome trace-event JSON, deterministic JSON, text tree.

``chrome_trace`` emits the `Trace Event Format`_ consumed by
``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_: complete
(``"ph": "X"``) events with microsecond timestamps.  Wall-clock spans
land in process 1 ("wall clock"), spans replayed from a simulated-time
:class:`~repro.runtime.trace.TraceLog` in process 2 ("sim time"), so the
two time bases never overlap on one track but stay side by side in the
viewer — the alignment the runtime bridge needs.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import io
import json
from typing import TYPE_CHECKING, Optional

from repro.obs.spans import SIM_CLOCK, Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "trace_payload",
    "render_tree",
]

_WALL_PID = 1
_SIM_PID = 2


def _ordered(spans: list[Span]) -> list[Span]:
    return sorted(spans, key=lambda s: (s.start, s.span_id))


def chrome_trace(tracer: "Tracer") -> dict:
    """The tracer's spans as a Chrome trace-event document (a dict ready
    for ``json.dump``)."""
    spans = _ordered(tracer.finished())
    tracks: dict[tuple[int, str], int] = {}
    events: list[dict] = [
        {
            "ph": "M",
            "pid": _WALL_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro wall clock"},
        },
        {
            "ph": "M",
            "pid": _SIM_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro sim time"},
        },
    ]
    for span_ in spans:
        pid = _SIM_PID if span_.clock == SIM_CLOCK else _WALL_PID
        key = (pid, span_.track or "main")
        tid = tracks.get(key)
        if tid is None:
            tid = tracks[key] = len([k for k in tracks if k[0] == pid]) + 1
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": span_.track or "main"},
                }
            )
        end = span_.end if span_.end is not None else span_.start
        args = {k: span_.attributes[k] for k in sorted(span_.attributes)}
        args["trace_id"] = span_.trace_id
        args["span_id"] = span_.span_id
        if span_.parent_id is not None:
            args["parent_id"] = span_.parent_id
        if span_.error is not None:
            args["error"] = span_.error
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": span_.name,
                "cat": span_.clock,
                "ts": span_.start * 1e6,
                "dur": max(0.0, (end - span_.start)) * 1e6,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: "Tracer", path) -> str:
    """Write the Chrome trace to ``path``; returns the path written."""
    document = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return str(path)


def trace_payload(tracer: "Tracer") -> dict:
    """Deterministic JSON payload (``Tracer.to_payload`` by another name,
    exported here so the three formats live side by side)."""
    return tracer.to_payload()


def _format_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_tree(tracer: "Tracer", *, attributes: bool = True) -> str:
    """Compact text rendering of the span forest.

    Works on a live :class:`Tracer` or anything exposing ``finished()``;
    :func:`render_payload_tree` renders the serialized form.
    """
    return _render(
        [s.to_payload() for s in _ordered(tracer.finished())],
        attributes=attributes,
    )


def render_payload_tree(payload: dict, *, attributes: bool = True) -> str:
    """Render the text tree from a deterministic-JSON trace payload."""
    spans = payload.get("spans", [])
    return _render(spans, attributes=attributes)


def _render(spans: list[dict], *, attributes: bool) -> str:
    by_parent: dict[Optional[int], list[dict]] = {}
    ids = {s["span_id"] for s in spans}
    for span_ in spans:
        parent = span_.get("parent_id")
        if parent is not None and parent not in ids:
            parent = None  # orphan (e.g. parent span still open): show as root
        by_parent.setdefault(parent, []).append(span_)
    out = io.StringIO()

    def emit(span_: dict, depth: int) -> None:
        indent = "  " * depth
        duration = span_.get("duration")
        if duration is None and span_.get("end") is not None:
            duration = span_["end"] - span_["start"]
        marker = "" if span_.get("status", "ok") == "ok" else " [ERROR]"
        clock = f" ({span_['clock']})" if span_.get("clock") == SIM_CLOCK else ""
        line = f"{indent}{span_['name']}  {_format_duration(duration)}{clock}{marker}"
        attrs = span_.get("attributes") or {}
        if attributes and attrs:
            rendered = ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
            line += f"  {{{rendered}}}"
        out.write(line + "\n")
        for child in by_parent.get(span_["span_id"], []):
            emit(child, depth + 1)

    for root in by_parent.get(None, []):
        emit(root, 0)
    return out.getvalue().rstrip("\n")
