"""``repro`` — the umbrella command for the whole toolchain.

One entry point, five familiar tools plus trace inspection::

    repro pdl list                    # was: pdl-tool list
    repro lint machine.xml            # was: repro-lint machine.xml
    repro registry serve              # was: repro-registry serve
    repro tune calibrate ...          # was: repro-tune calibrate ...
    repro cascabel program.c ...      # was: cascabel program.c ...
    repro trace view trace.json       # new: render an exported trace
    repro explore sweep ...           # new: design-space exploration

The historical console scripts still work — they print a one-line
pointer to the umbrella spelling on stderr and delegate — so existing
muscle memory and scripts keep functioning while documentation moves to
the unified command.

Sub-commands are dispatched by first token (not argparse subparsers) so
each tool keeps full ownership of its own flags, ``--help`` included.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Callable, Optional

__all__ = ["main"]

_USAGE = """\
usage: repro <command> [args...]

toolchain commands (each accepts --help):
  pdl        inspect, validate, diff and convert PDL descriptors
  lint       static analysis over descriptors and Cascabel programs
  registry   platform registry service: serve / publish / query
  tune       calibration sweeps and tuning-profile management
  cascabel   the source-to-source compiler for annotated programs
  trace      inspect exported traces (repro trace view <file>)
  explore    design-space exploration: sweep / frontier / show / spaces
  serve      online serving: run / replay / stats

options:
  -h, --help     show this message
  --version      print the toolchain version
"""


def _dispatch_pdl(argv: list) -> int:
    from repro.pdl.cli import main

    return main(argv)


def _dispatch_lint(argv: list) -> int:
    from repro.analysis.cli import main

    return main(argv)


def _dispatch_registry(argv: list) -> int:
    from repro.service.cli import main

    return main(argv)


def _dispatch_tune(argv: list) -> int:
    from repro.tune.cli import main

    return main(argv)


def _dispatch_cascabel(argv: list) -> int:
    from repro.cascabel.cli import main

    return main(argv)


def _dispatch_explore(argv: list) -> int:
    from repro.explore.cli import main

    return main(argv)


def _dispatch_serve(argv: list) -> int:
    from repro.serve.cli import main

    return main(argv)


_COMMANDS: dict = {
    "pdl": _dispatch_pdl,
    "lint": _dispatch_lint,
    "registry": _dispatch_registry,
    "tune": _dispatch_tune,
    "cascabel": _dispatch_cascabel,
    "explore": _dispatch_explore,
    "serve": _dispatch_serve,
}


# -- trace inspection --------------------------------------------------------
def _spans_from_chrome(document: dict) -> list:
    """Back-convert a Chrome trace-event document to span payloads."""
    spans = []
    for event in document.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        args.pop("trace_id", None)
        error = args.pop("error", None)
        start = event.get("ts", 0.0) / 1e6
        spans.append(
            {
                "name": event.get("name", "?"),
                "span_id": span_id,
                "parent_id": parent_id,
                "start": start,
                "end": start + event.get("dur", 0.0) / 1e6,
                "duration": event.get("dur", 0.0) / 1e6,
                "status": "error" if error is not None else "ok",
                "error": error,
                "clock": event.get("cat", "wall"),
                "attributes": args,
            }
        )
    return spans


def _trace_view(path: str) -> int:
    from repro.obs.export import render_payload_tree

    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro trace: cannot read {path!r}: {exc}", file=sys.stderr)
        return 2
    if "traceEvents" in document:  # Chrome trace-event export
        document = {"spans": _spans_from_chrome(document)}
    if "spans" not in document:
        print(
            f"repro trace: {path!r} is neither a repro trace payload"
            " nor a Chrome trace-event document",
            file=sys.stderr,
        )
        return 2
    rendered = render_payload_tree(document)
    print(rendered if rendered else "(no finished spans)")
    return 0


def _dispatch_trace(argv: list) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: repro trace view <trace.json>")
        print()
        print("Render an exported trace (deterministic JSON payload or")
        print("Chrome trace-event document) as an indented span tree.")
        return 0
    if argv[0] != "view" or len(argv) != 2:
        print("usage: repro trace view <trace.json>", file=sys.stderr)
        return 2
    return _trace_view(argv[1])


_COMMANDS["trace"] = _dispatch_trace


def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0
    if argv[0] == "--version":
        from repro import __version__

        print(f"repro {__version__}")
        return 0
    command = argv[0]
    handler = _COMMANDS.get(command)
    if handler is None:
        print(
            f"repro: unknown command {command!r}"
            f" (choose from {', '.join(sorted(_COMMANDS))})",
            file=sys.stderr,
        )
        return 2
    try:
        return handler(argv[1:])
    except BrokenPipeError:
        # downstream closed the pipe (`repro trace view ... | head`);
        # point stdout at devnull so interpreter shutdown stays quiet
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


# -- deprecation shims for the historical console scripts --------------------
def _deprecated(old: str, new: str, delegate: Callable) -> Callable:
    def shim(argv: Optional[list] = None) -> int:
        print(
            f"note: `{old}` is now `{new}` (the old name keeps working)",
            file=sys.stderr,
        )
        return delegate(list(sys.argv[1:] if argv is None else argv))

    shim.__name__ = old.replace("-", "_") + "_shim"
    shim.__doc__ = f"Deprecated alias: delegates to ``{new}``."
    return shim


pdl_tool_main = _deprecated("pdl-tool", "repro pdl", _dispatch_pdl)
lint_main = _deprecated("repro-lint", "repro lint", _dispatch_lint)
registry_main = _deprecated("repro-registry", "repro registry", _dispatch_registry)
tune_main = _deprecated("repro-tune", "repro tune", _dispatch_tune)
cascabel_main = _deprecated("cascabel", "repro cascabel", _dispatch_cascabel)


if __name__ == "__main__":
    sys.exit(main())
