"""Query API over platform descriptions (paper §IV: "simple query API").

Public surface: :class:`PlatformQuery` façade, the selector language,
interconnect routing and abstract-pattern matching.
"""

from repro.query.api import PlatformQuery
from repro.query.paths import InterconnectGraph, Route
from repro.query.patterns import (
    PatternMatch,
    find_matches,
    match_pattern,
    pattern_matches,
)
from repro.query.selectors import Predicate, Selector, Step, parse_selector, select

__all__ = [
    "PlatformQuery",
    "InterconnectGraph",
    "Route",
    "PatternMatch",
    "match_pattern",
    "find_matches",
    "pattern_matches",
    "Selector",
    "Step",
    "Predicate",
    "parse_selector",
    "select",
]
