"""Abstract platform-pattern matching (paper §II, §IV-B).

The PDL's portability story: programmers (or task variants) reference
*abstract architectural patterns* — e.g. "a Master controlling at least one
gpu Worker" (Listing 1) — and tools map those patterns onto *concrete*
platform descriptions.  "These patterns are mapped to concrete platform
descriptions also expressed in the PDL" (Fig. 4 caption).

A pattern is itself a :class:`~repro.model.platform.Platform` (or a PU
subtree).  Matching finds an injective mapping pattern-PU → concrete-PU
such that

* PU kinds are compatible (pattern ``Worker`` matches concrete ``Worker``
  or ``Hybrid`` — a Hybrid *is* a Worker towards its controller; pattern
  ``Master`` matches ``Master`` or ``Hybrid`` — a Hybrid is a Master
  towards its children; exact-kind matching is available via
  ``strict_kinds=True``),
* every pattern property is present with an equal value on the concrete PU,
* the concrete image of a pattern child is a *descendant* of the image of
  its parent (control is transitive through Hybrids), and
* aggregate quantity suffices: a pattern PU with ``quantity=q`` requires a
  concrete PU with ``quantity >= q``.

Distinct pattern siblings must map to distinct concrete PUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.errors import PatternMatchError
from repro.model.entities import Hybrid, Master, ProcessingUnit, Worker
from repro.model.platform import Platform

__all__ = ["PatternMatch", "match_pattern", "find_matches", "pattern_matches"]


@dataclass(frozen=True)
class PatternMatch:
    """One mapping of pattern PUs onto concrete PUs."""

    #: pattern PU id → concrete PU
    mapping: dict

    def concrete(self, pattern_id: str) -> ProcessingUnit:
        try:
            return self.mapping[pattern_id]
        except KeyError:
            raise PatternMatchError(
                f"pattern PU {pattern_id!r} is not part of this match"
            ) from None

    def concrete_ids(self) -> dict:
        return {pid: pu.id for pid, pu in self.mapping.items()}

    def __len__(self) -> int:
        return len(self.mapping)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k}->{v.id}" for k, v in self.mapping.items())
        return f"PatternMatch({pairs})"


def _kind_compatible(pattern_pu: ProcessingUnit, concrete_pu: ProcessingUnit) -> bool:
    if isinstance(pattern_pu, Master):
        return isinstance(concrete_pu, (Master, Hybrid))
    if isinstance(pattern_pu, Worker):
        return isinstance(concrete_pu, (Worker, Hybrid))
    if isinstance(pattern_pu, Hybrid):
        return isinstance(concrete_pu, Hybrid)
    return False


def _node_matches(
    pattern_pu: ProcessingUnit,
    concrete_pu: ProcessingUnit,
    *,
    strict_kinds: bool,
) -> bool:
    if strict_kinds:
        if pattern_pu.kind != concrete_pu.kind:
            return False
    elif not _kind_compatible(pattern_pu, concrete_pu):
        return False
    if concrete_pu.quantity < pattern_pu.quantity:
        return False
    for prop in pattern_pu.descriptor:
        concrete_prop = concrete_pu.descriptor.find(prop.name)
        if concrete_prop is None:
            return False
        if concrete_prop.value.as_str() != prop.value.as_str():
            return False
    # pattern groups must be present on the concrete PU as well
    return all(group in concrete_pu.groups for group in pattern_pu.groups)


def _match_subtree(
    pattern_pu: ProcessingUnit,
    concrete_pu: ProcessingUnit,
    used: set,
    *,
    strict_kinds: bool,
) -> Iterator[dict]:
    """Yield mappings of ``pattern_pu``'s subtree rooted at ``concrete_pu``."""
    if id(concrete_pu) in used:
        return
    if not _node_matches(pattern_pu, concrete_pu, strict_kinds=strict_kinds):
        return

    children = list(pattern_pu.children)
    if not children:
        yield {pattern_pu.id: concrete_pu}
        return

    # candidate images for each pattern child: any strict descendant
    descendants = [d for d in concrete_pu.walk() if d is not concrete_pu]

    def assign(index: int, used_local: set, acc: dict) -> Iterator[dict]:
        if index == len(children):
            yield dict(acc)
            return
        child = children[index]
        for candidate in descendants:
            if id(candidate) in used_local:
                continue
            for sub in _match_subtree(
                child, candidate, used_local, strict_kinds=strict_kinds
            ):
                sub_ids = {id(pu) for pu in sub.values()}
                merged_used = used_local | sub_ids
                acc.update(sub)
                yield from assign(index + 1, merged_used, acc)
                for key in sub:
                    acc.pop(key, None)

    base = {pattern_pu.id: concrete_pu}
    for mapping in assign(0, used | {id(concrete_pu)}, dict(base)):
        yield mapping


def find_matches(
    pattern: Union[Platform, ProcessingUnit],
    concrete: Union[Platform, ProcessingUnit],
    *,
    strict_kinds: bool = False,
    limit: Optional[int] = None,
) -> list[PatternMatch]:
    """All (up to ``limit``) mappings of ``pattern`` onto ``concrete``.

    Multi-Master patterns require every pattern Master to map onto a
    distinct concrete anchor.
    """
    pattern_roots = (
        list(pattern.masters) if isinstance(pattern, Platform) else [pattern]
    )
    if isinstance(concrete, Platform):
        anchor_candidates = [pu for m in concrete.masters for pu in m.walk()]
    else:
        anchor_candidates = list(concrete.walk())

    matches: list[PatternMatch] = []

    def match_roots(index: int, used: set, acc: dict) -> None:
        if limit is not None and len(matches) >= limit:
            return
        if index == len(pattern_roots):
            matches.append(PatternMatch(dict(acc)))
            return
        root = pattern_roots[index]
        for candidate in anchor_candidates:
            if id(candidate) in used:
                continue
            for sub in _match_subtree(root, candidate, used, strict_kinds=strict_kinds):
                sub_ids = {id(pu) for pu in sub.values()}
                acc.update(sub)
                match_roots(index + 1, used | sub_ids, acc)
                for key in sub:
                    acc.pop(key, None)
                if limit is not None and len(matches) >= limit:
                    return

    match_roots(0, set(), {})
    return matches


def match_pattern(
    pattern: Union[Platform, ProcessingUnit],
    concrete: Union[Platform, ProcessingUnit],
    **kwargs,
) -> PatternMatch:
    """First mapping of ``pattern`` onto ``concrete``.

    Raises :class:`~repro.errors.PatternMatchError` when the pattern does
    not apply — the signal Cascabel's pre-selection uses to prune task
    variants (§IV-C.2).
    """
    found = find_matches(pattern, concrete, limit=1, **kwargs)
    if not found:
        raise PatternMatchError(
            "pattern does not match the concrete platform"
        )
    return found[0]


def pattern_matches(pattern, concrete, **kwargs) -> bool:
    """Boolean form of :func:`match_pattern`."""
    return bool(find_matches(pattern, concrete, limit=1, **kwargs))
