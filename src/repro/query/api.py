"""High-level query façade over one platform (the paper's "simple query API").

§IV: "Our platform description language, in combination with a simple query
API, can support code generation and program composition..."  This class
bundles the selector language, group registry, interconnect graph and
pattern matcher behind one object so tools have a single entry point::

    q = PlatformQuery(platform)
    gpus = q.select("//Worker[ARCHITECTURE=gpu]")
    route = q.route("host", "gpu0")
    members = q.group("executionset01")
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import QueryError
from repro.model.entities import ProcessingUnit
from repro.model.groups import GroupRegistry
from repro.model.platform import Platform
from repro.query.paths import InterconnectGraph, Route
from repro.query.patterns import PatternMatch, find_matches, match_pattern
from repro.query.selectors import Selector, parse_selector

__all__ = ["PlatformQuery"]


class PlatformQuery:
    """Cached query interface for one platform.

    The underlying registries and graphs are built lazily and memoized;
    call :meth:`invalidate` after structurally mutating the platform.
    """

    def __init__(self, platform: Platform):
        self.platform = platform
        self._groups: Optional[GroupRegistry] = None
        self._graph: Optional[InterconnectGraph] = None
        self._selector_cache: dict[str, Selector] = {}

    # -- cache management ---------------------------------------------------
    def invalidate(self) -> None:
        """Drop memoized indexes after the platform was mutated."""
        self._groups = None
        self._graph = None
        self._selector_cache.clear()

    @property
    def groups(self) -> GroupRegistry:
        if self._groups is None:
            self._groups = GroupRegistry(self.platform)
        return self._groups

    @property
    def graph(self) -> InterconnectGraph:
        if self._graph is None:
            self._graph = InterconnectGraph(self.platform)
        return self._graph

    # -- selectors ------------------------------------------------------------
    def select(self, selector: str) -> list[ProcessingUnit]:
        """Evaluate a selector expression (see :mod:`repro.query.selectors`)."""
        compiled = self._selector_cache.get(selector)
        if compiled is None:
            compiled = parse_selector(selector)
            self._selector_cache[selector] = compiled
        return compiled.select(self.platform)

    def select_one(self, selector: str) -> ProcessingUnit:
        """Like :meth:`select` but requires exactly one result."""
        found = self.select(selector)
        if len(found) != 1:
            raise QueryError(
                f"selector {selector!r} matched {len(found)} PUs, expected exactly 1"
            )
        return found[0]

    # -- shortcuts -------------------------------------------------------------
    def pu(self, pu_id: str) -> ProcessingUnit:
        return self.platform.pu(pu_id)

    def workers(self, *, architecture: Optional[str] = None) -> list[ProcessingUnit]:
        out = self.platform.workers()
        if architecture is not None:
            out = [pu for pu in out if pu.architecture == architecture]
        return out

    def by_property(self, name: str, value=None) -> list[ProcessingUnit]:
        """PUs whose descriptor has property ``name`` (optionally = value)."""
        out = []
        for pu in self.platform.walk():
            prop = pu.descriptor.find(name)
            if prop is None:
                continue
            if value is None or prop.value.as_str() == str(value):
                out.append(pu)
        return out

    def group(self, name: str) -> list[ProcessingUnit]:
        """Members of a LogicGroupAttribute group."""
        return self.groups.members(name)

    def architectures(self) -> set[str]:
        return self.platform.architectures()

    # -- paths -----------------------------------------------------------------
    def route(self, src, dst, *, weight: str = "hops") -> Route:
        return self.graph.shortest(src, dst, weight=weight)

    def transfer_time(self, src, dst, nbytes: float) -> float:
        return self.graph.estimate_transfer_time(src, dst, nbytes)

    # -- patterns -----------------------------------------------------------------
    def match(
        self, pattern: Union[Platform, ProcessingUnit], **kwargs
    ) -> PatternMatch:
        return match_pattern(pattern, self.platform, **kwargs)

    def matches(
        self, pattern: Union[Platform, ProcessingUnit], **kwargs
    ) -> list[PatternMatch]:
        return find_matches(pattern, self.platform, **kwargs)

    def supports_pattern(self, pattern, **kwargs) -> bool:
        return bool(find_matches(pattern, self.platform, limit=1, **kwargs))

    def __repr__(self) -> str:
        return f"PlatformQuery({self.platform.name!r})"
