"""Selector mini-language over platform hierarchies.

The paper positions the PDL as "a name-space for reference to architectural
properties and platform information".  This module gives that namespace a
compact query syntax, modeled after XPath but restricted to the machine
model::

    Master/Worker[ARCHITECTURE=gpu]      # gpu Workers directly under Masters
    //Worker[@group=cpus]                # any Worker in group "cpus"
    //*[PEAK_GFLOPS_DP>=80]              # any PU with >= 80 DP GFLOP/s
    Master//Worker[MODEL=GeForce GTX 480][@quantity>=1]

Grammar
-------
::

    selector  := ['/' | '//'] step (('/' | '//') step)*
    step      := kind predicate*
    kind      := 'Master' | 'Hybrid' | 'Worker' | '*'
    predicate := '[' key op value ']'
    key       := PROPERTY_NAME | '@id' | '@group' | '@kind' | '@quantity' | '@arch'
    op        := '=' | '!=' | '>' | '>=' | '<' | '<='

``/`` selects direct children, ``//`` any descendants.  A leading ``/``
anchors at the platform's Masters; a leading ``//`` (or no prefix with a
``*``/kind step) searches the whole hierarchy.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import SelectorSyntaxError
from repro.model.entities import ProcessingUnit
from repro.model.platform import Platform

__all__ = ["Selector", "Step", "Predicate", "parse_selector", "select"]

_KINDS = {"Master", "Hybrid", "Worker", "*"}
_OPS = ("!=", ">=", "<=", "=", ">", "<")  # two-char ops first
_META_KEYS = {"@id", "@group", "@kind", "@quantity", "@arch", "@name"}


@dataclass(frozen=True)
class Predicate:
    """One ``[key op value]`` filter."""

    key: str
    op: str
    value: str

    def matches(self, pu: ProcessingUnit) -> bool:
        actual = self._actual(pu)
        if actual is None:
            return False
        if isinstance(actual, (list, tuple, set)):
            # multi-valued keys (@group): equality means membership
            if self.op == "=":
                return self.value in actual
            if self.op == "!=":
                return self.value not in actual
            return False
        if self.op in ("=", "!="):
            same = str(actual) == self.value
            return same if self.op == "=" else not same
        # ordered comparison: numeric when both sides parse, else lexical
        try:
            left, right = float(actual), float(self.value)
        except ValueError:
            left, right = str(actual), self.value  # type: ignore[assignment]
        if self.op == ">":
            return left > right
        if self.op == ">=":
            return left >= right
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        return False  # pragma: no cover - ops are closed

    def _actual(self, pu: ProcessingUnit):
        if self.key == "@id":
            return pu.id
        if self.key == "@kind":
            return pu.kind
        if self.key == "@quantity":
            return pu.quantity
        if self.key == "@group":
            return pu.groups
        if self.key == "@arch":
            return pu.architecture
        if self.key == "@name":
            return pu.name
        prop = pu.descriptor.find(self.key)
        return prop.value.as_str() if prop is not None else None


@dataclass(frozen=True)
class Step:
    """One path step: a PU kind plus predicates, reached via ``/`` or ``//``."""

    kind: str
    predicates: tuple[Predicate, ...] = ()
    #: True when this step was reached via ``//`` (descendant axis)
    descendant: bool = False

    def matches(self, pu: ProcessingUnit) -> bool:
        if self.kind != "*" and pu.kind != self.kind:
            return False
        return all(p.matches(pu) for p in self.predicates)


@dataclass(frozen=True)
class Selector:
    """A parsed selector; apply with :meth:`select`."""

    steps: tuple[Step, ...]
    text: str = ""

    def select(self, root) -> list[ProcessingUnit]:
        """Evaluate against a :class:`Platform` or a PU subtree.

        Results are deduplicated and returned in document order.
        """
        if isinstance(root, Platform):
            frontier: list[ProcessingUnit] = list(root.masters)
        else:
            frontier = [root]

        current = self._initial(frontier, self.steps[0])
        for step in self.steps[1:]:
            nxt: list[ProcessingUnit] = []
            for pu in current:
                candidates: Iterable[ProcessingUnit]
                if step.descendant:
                    candidates = (d for d in pu.walk() if d is not pu)
                else:
                    candidates = pu.children
                nxt.extend(c for c in candidates if step.matches(c))
            current = _dedup(nxt)
        return current

    @staticmethod
    def _initial(frontier: list[ProcessingUnit], step: Step) -> list[ProcessingUnit]:
        out: list[ProcessingUnit] = []
        if step.descendant:
            for top in frontier:
                out.extend(pu for pu in top.walk() if step.matches(pu))
        else:
            out.extend(pu for pu in frontier if step.matches(pu))
        return _dedup(out)


def _dedup(pus: Iterable[ProcessingUnit]) -> list[ProcessingUnit]:
    seen: set[int] = set()
    out = []
    for pu in pus:
        if id(pu) not in seen:
            seen.add(id(pu))
            out.append(pu)
    return out


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------
# note: used with .match(text, pos) — no ^ anchor (it would bind to string
# start rather than the scan position)
_STEP_RE = re.compile(r"(Master|Hybrid|Worker|\*)")
_KEY_RE = re.compile(r"(@?[A-Za-z_][A-Za-z0-9_.\-]*)")


def parse_selector(text: str) -> Selector:
    """Parse ``text`` into a :class:`Selector`.

    Raises :class:`~repro.errors.SelectorSyntaxError` with the offending
    position on malformed input.
    """
    original = text
    pos = 0
    steps: list[Step] = []

    def error(msg: str, at: Optional[int] = None):
        raise SelectorSyntaxError(original, at if at is not None else pos, msg)

    if not text.strip():
        error("empty selector", 0)
    text = text.strip()

    # leading axis: default is descendant search ('//' semantics) unless the
    # selector starts with a single '/' which anchors at the Masters.
    descendant = True
    if text.startswith("//"):
        pos = 2
        descendant = True
    elif text.startswith("/"):
        pos = 1
        descendant = False

    while pos < len(text):
        match = _STEP_RE.match(text, pos)
        if not match:
            error("expected PU kind (Master|Hybrid|Worker|*)")
        kind = match.group(1)
        pos = match.end()

        predicates: list[Predicate] = []
        while pos < len(text) and text[pos] == "[":
            close = text.find("]", pos)
            if close == -1:
                error("unterminated predicate '['")
            predicates.append(_parse_predicate(original, text[pos + 1 : close], pos + 1))
            pos = close + 1

        steps.append(Step(kind, tuple(predicates), descendant))

        if pos == len(text):
            break
        if text.startswith("//", pos):
            descendant = True
            pos += 2
        elif text[pos] == "/":
            descendant = False
            pos += 1
        else:
            error(f"unexpected character {text[pos]!r}")
        if pos == len(text):
            error("dangling path separator")

    return Selector(tuple(steps), original)


def _parse_predicate(original: str, body: str, offset: int) -> Predicate:
    body = body.strip()
    match = _KEY_RE.match(body)
    if not match:
        raise SelectorSyntaxError(original, offset, f"bad predicate key in {body!r}")
    key = match.group(1)
    rest = body[match.end() :].lstrip()
    for op in _OPS:
        if rest.startswith(op):
            value = rest[len(op) :].strip()
            if not value:
                raise SelectorSyntaxError(
                    original, offset, f"predicate {body!r} lacks a value"
                )
            if value[0] in "\"'" and value[-1] == value[0] and len(value) >= 2:
                value = value[1:-1]
            if key.startswith("@") and key not in _META_KEYS:
                raise SelectorSyntaxError(
                    original, offset, f"unknown meta key {key!r}; known: {sorted(_META_KEYS)}"
                )
            return Predicate(key, op, value)
    raise SelectorSyntaxError(
        original, offset, f"predicate {body!r} lacks a comparison operator"
    )


def select(root, selector: str) -> list[ProcessingUnit]:
    """Parse and evaluate ``selector`` against ``root`` in one call."""
    return parse_selector(selector).select(root)
