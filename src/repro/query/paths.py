"""Data-path derivation over the interconnect topology (paper §IV-C.3).

"The PDL allows us to derive data-transfer paths between memory-regions and
communication between processing-units via the explicitly specified
interconnect entity."  This module builds a link graph from a platform's
interconnects and answers:

* which :class:`~repro.model.entities.Interconnect` hops connect PU *a* to
  PU *b* (``shortest``, by hop count or latency),
* what a transfer of *n* bytes along that path costs
  (``estimate_transfer_time``), and
* which path moves data between two memory regions (owner-PU to owner-PU).

Interconnects declared against a PU entity with ``quantity > 1`` (e.g. the
``host → cpu`` SHM link where ``cpu`` stands for 8 cores) connect the host
to *every* expanded instance; expansion is handled by the runtime — at the
descriptor level the entity id is the node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import networkx as nx

from repro.errors import PathError
from repro.model.entities import Interconnect, MemoryRegion, ProcessingUnit
from repro.model.platform import Platform

__all__ = ["Route", "InterconnectGraph"]

#: default per-hop cost assumptions when a link lacks explicit properties
DEFAULT_LATENCY_S = 1e-6
DEFAULT_BANDWIDTH_BPS = 1024.0**3  # 1 GB/s


@dataclass(frozen=True)
class Route:
    """A resolved data path: the PU ids visited and the links taken."""

    endpoints: tuple[str, str]
    nodes: tuple[str, ...]
    links: tuple[Interconnect, ...]

    @property
    def hop_count(self) -> int:
        return len(self.links)

    def latency_s(self) -> float:
        """Sum of per-link latencies (defaults applied for silent links)."""
        return sum(
            link.latency_s if link.latency_s is not None else DEFAULT_LATENCY_S
            for link in self.links
        )

    def bottleneck_bandwidth(self) -> float:
        """Minimum link bandwidth along the route, in bytes/s."""
        if not self.links:
            return math.inf
        return min(
            link.bandwidth_bytes_per_s
            if link.bandwidth_bytes_per_s is not None
            else DEFAULT_BANDWIDTH_BPS
            for link in self.links
        )

    def transfer_time(self, nbytes: float) -> float:
        """Store-and-forward estimate: per-hop latency + serialization.

        ``sum(lat_i + nbytes / bw_i)`` — the classic per-hop model; for the
        single-hop paths of the paper's platforms this is exact.
        """
        total = 0.0
        for link in self.links:
            lat = link.latency_s if link.latency_s is not None else DEFAULT_LATENCY_S
            bw = (
                link.bandwidth_bytes_per_s
                if link.bandwidth_bytes_per_s is not None
                else DEFAULT_BANDWIDTH_BPS
            )
            total += lat + nbytes / bw
        return total

    def __repr__(self) -> str:
        return f"Route({' -> '.join(self.nodes)})"


class InterconnectGraph:
    """Link graph of one platform, ready for path queries."""

    def __init__(self, platform: Platform, *, include_control_edges: bool = False):
        """Build the graph.

        Parameters
        ----------
        platform:
            The platform whose interconnects to index.
        include_control_edges:
            Also add parent→child control edges as zero-cost fallback links.
            Useful for platforms whose descriptors omit explicit
            interconnects — the control hierarchy then implies reachability
            (a Master can always reach the Workers it controls).
        """
        self.platform = platform
        self._graph = nx.MultiDiGraph()
        for pu in platform.walk():
            self._graph.add_node(pu.id)
        for pu in platform.walk():
            for ic in pu.interconnects:
                self._add_link(ic)
        if include_control_edges:
            for pu in platform.walk():
                for child in pu.children:
                    if not self._graph.has_edge(pu.id, child.id):
                        implicit = Interconnect(
                            pu.id, child.id, type="control", id=f"ctl-{pu.id}-{child.id}"
                        )
                        self._add_link(implicit)

    def _add_link(self, ic: Interconnect) -> None:
        self._graph.add_edge(ic.from_pu, ic.to_pu, link=ic)
        if ic.bidirectional:
            self._graph.add_edge(ic.to_pu, ic.from_pu, link=ic)

    # -- queries ------------------------------------------------------------
    def neighbors(self, pu_id: str) -> list[str]:
        self._require_node(pu_id)
        return sorted(set(self._graph.successors(pu_id)))

    def links_between(self, a: str, b: str) -> list[Interconnect]:
        """All direct links from ``a`` to ``b``."""
        self._require_node(a)
        self._require_node(b)
        if not self._graph.has_edge(a, b):
            return []
        return [data["link"] for data in self._graph[a][b].values()]

    def shortest(
        self,
        src: Union[str, ProcessingUnit],
        dst: Union[str, ProcessingUnit],
        *,
        weight: str = "hops",
    ) -> Route:
        """Shortest route from ``src`` to ``dst``.

        ``weight`` selects the metric: ``"hops"`` (default), ``"latency"``
        or ``"bandwidth"`` (maximize bottleneck bandwidth via inverse
        weighting).  Raises :class:`~repro.errors.PathError` when no route
        exists.
        """
        a = src.id if isinstance(src, ProcessingUnit) else str(src)
        b = dst.id if isinstance(dst, ProcessingUnit) else str(dst)
        self._require_node(a)
        self._require_node(b)
        if a == b:
            return Route((a, b), (a,), ())

        link_cost = self._link_cost_fn(weight)

        # networkx passes the weight callable the *multi-edge* dict
        # ({key: attrs, ...}); take the cheapest parallel link.
        def edge_weight(u, v, multi):
            return min(link_cost(attrs["link"]) for attrs in multi.values())

        try:
            nodes = nx.shortest_path(self._graph, a, b, weight=edge_weight)
        except nx.NetworkXNoPath:
            raise PathError(f"no data path from {a!r} to {b!r}") from None

        links = []
        for u, v in zip(nodes, nodes[1:]):
            best = min(
                self._graph[u][v].values(),
                key=lambda attrs: link_cost(attrs["link"]),
            )
            links.append(best["link"])
        return Route((a, b), tuple(nodes), tuple(links))

    def route_between_regions(
        self, src: MemoryRegion, dst: MemoryRegion, **kwargs
    ) -> Route:
        """Route between the owner PUs of two memory regions."""
        if src.owner is None or dst.owner is None:
            raise PathError("memory region is not attached to a processing unit")
        return self.shortest(src.owner, dst.owner, **kwargs)

    def reachable(self, pu_id: str) -> set[str]:
        """All PU ids reachable from ``pu_id`` (excluding itself)."""
        self._require_node(pu_id)
        return set(nx.descendants(self._graph, pu_id))

    def is_connected(self) -> bool:
        """Weakly connected: every PU can be reached ignoring direction."""
        if self._graph.number_of_nodes() <= 1:
            return True
        return nx.is_weakly_connected(self._graph)

    def estimate_transfer_time(self, src, dst, nbytes: float) -> float:
        """Convenience: shortest-by-latency route, then its transfer time."""
        return self.shortest(src, dst, weight="latency").transfer_time(nbytes)

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _link_cost_fn(weight: str):
        """Per-:class:`Interconnect` cost for the chosen metric."""
        if weight == "hops":
            return lambda link: 1.0
        if weight == "latency":
            return lambda link: (
                link.latency_s if link.latency_s is not None else DEFAULT_LATENCY_S
            )
        if weight == "bandwidth":
            return lambda link: 1.0 / (
                link.bandwidth_bytes_per_s
                if link.bandwidth_bytes_per_s is not None
                else DEFAULT_BANDWIDTH_BPS
            )
        raise PathError(f"unknown path weight {weight!r}; use hops|latency|bandwidth")

    def _require_node(self, pu_id: str) -> None:
        if pu_id not in self._graph:
            raise PathError(f"unknown processing unit {pu_id!r}")

    def __repr__(self) -> str:
        return (
            f"InterconnectGraph(nodes={self._graph.number_of_nodes()},"
            f" links={self._graph.number_of_edges()})"
        )
