"""Static task-variant pre-selection (Cascabel step 2, §IV-C).

"The platform patterns specified for available task implementation
variants are compared to the platform description of the target
environment.  This serves pre-pruning of task variants not suitable for
the target as well as static mapping of tasks to potentially available
hardware resources."

A variant is eligible on a target platform when

1. its *target platform list* names an execution environment the platform
   provides (``cuda``/``opencl`` need a gpu Worker, ``cellsdk``/``spe`` an
   spe Worker, ``x86``/``x86_64`` an x86-class PU), and
2. its *required pattern*, if any, matches the concrete platform
   (:mod:`repro.query.patterns`).

At least one eligible fallback (x86-class) variant must remain per
executed interface; otherwise the program cannot be translated for the
target (the paper requires a sequential fallback so "the application can
always be compiled for a Master PU").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SelectionError
from repro.model.platform import Platform
from repro.obs import spans as _obs
from repro.obs.digest import fingerprint_payload
from repro.query.patterns import pattern_matches
from repro.cascabel.program import AnnotatedProgram
from repro.cascabel.repository import TaskRepository, TaskVariant

__all__ = [
    "TARGET_ARCHITECTURES",
    "target_available",
    "eligible_variants",
    "SelectionReport",
    "preselect",
    "annotate_predictions",
]

#: target platform identifier → PU architectures that can host it
TARGET_ARCHITECTURES: dict[str, tuple[str, ...]] = {
    "x86": ("x86", "x86_64"),
    "x86_64": ("x86", "x86_64"),
    "opencl": ("gpu",),
    "cuda": ("gpu",),
    "cellsdk": ("spe",),
    "spe": ("spe",),
}


def target_available(target: str, platform: Platform) -> bool:
    """Whether ``platform`` offers an execution environment for ``target``.

    ``x86``-class targets are portable serial C: they are available on any
    platform with a Master PU ("the high-level input program can be
    executed on all systems where an appropriate C/C++ compiler is
    available", §IV-A), not only on x86 hardware.
    """
    architectures = TARGET_ARCHITECTURES.get(target)
    if architectures is None:
        return False
    present = platform.architectures()
    if any(arch in present for arch in architectures):
        return True
    if target in ("x86", "x86_64") and platform.masters:
        return True
    return False


def eligible_variants(
    variants: list[TaskVariant], platform: Platform
) -> tuple[list[TaskVariant], dict[str, str]]:
    """Filter ``variants`` against ``platform``.

    Returns (eligible, pruned) where ``pruned`` maps variant name →
    human-readable pruning reason.
    """
    eligible: list[TaskVariant] = []
    pruned: dict[str, str] = {}
    for variant in variants:
        usable_targets = [
            t for t in variant.targets if target_available(t, platform)
        ]
        if not usable_targets:
            pruned[variant.name] = (
                f"no hardware for targets {list(variant.targets)}"
                f" (platform architectures: {sorted(platform.architectures())})"
            )
            continue
        if variant.required_pattern is not None and not pattern_matches(
            variant.required_pattern, platform
        ):
            pruned[variant.name] = "required platform pattern does not match"
            continue
        eligible.append(variant)
    return eligible, pruned


@dataclass
class SelectionReport:
    """Outcome of pre-selection for one program on one target platform."""

    platform_name: str
    #: interface → eligible variants (ordered: accelerator variants first)
    selected: dict[str, list[TaskVariant]] = field(default_factory=dict)
    #: variant name → pruning reason
    pruned: dict[str, str] = field(default_factory=dict)
    #: interface → variant name → {"analytic": s, "tuned": s} predicted
    #: execution seconds (filled by :func:`annotate_predictions`)
    predictions: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def variants_for(self, interface: str) -> list[TaskVariant]:
        try:
            return self.selected[interface]
        except KeyError:
            raise SelectionError(
                f"interface {interface!r} was not part of this selection"
            ) from None

    def accelerator_variants(self, interface: str) -> list[TaskVariant]:
        return [v for v in self.variants_for(interface) if not v.is_fallback]

    def fallback(self, interface: str) -> TaskVariant:
        for variant in self.variants_for(interface):
            if variant.is_fallback:
                return variant
        raise SelectionError(
            f"interface {interface!r} has no eligible sequential fallback"
        )

    def summary(self) -> str:
        lines = [f"variant pre-selection for target {self.platform_name!r}:"]
        for interface, variants in sorted(self.selected.items()):
            names = ", ".join(
                f"{v.name}({'/'.join(v.targets)})" for v in variants
            )
            lines.append(f"  {interface}: {names}")
            for name, figures in sorted(
                self.predictions.get(interface, {}).items()
            ):
                cells = "  ".join(
                    f"{model}={seconds:.4g}s"
                    for model, seconds in sorted(figures.items())
                )
                lines.append(f"    {name}: {cells}")
        for name, reason in sorted(self.pruned.items()):
            lines.append(f"  pruned {name}: {reason}")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """JSON-serializable representation (wire format of the registry
        service's ``/preselect`` endpoint).

        Deterministic: interfaces and pruned variants are emitted sorted,
        and :func:`preselect` orders variants canonically, so two
        selections of the same program against the same descriptor
        produce byte-identical payloads.
        """
        payload = {
            "platform": self.platform_name,
            "selected": {
                interface: [
                    {
                        "name": v.name,
                        "targets": list(v.targets),
                        "is_fallback": v.is_fallback,
                        "provenance": v.provenance,
                    }
                    for v in variants
                ]
                for interface, variants in sorted(self.selected.items())
            },
            "pruned": dict(sorted(self.pruned.items())),
        }
        if self.predictions:
            # present only when annotated, so un-annotated payloads (and
            # their fingerprints / service memo keys) are unchanged
            payload["predictions"] = {
                interface: {
                    name: dict(sorted(figures.items()))
                    for name, figures in sorted(variants.items())
                }
                for interface, variants in sorted(self.predictions.items())
            }
        return payload

    def fingerprint(self) -> str:
        """Stable sha256 over :meth:`to_payload` (cheap memoization key /
        equality check for services caching selection results)."""
        return fingerprint_payload(self.to_payload())


def preselect(
    repository: TaskRepository,
    program: AnnotatedProgram,
    platform: Platform,
    *,
    require_fallback: bool = True,
) -> SelectionReport:
    """Run static pre-selection for every interface the program executes.

    Interfaces that are defined but never executed are still selected
    (they may be called indirectly); interfaces with *zero* eligible
    variants raise :class:`~repro.errors.SelectionError`.
    """
    tracer = _obs.get_tracer()
    if tracer is None:
        return _preselect(
            repository, program, platform, require_fallback=require_fallback
        )
    with tracer.span(
        "cascabel.preselect", platform=platform.name
    ) as span_:
        report = _preselect(
            repository, program, platform, require_fallback=require_fallback
        )
        span_.set(
            interfaces=len(report.selected),
            pruned=len(report.pruned),
            fingerprint=report.fingerprint(),
        )
        return report


def _preselect(
    repository: TaskRepository,
    program: AnnotatedProgram,
    platform: Platform,
    *,
    require_fallback: bool,
) -> SelectionReport:
    report = SelectionReport(platform_name=platform.name)
    for interface in repository.interfaces():
        variants = repository.variants(interface)
        eligible, pruned = eligible_variants(variants, platform)
        report.pruned.update(pruned)
        if not eligible:
            raise SelectionError(
                f"interface {interface!r}: no variant is suitable for"
                f" platform {platform.name!r}"
                f" (pruned: {pruned})"
            )
        if require_fallback and not any(v.is_fallback for v in eligible):
            raise SelectionError(
                f"interface {interface!r}: no sequential fallback variant"
                f" remains for platform {platform.name!r}; the paper requires"
                " at least one Master-executable implementation"
            )
        # canonical order: accelerator variants first (output generation
        # prefers them), then by name — deterministic regardless of the
        # repository's registration order, so SelectionReport payloads
        # and fingerprints are stable and safely memoizable
        ordered = sorted(eligible, key=lambda v: (v.is_fallback, v.name))
        report.selected[interface] = ordered
    return report


def _kernel_for_interface(interface: str, registry) -> str | None:
    """Map a task interface name onto a runtime kernel.

    Interface names follow the paper's ``I<kernel>`` convention
    (``Idgemm``, ``Ivecadd``); kernels carry BLAS-style ``d`` prefixes.
    Candidates are tried in order: the name itself, the name without the
    ``I`` prefix, and the de-prefixed name with a ``d`` prepended.
    """
    candidates = [interface]
    if interface.startswith("I") and len(interface) > 1:
        stripped = interface[1:]
        candidates += [stripped, f"d{stripped}"]
    for candidate in candidates:
        if candidate in registry.names():
            return candidate
    return None


def annotate_predictions(
    report: SelectionReport,
    platform: Platform,
    *,
    models: dict,
    probe_size: int = 1024,
    registry=None,
) -> SelectionReport:
    """Fill ``report.predictions`` with estimated execution seconds.

    ``models`` maps a column label to a perf model — typically
    ``{"analytic": PerfModel(), "tuned": HistoryPerfModel(...)}`` — so a
    selection report can show how an empirically tuned model re-ranks the
    selected variants against the analytic guesses.  For every variant,
    the predicted time is the *best* (minimum) estimate over the platform
    Workers its targets can run on, probing a canonical
    ``probe_size``-sized problem of the interface's kernel.  Interfaces
    with no kernel mapping or no matching Worker are left un-annotated.

    Returns ``report`` (annotated in place) for chaining.
    """
    # local imports keep the static toolchain layer import-light; the
    # runtime/tune layers are only pulled in when annotation is requested
    from repro.kernels.registry import default_kernel_registry
    from repro.tune.calibrate import dims_for

    if registry is None:
        registry = default_kernel_registry()
    workers = platform.workers()
    for interface, variants in report.selected.items():
        kernel = _kernel_for_interface(interface, registry)
        if kernel is None:
            continue
        kernel_def = registry.get(kernel)
        dims = dims_for(kernel, probe_size)
        flops = kernel_def.flops(dims)
        nbytes = kernel_def.bytes_touched(dims)
        for variant in variants:
            architectures: set[str] = set()
            for target in variant.targets:
                architectures.update(TARGET_ARCHITECTURES.get(target, ()))
            candidates = [w for w in workers if w.architecture in architectures]
            if not candidates:
                continue
            figures: dict[str, float] = {}
            for label, model in models.items():
                figures[label] = min(
                    model.estimate(
                        pu,
                        kernel=kernel,
                        flops=flops,
                        bytes_touched=nbytes,
                        dims=dims if len(dims) == 3 else None,
                    )
                    for pu in candidates
                )
            report.predictions.setdefault(interface, {})[variant.name] = figures
    return report
