"""Static task mapping: execution groups → concrete processing units
(paper §IV-B).

The ``execute`` pragma's *executiongroup* references a
``LogicGroupAttribute`` of the target PDL.  Mapping resolves, for every
task execution:

* the member PUs of its execution group (empty group → all Workers),
* which eligible variants can run on which members (variant targets vs
  PU architecture), and
* the per-execution *placement table* used by code generation and runtime
  lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MappingError, ModelError
from repro.model.entities import ProcessingUnit
from repro.model.groups import GroupRegistry
from repro.model.platform import Platform
from repro.cascabel.program import AnnotatedProgram, TaskExecution
from repro.cascabel.repository import TaskVariant
from repro.cascabel.selection import TARGET_ARCHITECTURES, SelectionReport

__all__ = ["Placement", "ExecutionMapping", "MappingReport", "map_tasks"]


@dataclass(frozen=True)
class Placement:
    """One (PU, variant) pairing a task execution may use."""

    pu: ProcessingUnit
    variant: TaskVariant

    @property
    def lanes(self) -> int:
        """Parallel lanes this placement offers (PU quantity expansion)."""
        return self.pu.quantity


@dataclass
class ExecutionMapping:
    """Resolved mapping of one ``execute`` annotation."""

    execution: TaskExecution
    group_members: list[ProcessingUnit]
    placements: list[Placement]

    @property
    def interface(self) -> str:
        return self.execution.interface

    @property
    def total_lanes(self) -> int:
        return sum(p.lanes for p in self.placements)

    def placements_for_architecture(self, architecture: str) -> list[Placement]:
        return [p for p in self.placements if p.pu.architecture == architecture]

    def variants_used(self) -> list[TaskVariant]:
        seen: dict[str, TaskVariant] = {}
        for placement in self.placements:
            seen.setdefault(placement.variant.name, placement.variant)
        return list(seen.values())


@dataclass
class MappingReport:
    """All execution mappings of one program on one target platform."""

    platform_name: str
    mappings: list[ExecutionMapping] = field(default_factory=list)

    def for_interface(self, interface: str) -> list[ExecutionMapping]:
        return [m for m in self.mappings if m.interface == interface]

    def summary(self) -> str:
        lines = [f"task mapping for target {self.platform_name!r}:"]
        for mapping in self.mappings:
            group = mapping.execution.execution_group or "(all workers)"
            pairs = ", ".join(
                f"{p.variant.name}@{p.pu.id}x{p.lanes}" for p in mapping.placements
            )
            lines.append(
                f"  {mapping.interface} [{group}] -> {pairs}"
                f" ({mapping.total_lanes} lanes)"
            )
        return "\n".join(lines)


def _variant_runs_on(variant: TaskVariant, pu: ProcessingUnit) -> bool:
    arch = pu.architecture
    if arch is None:
        return False
    for target in variant.targets:
        if arch in TARGET_ARCHITECTURES.get(target, ()):
            return True
    return False


def map_tasks(
    program: AnnotatedProgram,
    selection: SelectionReport,
    platform: Platform,
) -> MappingReport:
    """Cascabel's static mapping step.

    Raises :class:`~repro.errors.MappingError` when an execution group is
    undefined on the platform or no (PU, variant) pairing exists.
    """
    groups = GroupRegistry(platform)
    report = MappingReport(platform_name=platform.name)

    for execution in program.executions:
        group = execution.execution_group
        if group:
            try:
                members = groups.members(group)
            except ModelError as exc:
                raise MappingError(
                    f"execute of {execution.interface!r}: {exc}"
                ) from exc
        else:
            members = [pu for pu in platform.walk() if pu.kind == "Worker"]
        if not members:
            raise MappingError(
                f"execute of {execution.interface!r}: execution group"
                f" {group!r} has no members"
            )

        eligible = selection.variants_for(execution.interface)
        placements: list[Placement] = []
        for pu in members:
            # prefer the first (accelerator-ordered) variant that fits the PU
            for variant in eligible:
                if _variant_runs_on(variant, pu):
                    placements.append(Placement(pu=pu, variant=variant))
                    break
        if not placements:
            raise MappingError(
                f"execute of {execution.interface!r}: none of the eligible"
                f" variants {[v.name for v in eligible]} can run on group"
                f" {group or '(all workers)'!r} members"
                f" {[pu.id for pu in members]}"
            )
        report.mappings.append(
            ExecutionMapping(
                execution=execution,
                group_members=members,
                placements=placements,
            )
        )
    return report
