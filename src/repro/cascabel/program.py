"""Annotated-program representation (Cascabel's input AST).

A translation unit parses into an :class:`AnnotatedProgram`: the raw
source plus, in document order, the task *definitions* (pragma + following
function) and task *executions* (pragma + following call statement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CascabelError
from repro.cascabel.lexer import CallStatement, FunctionDef
from repro.cascabel.pragmas import ExecutePragma, TaskPragma

__all__ = ["TaskDefinition", "TaskExecution", "AnnotatedProgram"]


@dataclass(frozen=True)
class TaskDefinition:
    """One annotated task implementation variant in the source."""

    pragma: TaskPragma
    function: FunctionDef

    @property
    def interface(self) -> str:
        return self.pragma.interface

    @property
    def variant_name(self) -> str:
        return self.pragma.variant_name

    @property
    def targets(self) -> tuple[str, ...]:
        return self.pragma.targets

    def validate(self) -> None:
        """Pragma parameters must name actual function parameters."""
        declared = set(self.function.param_names)
        for param in self.pragma.parameters:
            if param.name not in declared:
                raise CascabelError(
                    f"task {self.interface!r} variant {self.variant_name!r}:"
                    f" pragma names parameter {param.name!r} but the function"
                    f" signature declares {sorted(declared)}"
                )


@dataclass(frozen=True)
class TaskExecution:
    """One annotated call site."""

    pragma: ExecutePragma
    call: CallStatement

    @property
    def interface(self) -> str:
        return self.pragma.interface

    @property
    def execution_group(self) -> str:
        return self.pragma.execution_group


@dataclass
class AnnotatedProgram:
    """One parsed translation unit."""

    source: str
    filename: str = "<string>"
    definitions: list[TaskDefinition] = field(default_factory=list)
    executions: list[TaskExecution] = field(default_factory=list)

    def interfaces(self) -> list[str]:
        """All task interface names, in definition order, deduplicated."""
        seen: dict[str, None] = {}
        for definition in self.definitions:
            seen.setdefault(definition.interface)
        return list(seen)

    def definitions_for(self, interface: str) -> list[TaskDefinition]:
        return [d for d in self.definitions if d.interface == interface]

    def executions_for(self, interface: str) -> list[TaskExecution]:
        return [e for e in self.executions if e.interface == interface]

    def validate(self) -> None:
        """Cross-check definitions and executions.

        * every variant validates against its function signature,
        * variants of one interface share the same function signature
          (the paper: "same functionality and function signature for all
          implementations"),
        * every execution references a defined interface,
        * variant names are unique.
        """
        names: set[str] = set()
        for definition in self.definitions:
            definition.validate()
            if definition.variant_name in names:
                raise CascabelError(
                    f"duplicate taskname {definition.variant_name!r}"
                )
            names.add(definition.variant_name)

        for interface in self.interfaces():
            defs = self.definitions_for(interface)
            reference = defs[0].function
            for other in defs[1:]:
                if other.function.param_names != reference.param_names or (
                    other.function.return_type != reference.return_type
                ):
                    raise CascabelError(
                        f"interface {interface!r}: variant"
                        f" {other.variant_name!r} signature"
                        f" ({other.function.signature}) differs from"
                        f" {defs[0].variant_name!r} ({reference.signature})"
                    )

        known = set(self.interfaces())
        for execution in self.executions:
            if execution.interface not in known:
                raise CascabelError(
                    f"execute pragma references unknown task interface"
                    f" {execution.interface!r} (line {execution.pragma.line});"
                    f" defined: {sorted(known)}"
                )
            # distribution names must be parameters of the interface
            params = {
                p.name
                for d in self.definitions_for(execution.interface)
                for p in d.pragma.parameters
            }
            for dist in execution.pragma.distributions:
                if dist.name not in params:
                    raise CascabelError(
                        f"execute of {execution.interface!r}: distribution for"
                        f" unknown parameter {dist.name!r}"
                        f" (parameters: {sorted(params)})"
                    )

    def __repr__(self) -> str:
        return (
            f"AnnotatedProgram({self.filename!r},"
            f" definitions={len(self.definitions)},"
            f" executions={len(self.executions)})"
        )
