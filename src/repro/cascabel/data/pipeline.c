/*
 * Two-stage pipeline sample: scale a vector, then accumulate it into a
 * result vector.  Exercises multiple task interfaces, multiple call
 * sites, and implementation variants contributed for different targets
 * in one translation unit.
 */
#include <stdio.h>
#include <stdlib.h>

#define N 2097152

/* Stage 1: Y *= alpha (an x86 fallback and a CUDA variant) */
#pragma cascabel task : x86 \
    : Iscale \
    : scale_seq01 \
    : (Y: readwrite)
void scale(double *Y)
{
    for (long i = 0; i < N; i++) {
        Y[i] *= 0.5;
    }
}

#pragma cascabel task : cuda,opencl \
    : Iscale \
    : scale_gpu01 \
    : (Y: readwrite)
void scale_gpu(double *Y)
{
    /* device kernel body provided by the accelerator toolchain */
    for (long i = 0; i < N; i++) {
        Y[i] *= 0.5;
    }
}

/* Stage 2: A += B */
#pragma cascabel task : x86 \
    : Iaccum \
    : accum_seq01 \
    : (A: readwrite, B: read)
void accumulate(double *A, double *B)
{
    for (long i = 0; i < N; i++) {
        A[i] += B[i];
    }
}

int main(void)
{
    double *acc = calloc(N, sizeof(double));
    double *buf = malloc(N * sizeof(double));
    for (long i = 0; i < N; i++) {
        buf[i] = (double)i;
    }

    for (int iter = 0; iter < 4; iter++) {
        #pragma cascabel execute Iscale \
            : executionset01 \
            (Y:BLOCK:N)
        scale(buf);

        #pragma cascabel execute Iaccum \
            : executionset01 \
            (A:BLOCK:N, B:BLOCK:N)
        accumulate(acc, buf);
    }

    printf("acc[1] = %f\n", acc[1]);
    free(acc);
    free(buf);
    return 0;
}
