/*
 * The paper's running example (section IV-A): a serial vector addition
 * annotated as a cascabel task with an x86 fallback implementation.
 */
#include <stdio.h>
#include <stdlib.h>

#define N 1048576

/* Task definition */
#pragma cascabel task : x86 \
    : Ivecadd \
    : vecadd01 \
    : (A: readwrite, B: read)
void vectoradd(double *A, double *B)
{
    for (long i = 0; i < N; i++) {
        A[i] += B[i];
    }
}

int main(void)
{
    double *A = malloc(N * sizeof(double));
    double *B = malloc(N * sizeof(double));
    for (long i = 0; i < N; i++) {
        A[i] = (double)i;
        B[i] = 2.0 * (double)i;
    }

    /* Task execution */
    #pragma cascabel execute Ivecadd \
        : executionset01 \
        (A:BLOCK:N, B:BLOCK:N)
    vectoradd(A, B);

    printf("A[1] = %f\n", A[1]);
    free(A);
    free(B);
    return 0;
}
