/*
 * The Figure-5 input program: a serial double-precision matrix
 * multiplication (DGEMM) of two 8192x8192 matrices, calling an optimized
 * BLAS (GotoBLAS2 in the paper).  The single annotated call site is what
 * Cascabel retargets to StarPU / StarPU+2GPU outputs.
 */
#include <stdio.h>
#include <stdlib.h>

#define N 8192

extern void dgemm_(const char *ta, const char *tb, const int *m,
                   const int *n, const int *k, const double *alpha,
                   const double *A, const int *lda, const double *B,
                   const int *ldb, const double *beta, double *C,
                   const int *ldc);

/* Task definition: sequential fallback backed by the tuned BLAS */
#pragma cascabel task : x86 \
    : Idgemm \
    : dgemm_goto01 \
    : (C: readwrite, A: read, B: read)
void matmul(double *C, double *A, double *B)
{
    const int n = N;
    const double one = 1.0;
    dgemm_("N", "N", &n, &n, &n, &one, A, &n, B, &n, &one, C, &n);
}

int main(void)
{
    double *A = malloc((size_t)N * N * sizeof(double));
    double *B = malloc((size_t)N * N * sizeof(double));
    double *C = calloc((size_t)N * N, sizeof(double));
    for (size_t i = 0; i < (size_t)N * N; i++) {
        A[i] = 1.0 / (double)(i + 1);
        B[i] = (double)(i % 17);
    }

    /* Task execution: block-distributed over executionset01 */
    #pragma cascabel execute Idgemm \
        : executionset01 \
        (C:BLOCK:N, A:BLOCK:N, B:BLOCK:N)
    matmul(C, A, B);

    printf("C[0] = %f\n", C[0]);
    free(A);
    free(B);
    free(C);
    return 0;
}
