"""``cascabel`` command line interface.

Subcommands::

    cascabel translate input.c --platform xeon_x5550_2gpu [-o outdir]
    cascabel inspect input.c            # parsed pragmas / tasks
    cascabel samples                    # list shipped annotated programs
    cascabel run input.c --platform P --size N [--scheduler dmda]
"""

from __future__ import annotations

import argparse
import os
from importlib import resources

from repro.cascabel.driver import translate
from repro.cascabel.frontend import parse_program, parse_program_file
from repro.cascabel.lowering import run_translation

__all__ = ["main", "build_arg_parser", "sample_source", "available_samples"]


def available_samples() -> list[str]:
    root = resources.files("repro.cascabel").joinpath("data")
    return sorted(
        entry.name[: -len(".c")] for entry in root.iterdir() if entry.name.endswith(".c")
    )


def sample_source(name: str) -> str:
    """Source text of a shipped annotated sample program."""
    entry = resources.files("repro.cascabel").joinpath("data", f"{name}.c")
    return entry.read_text(encoding="utf-8")


def _load_program(spec: str):
    if os.path.exists(spec):
        return parse_program_file(spec)
    if spec in available_samples():
        return parse_program(sample_source(spec), filename=f"<sample:{spec}>")
    raise SystemExit(
        f"no such file or sample {spec!r}; samples: {available_samples()}"
    )


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cascabel",
        description="PDL-parametrized source-to-source compiler for"
        " annotated task-based C/C++ programs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("samples", help="list shipped annotated sample programs")

    inspect = sub.add_parser("inspect", help="show parsed tasks and call sites")
    inspect.add_argument("input", help="source file or sample name")

    trans = sub.add_parser("translate", help="translate for a target platform")
    trans.add_argument("input")
    trans.add_argument("--platform", required=True, help="PDL file or shipped name")
    trans.add_argument("-o", "--output", help="directory for generated files")

    run = sub.add_parser(
        "run", help="translate, then execute on the simulated runtime"
    )
    run.add_argument("input")
    run.add_argument("--platform", required=True)
    run.add_argument("--size", type=int, default=8192, help="problem size N")
    run.add_argument("--block", type=int, default=None, help="tile edge")
    run.add_argument("--scheduler", default="dmda")
    return parser


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)

    if args.command == "samples":
        for name in available_samples():
            print(name)
        return 0

    if args.command == "inspect":
        program = _load_program(args.input)
        print(program)
        for d in program.definitions:
            print(
                f"  task {d.interface} variant={d.variant_name}"
                f" targets={'/'.join(d.targets)}"
                f" fn={d.function.name}({', '.join(d.function.param_names)})"
            )
        for e in program.executions:
            dists = ", ".join(
                f"{x.name}:{x.kind}" + (f":{x.size}" if x.size else "")
                for x in e.pragma.distributions
            )
            print(
                f"  execute {e.interface} group={e.execution_group or '-'}"
                f" call={e.call.name}(...) dists=({dists})"
            )
        return 0

    platform = _resolve_platform(args.platform)

    if args.command == "translate":
        program = _load_program(args.input)
        result = translate(program, platform)
        print(result.summary())
        if args.output:
            paths = result.output.write_to(args.output)
            makefile = os.path.join(args.output, "Makefile")
            with open(makefile, "w", encoding="utf-8") as handle:
                handle.write(result.plan.as_makefile())
            print("wrote:", ", ".join(paths + [makefile]))
        return 0

    if args.command == "run":
        program = _load_program(args.input)
        result = translate(program, platform)
        run = run_translation(
            result,
            sizes={"N": args.size},
            scheduler=args.scheduler,
            block_size=args.block,
        )
        print(result.summary())
        print()
        print(run.summary())
        return 0

    return 2  # pragma: no cover


def _resolve_platform(spec: str):
    from repro.pdl.catalog import available_platforms, load_platform
    from repro.pdl.parser import parse_pdl_file

    if os.path.exists(spec):
        return parse_pdl_file(spec)
    if spec in available_platforms():
        return load_platform(spec)
    raise SystemExit(
        f"no such platform file or shipped descriptor {spec!r};"
        f" shipped: {available_platforms()}"
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
