"""Minimal C/C++ source scanner for the Cascabel frontend.

The paper's prototype used the ROSE compiler framework; it needs only a
small slice of C parsing: locate ``#pragma cascabel`` directives (with
backslash continuations), skip comments and string literals correctly,
extract the function definition following a task pragma, and the call
statement following an execute pragma.  This module provides exactly that
slice over raw source text, keeping line numbers for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PragmaSyntaxError

__all__ = [
    "SourceLine",
    "PragmaDirective",
    "FunctionDef",
    "CallStatement",
    "strip_comments",
    "scan_pragmas",
    "extract_function",
    "extract_call",
    "parse_signature",
]


@dataclass(frozen=True)
class PragmaDirective:
    """One (continuation-joined) ``#pragma`` line."""

    text: str  # joined pragma text, single-spaced, without '#pragma'
    line: int  # 1-based line of the first physical line
    end_line: int  # last physical line of the directive
    column: int = 1  # 1-based column of the '#' on the first line


@dataclass(frozen=True)
class FunctionDef:
    """A function definition extracted from source."""

    return_type: str
    name: str
    params: tuple[str, ...]  # raw parameter declarations
    param_names: tuple[str, ...]
    body: str  # includes the braces
    start_line: int
    end_line: int

    @property
    def signature(self) -> str:
        return f"{self.return_type} {self.name}({', '.join(self.params)})"


@dataclass(frozen=True)
class CallStatement:
    """A function-call statement (``foo(a, b);``)."""

    name: str
    arguments: tuple[str, ...]
    text: str
    line: int
    column: int = 1  # 1-based column where the statement starts


def strip_comments(source: str) -> str:
    """Replace comments with spaces (preserving newlines and offsets).

    Handles ``//`` and ``/* */`` while respecting string and character
    literals.
    """
    out = []
    i = 0
    n = len(source)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = source[i]
        nxt = source[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            out.append(c)
            if c == "\\" and nxt:
                out.append(nxt)
                i += 2
                continue
            if c == '"':
                state = "code"
        elif state == "char":
            out.append(c)
            if c == "\\" and nxt:
                out.append(nxt)
                i += 2
                continue
            if c == "'":
                state = "code"
        i += 1
    return "".join(out)


def scan_pragmas(source: str, *, prefix: str = "cascabel") -> list[PragmaDirective]:
    """All ``#pragma <prefix> ...`` directives, continuations joined."""
    clean = strip_comments(source)
    lines = clean.split("\n")
    directives = []
    i = 0
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped.startswith("#pragma"):
            start = i
            column = lines[i].index("#") + 1
            text = stripped
            while text.endswith("\\"):
                text = text[:-1].rstrip()
                i += 1
                if i >= len(lines):
                    raise PragmaSyntaxError(
                        "pragma continuation at end of file", line=start + 1
                    )
                text += " " + lines[i].strip()
            body = text[len("#pragma") :].strip()
            if body.split(None, 1)[0:1] == [prefix]:
                directives.append(
                    PragmaDirective(
                        text=" ".join(body.split()),
                        line=start + 1,
                        end_line=i + 1,
                        column=column,
                    )
                )
        i += 1
    return directives


def _skip_ws(text: str, i: int) -> int:
    while i < len(text) and text[i].isspace():
        i += 1
    return i


def extract_function(source: str, after_line: int) -> FunctionDef:
    """The first function definition at or after ``after_line`` (1-based).

    Scans comment-stripped source for ``<decl>(<params>) {<body>}``; the
    body is brace-matched.
    """
    clean = strip_comments(source)
    lines = clean.split("\n")
    # offset of the first character of after_line
    offset = sum(len(l) + 1 for l in lines[: after_line - 1])
    text = clean

    i = offset
    # find the opening parenthesis of the parameter list
    paren = text.find("(", i)
    while paren != -1:
        # candidate: walk back over the declarator to check it's plausible
        head = text[i:paren].strip()
        if head and not head.endswith((";", "}", "{")):
            break
        i = paren + 1
        paren = text.find("(", i)
    if paren == -1:
        raise PragmaSyntaxError(
            "no function definition found after task pragma", line=after_line
        )

    close = _match(text, paren, "(", ")")
    brace = text.find("{", close)
    semi = text.find(";", close)
    if brace == -1 or (semi != -1 and semi < brace):
        raise PragmaSyntaxError(
            "task pragma must precede a function *definition* (body required)",
            line=after_line,
        )
    end = _match(text, brace, "{", "}")

    head = " ".join(text[offset:paren].split())
    if not head:
        raise PragmaSyntaxError("cannot parse function header", line=after_line)
    name = head.split()[-1].lstrip("*&")
    return_type = head[: head.rfind(name.split("::")[-1])].strip() or "void"
    # strip any leading declarator noise from the return type
    params_text = text[paren + 1 : close].strip()
    params = tuple(_split_params(params_text))
    param_names = tuple(_param_name(p) for p in params)

    start_line = text.count("\n", 0, offset) + 1
    end_line = text.count("\n", 0, end) + 1
    return FunctionDef(
        return_type=return_type,
        name=name,
        params=params,
        param_names=param_names,
        body=source[brace : end + 1],
        start_line=start_line,
        end_line=end_line,
    )


def extract_call(source: str, after_line: int) -> CallStatement:
    """The first function-call statement at or after ``after_line``."""
    clean = strip_comments(source)
    lines = clean.split("\n")
    offset = sum(len(l) + 1 for l in lines[: after_line - 1])
    text = clean
    paren = text.find("(", offset)
    if paren == -1:
        raise PragmaSyntaxError(
            "no call statement found after execute pragma", line=after_line
        )
    close = _match(text, paren, "(", ")")
    head = text[offset:paren].strip()
    if not head:
        raise PragmaSyntaxError(
            "cannot parse call statement after execute pragma", line=after_line
        )
    name = head.split()[-1].lstrip("*&")
    args = tuple(a.strip() for a in _split_params(text[paren + 1 : close]))
    line = text.count("\n", 0, offset) + 1
    # column of the statement's first non-whitespace character on its line
    stmt_start = offset
    while stmt_start < paren and text[stmt_start].isspace():
        stmt_start += 1
    line_start = text.rfind("\n", 0, stmt_start) + 1
    column = stmt_start - line_start + 1
    stmt_end = text.find(";", close)
    stmt = text[offset : stmt_end + 1 if stmt_end != -1 else close + 1].strip()
    return CallStatement(
        name=name, arguments=args, text=stmt, line=line, column=column
    )


def parse_signature(decl: str) -> tuple[str, str, tuple[str, ...]]:
    """Parse ``"void f(double *A, int n)"`` → (return type, name, params)."""
    paren = decl.find("(")
    if paren == -1 or not decl.rstrip().endswith(")"):
        raise PragmaSyntaxError(f"cannot parse signature {decl!r}")
    close = _match(decl, paren, "(", ")")
    head = " ".join(decl[:paren].split())
    if not head:
        raise PragmaSyntaxError(f"signature {decl!r} lacks a name")
    name = head.split()[-1].lstrip("*&")
    return_type = head[: head.rfind(name)].strip() or "void"
    params = tuple(_split_params(decl[paren + 1 : close]))
    return return_type, name, params


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _match(text: str, open_idx: int, open_ch: str, close_ch: str) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    raise PragmaSyntaxError(
        f"unbalanced {open_ch}{close_ch} starting at offset {open_idx}"
    )


def _split_params(text: str) -> list[str]:
    """Split a parameter/argument list on top-level commas."""
    if not text.strip() or text.strip() == "void":
        return []
    parts = []
    depth = 0
    current = []
    for ch in text:
        if ch in "(<[":
            depth += 1
        elif ch in ")>]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current).strip())
    return [p for p in parts if p]


def _param_name(param: str) -> str:
    """Last identifier of a parameter declaration (``double *A`` → ``A``)."""
    cleaned = param.replace("*", " ").replace("&", " ")
    cleaned = cleaned.split("[")[0]
    tokens = cleaned.split()
    return tokens[-1] if tokens else param
