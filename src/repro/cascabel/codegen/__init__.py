"""Cascabel code-generation backends."""

from repro.cascabel.codegen.base import (
    Backend,
    GeneratedOutput,
    OutputFile,
    replace_call,
    strip_pragmas,
)
from repro.cascabel.codegen.base import transform_source
from repro.cascabel.codegen.cuda import CudaBackend
from repro.cascabel.codegen.opencl_backend import OpenCLBackend
from repro.cascabel.codegen.openmp import OpenMPBackend
from repro.cascabel.codegen.sequential import SequentialBackend
from repro.cascabel.codegen.starpu import StarPUBackend

__all__ = [
    "Backend",
    "GeneratedOutput",
    "OutputFile",
    "strip_pragmas",
    "replace_call",
    "transform_source",
    "SequentialBackend",
    "StarPUBackend",
    "CudaBackend",
    "OpenCLBackend",
    "OpenMPBackend",
    "select_backend",
]


def select_backend(platform) -> Backend:
    """Pick the backend the PDL descriptor asks for.

    The Master's ``RUNTIME`` property decides: ``starpu`` → StarPU backend;
    ``none``/absent with gpu Workers → plain CUDA; ``opencl`` → OpenCL;
    anything else (including Cell's ``cellsdk``) falls back to StarPU-style
    generation when workers exist, else sequential.
    """
    runtime = None
    if platform.masters:
        runtime = platform.masters[0].descriptor.get_str("RUNTIME")
    has_workers = any(pu.kind == "Worker" for pu in platform.walk())
    architectures = platform.architectures()

    if runtime == "starpu":
        return StarPUBackend()
    if runtime == "opencl":
        return OpenCLBackend()
    if runtime == "openmp":
        return OpenMPBackend()
    if runtime in (None, "none"):
        if "gpu" in architectures:
            return CudaBackend()
        return SequentialBackend() if not has_workers else StarPUBackend()
    # cellsdk, mpi, ... — task-runtime shaped
    return StarPUBackend() if has_workers else SequentialBackend()
