"""OpenMP-tasks backend.

The paper notes "Integration into existing programming models (e.g.,
OpenMP-Tasks) seems also feasible."  This backend demonstrates it: the
annotated task program lowers to OpenMP 4.0 task constructs, with the
pragma access modes translated to ``depend`` clauses (read → ``in``,
write → ``out``, readwrite → ``inout``) so the OpenMP runtime infers the
same dependency graph our runtime does.  Targets homogeneous CPU
platforms (the Master's cores); accelerator variants are pruned.
"""

from __future__ import annotations

from repro.model.platform import Platform
from repro.cascabel.codegen.base import (
    Backend,
    GeneratedOutput,
    OutputFile,
    transform_source,
)
from repro.cascabel.mapping import ExecutionMapping, MappingReport
from repro.cascabel.program import AnnotatedProgram
from repro.cascabel.selection import SelectionReport

__all__ = ["OpenMPBackend"]

_DEPEND = {"r": "in", "w": "out", "rw": "inout"}


class OpenMPBackend(Backend):
    name = "openmp"
    runtime_library = "gomp"

    def __init__(self, *, parts_per_lane: int = 4):
        self.parts_per_lane = parts_per_lane

    def generate(
        self,
        program: AnnotatedProgram,
        selection: SelectionReport,
        mapping: MappingReport,
        platform: Platform,
    ) -> GeneratedOutput:
        chunks = [
            self.banner(
                self.name,
                platform,
                extra=f"threads: {self._cpu_lanes(platform)}"
                " (from the PDL worker quantities)",
            ),
            "#include <omp.h>\n#include <stdlib.h>\n#include <stdio.h>",
        ]

        for interface in selection.selected:
            fallback = selection.fallback(interface)
            if fallback.source is not None:
                fn = fallback.source.function
                chunks.append(
                    f"/* sequential task body ({fallback.name}) */\n"
                    f"static {fn.return_type} {fn.name}"
                    f"({', '.join(fn.params)})\n{fn.body.strip()}"
                )

        replacements = []
        for index, exec_mapping in enumerate(mapping.mappings):
            glue = f"cascabel_omp_execute_{exec_mapping.interface}_{index}"
            chunks.append(
                self._glue(glue, exec_mapping, selection, platform)
            )
            call = exec_mapping.execution.call
            replacements.append((call, f"{glue}({', '.join(call.arguments)});"))

        transformed = transform_source(program.source, replacements)
        chunks.append("/* ---- transformed input program ---- */")
        chunks.append(transformed.strip())
        return GeneratedOutput(
            backend=self.name,
            platform_name=platform.name,
            files=[
                OutputFile(
                    name="main_omp.c",
                    language="c",
                    content="\n\n".join(chunks) + "\n",
                )
            ],
        )

    @staticmethod
    def _cpu_lanes(platform: Platform) -> int:
        return sum(
            pu.quantity
            for pu in platform.walk()
            if pu.kind == "Worker" and pu.architecture in ("x86", "x86_64")
        ) or 1

    def _glue(
        self,
        glue: str,
        exec_mapping: ExecutionMapping,
        selection: SelectionReport,
        platform: Platform,
    ) -> str:
        interface = exec_mapping.interface
        fallback = selection.fallback(interface)
        params = (
            fallback.source.pragma.parameters if fallback.source is not None else ()
        )
        fn_name = fallback.source.function.name if fallback.source else interface
        lanes = self._cpu_lanes(platform)
        nparts = max(1, lanes * self.parts_per_lane)
        size = "N"
        for d in exec_mapping.execution.pragma.distributions:
            if d.size:
                size = d.size
                break

        sig = ", ".join(f"double *{p.name}" for p in params)
        depend_clauses = " ".join(
            f"depend({_DEPEND[p.mode.value]}:"
            f" {p.name}[lo:chunk])"
            for p in params
        )
        call_args = ", ".join(f"{p.name} + lo" for p in params)
        return "\n".join(
            [
                f"/* OpenMP-tasks lowering of execute site line"
                f" {exec_mapping.execution.call.line}"
                f" ({nparts} parts over {lanes} threads) */",
                f"static void {glue}({sig})",
                "{",
                f"    const size_t n = (size_t){size};",
                f"    const size_t nparts = {nparts};",
                "    #pragma omp parallel",
                "    #pragma omp single",
                "    {",
                "        for (size_t part = 0; part < nparts; part++) {",
                "            size_t lo = part * n / nparts;",
                "            size_t chunk = (part + 1) * n / nparts - lo;",
                f"            #pragma omp task {depend_clauses}",
                f"            {fn_name}_part({call_args}, chunk);",
                "        }",
                "        #pragma omp taskwait",
                "    }",
                "}",
            ]
        )
