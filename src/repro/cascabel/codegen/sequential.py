"""Sequential fallback backend.

Emits a plain C translation unit that runs entirely on a Master PU: all
cascabel pragmas removed, only fallback (x86-class) task variants kept,
call sites untouched.  This is the paper's guarantee that "the application
can always be compiled for a Master PU in case no other implementations
are available for the target platform."
"""

from __future__ import annotations

from repro.model.platform import Platform
from repro.cascabel.codegen.base import (
    Backend,
    GeneratedOutput,
    OutputFile,
    strip_pragmas,
)
from repro.cascabel.mapping import MappingReport
from repro.cascabel.program import AnnotatedProgram
from repro.cascabel.selection import SelectionReport

__all__ = ["SequentialBackend"]


class SequentialBackend(Backend):
    name = "sequential"
    runtime_library = None

    def generate(
        self,
        program: AnnotatedProgram,
        selection: SelectionReport,
        mapping: MappingReport,
        platform: Platform,
    ) -> GeneratedOutput:
        fallback_names = {
            selection.fallback(interface).name for interface in selection.selected
        }
        body = strip_pragmas(program.source)
        # annotate which variants survived (the others are compiled out of
        # this target's translation unit by the selection step)
        surviving = ", ".join(sorted(fallback_names)) or "(none)"
        header = self.banner(
            self.name, platform, extra=f"fallback variants kept: {surviving}"
        )
        content = f"{header}\n\n{body.strip()}\n"
        return GeneratedOutput(
            backend=self.name,
            platform_name=platform.name,
            files=[OutputFile(name="main_seq.c", language="c", content=content)],
        )
