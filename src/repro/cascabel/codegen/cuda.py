"""Plain CUDA backend (host-device, no runtime system).

For platforms whose Master runs no task runtime (``RUNTIME`` property
absent or ``none``) but that do have gpu Workers, Cascabel can emit a
direct CUDA host program: explicit ``cudaMemcpy`` staging derived from the
PDL interconnects, kernel/CUBLAS invocation, copy-back.  Demonstrates the
paper's point that the *same* annotated program retargets across execution
models, not just across machine sizes.
"""

from __future__ import annotations

from repro.model.platform import Platform
from repro.query.paths import InterconnectGraph
from repro.cascabel.codegen.base import (
    Backend,
    GeneratedOutput,
    OutputFile,
    transform_source,
)
from repro.cascabel.mapping import MappingReport
from repro.cascabel.program import AnnotatedProgram
from repro.cascabel.selection import SelectionReport

__all__ = ["CudaBackend"]


class CudaBackend(Backend):
    name = "cuda"
    runtime_library = "cudart"

    def generate(
        self,
        program: AnnotatedProgram,
        selection: SelectionReport,
        mapping: MappingReport,
        platform: Platform,
    ) -> GeneratedOutput:
        graph = InterconnectGraph(platform, include_control_edges=True)
        gpu_ids = [
            pu.id
            for pu in platform.walk()
            if pu.kind == "Worker" and pu.architecture == "gpu"
        ]
        link_doc = []
        host = platform.masters[0].id
        for gpu in gpu_ids:
            route = graph.shortest(host, gpu, weight="hops")
            kinds = "+".join(l.type or "?" for l in route.links)
            link_doc.append(f"{host}->{gpu} via {kinds}")

        chunks = [
            self.banner(
                self.name,
                platform,
                extra=f"data paths: {'; '.join(link_doc) or 'n/a'}",
            ),
            "#include <cuda_runtime.h>\n#include <cublas.h>\n#include <stdio.h>",
        ]

        replacements = []
        for index, exec_mapping in enumerate(mapping.mappings):
            interface = exec_mapping.interface
            glue = f"cascabel_cuda_execute_{interface}_{index}"
            fallback = selection.fallback(interface)
            params = (
                fallback.source.pragma.parameters if fallback.source is not None else ()
            )
            sig = ", ".join(f"double *{p.name}" for p in params)
            size = "N"
            for d in exec_mapping.execution.pragma.distributions:
                if d.size:
                    size = d.size
                    break
            body = [
                f"static void {glue}({sig})",
                "{",
                f"    size_t bytes = (size_t){size} * {size} * sizeof(double);",
            ]
            for p in params:
                body.append(f"    double *d_{p.name};")
                body.append(f"    cudaMalloc((void**)&d_{p.name}, bytes);")
                if p.mode.reads:
                    body.append(
                        f"    cudaMemcpy(d_{p.name}, {p.name}, bytes,"
                        " cudaMemcpyHostToDevice);"
                    )
            if "gemm" in interface.lower():
                names = [p.name for p in params]
                body.append(
                    f"    cublasDgemm('n', 'n', {size}, {size}, {size}, 1.0,"
                    f" d_{names[1]}, {size}, d_{names[2]}, {size},"
                    f" 1.0, d_{names[0]}, {size});"
                )
            else:
                args = ", ".join(f"d_{p.name}" for p in params)
                body.append(
                    f"    {interface}_device_kernel<<<128, 256>>>({args});"
                )
            body.append("    cudaDeviceSynchronize();")
            for p in params:
                if p.mode.writes:
                    body.append(
                        f"    cudaMemcpy({p.name}, d_{p.name}, bytes,"
                        " cudaMemcpyDeviceToHost);"
                    )
                body.append(f"    cudaFree(d_{p.name});")
            body.append("}")
            chunks.append("\n".join(body))

            call = exec_mapping.execution.call
            replacements.append((call, f"{glue}({', '.join(call.arguments)});"))

        transformed = transform_source(program.source, replacements)
        chunks.append("/* ---- transformed input program ---- */")
        chunks.append(transformed.strip())
        return GeneratedOutput(
            backend=self.name,
            platform_name=platform.name,
            files=[
                OutputFile(
                    name="main_cuda.cu",
                    language="cuda",
                    content="\n\n".join(chunks) + "\n",
                )
            ],
        )
