"""OpenCL backend.

Emits a host program plus a ``.cl`` kernel file for platforms addressed
through the OpenCL host-device model.  Device selection constants are
taken from the PDL's ``ocl:`` properties (Listing 2) — the generated host
code pins the devices the descriptor names instead of enumerating blindly,
which is the "explicit" in explicit platform descriptions.
"""

from __future__ import annotations

from repro.model.platform import Platform
from repro.cascabel.codegen.base import (
    Backend,
    GeneratedOutput,
    OutputFile,
    transform_source,
)
from repro.cascabel.mapping import MappingReport
from repro.cascabel.program import AnnotatedProgram
from repro.cascabel.selection import SelectionReport

__all__ = ["OpenCLBackend"]


class OpenCLBackend(Backend):
    name = "opencl"
    runtime_library = "OpenCL"

    def generate(
        self,
        program: AnnotatedProgram,
        selection: SelectionReport,
        mapping: MappingReport,
        platform: Platform,
    ) -> GeneratedOutput:
        device_names = []
        for pu in platform.walk():
            prop = pu.descriptor.find("DEVICE_NAME")
            if prop is not None:
                device_names.append(prop.value.as_str())

        host_chunks = [
            self.banner(
                self.name,
                platform,
                extra=f"devices from descriptor: {device_names or ['(generic)']}",
            ),
            "#include <CL/cl.h>\n#include <stdio.h>\n#include <string.h>",
            self._device_table(device_names),
        ]
        kernel_chunks = [f"/* kernels for platform {platform.name} */"]

        replacements = []
        for index, exec_mapping in enumerate(mapping.mappings):
            interface = exec_mapping.interface
            fallback = selection.fallback(interface)
            params = (
                fallback.source.pragma.parameters if fallback.source is not None else ()
            )
            kernel_chunks.append(self._kernel(interface, params))
            glue = f"cascabel_ocl_execute_{interface}_{index}"
            host_chunks.append(self._glue(glue, interface, params, exec_mapping))
            call = exec_mapping.execution.call
            replacements.append((call, f"{glue}({', '.join(call.arguments)});"))

        transformed = transform_source(program.source, replacements)
        host_chunks.append("/* ---- transformed input program ---- */")
        host_chunks.append(transformed.strip())
        return GeneratedOutput(
            backend=self.name,
            platform_name=platform.name,
            files=[
                OutputFile(
                    name="main_opencl.c",
                    language="c",
                    content="\n\n".join(host_chunks) + "\n",
                ),
                OutputFile(
                    name="kernels.cl",
                    language="opencl-c",
                    content="\n\n".join(kernel_chunks) + "\n",
                ),
            ],
        )

    @staticmethod
    def _device_table(device_names: list[str]) -> str:
        entries = ",\n".join(f'    "{name}"' for name in device_names) or '    ""'
        return (
            "/* devices pinned by the PDL descriptor (ocl:DEVICE_NAME) */\n"
            "static const char *cascabel_devices[] = {\n"
            f"{entries}\n"
            "};\n"
            "static const unsigned cascabel_ndevices ="
            " sizeof(cascabel_devices) / sizeof(cascabel_devices[0]);"
        )

    @staticmethod
    def _kernel(interface: str, params) -> str:
        args = ", ".join(f"__global double *{p.name}" for p in params)
        if "gemm" in interface.lower() and len(params) == 3:
            c, a, b = (p.name for p in params)
            return (
                f"__kernel void {interface}_kernel({args}, const unsigned n)\n"
                "{\n"
                "    unsigned i = get_global_id(0);\n"
                "    unsigned j = get_global_id(1);\n"
                "    if (i >= n || j >= n) return;\n"
                "    double acc = 0.0;\n"
                "    for (unsigned k = 0; k < n; k++)\n"
                f"        acc += {a}[i * n + k] * {b}[k * n + j];\n"
                f"    {c}[i * n + j] += acc;\n"
                "}"
            )
        updates = "\n".join(
            f"    {p.name}[gid] = {p.name}[gid];" for p in params if p.mode.writes
        )
        reads = " + ".join(p.name + "[gid]" for p in params if p.mode.reads) or "0.0"
        first_written = next((p.name for p in params if p.mode.writes), None)
        body = (
            f"    {first_written}[gid] = {reads};" if first_written else updates
        )
        return (
            f"__kernel void {interface}_kernel({args}, const unsigned n)\n"
            "{\n"
            "    unsigned gid = get_global_id(0);\n"
            "    if (gid >= n) return;\n"
            f"{body}\n"
            "}"
        )

    @staticmethod
    def _glue(glue: str, interface: str, params, exec_mapping) -> str:
        sig = ", ".join(f"double *{p.name}" for p in params)
        size = "N"
        for d in exec_mapping.execution.pragma.distributions:
            if d.size:
                size = d.size
                break
        lines = [
            f"static void {glue}({sig})",
            "{",
            "    cl_context ctx; cl_command_queue queue; cl_kernel kernel;",
            "    cascabel_ocl_setup(&ctx, &queue, &kernel,"
            f" \"{interface}_kernel\");",
            f"    size_t bytes = (size_t){size} * {size} * sizeof(double);",
        ]
        for i, p in enumerate(params):
            flags = "CL_MEM_READ_WRITE" if p.mode.writes else "CL_MEM_READ_ONLY"
            copy = " | CL_MEM_COPY_HOST_PTR" if p.mode.reads else ""
            lines.append(
                f"    cl_mem d_{p.name} = clCreateBuffer(ctx, {flags}{copy},"
                f" bytes, {p.name if p.mode.reads else 'NULL'}, NULL);"
            )
            lines.append(
                f"    clSetKernelArg(kernel, {i}, sizeof(cl_mem), &d_{p.name});"
            )
        lines.extend(
            [
                f"    unsigned n = {size};",
                f"    clSetKernelArg(kernel, {len(params)},"
                " sizeof(unsigned), &n);",
                "    size_t global[2] = { n, n };",
                "    clEnqueueNDRangeKernel(queue, kernel, 2, NULL, global,"
                " NULL, 0, NULL, NULL);",
            ]
        )
        for p in params:
            if p.mode.writes:
                lines.append(
                    f"    clEnqueueReadBuffer(queue, d_{p.name}, CL_TRUE, 0,"
                    f" bytes, {p.name}, 0, NULL, NULL);"
                )
            lines.append(f"    clReleaseMemObject(d_{p.name});")
        lines.append("}")
        return "\n".join(lines)
