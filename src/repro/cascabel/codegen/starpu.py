"""StarPU backend (the paper's evaluation target, §IV-D).

Generates a StarPU C program from the annotated input: one codelet per
task interface whose per-architecture function table is filled from the
*selected* variants, data registration/partitioning derived from the
``execute`` distribution specifiers, and a task-submission loop replacing
each annotated call site.  Swapping the PDL descriptor changes the
generated worker configuration without touching the input program —
exactly the Figure-5 methodology.
"""

from __future__ import annotations


from repro.model.platform import Platform
from repro.cascabel.codegen.base import (
    Backend,
    GeneratedOutput,
    OutputFile,
    transform_source,
)
from repro.cascabel.mapping import ExecutionMapping, MappingReport
from repro.cascabel.program import AnnotatedProgram, TaskDefinition
from repro.cascabel.selection import SelectionReport

__all__ = ["StarPUBackend"]

_MODE_MACRO = {
    "r": "STARPU_R",
    "w": "STARPU_W",
    "rw": "STARPU_RW",
}


class StarPUBackend(Backend):
    name = "starpu"
    runtime_library = "starpu"

    def __init__(self, *, parts_per_lane: int = 4):
        #: how many data parts to create per available worker lane
        #: (over-decomposition factor; StarPU's examples use 2–8)
        self.parts_per_lane = parts_per_lane

    # ------------------------------------------------------------------
    def generate(
        self,
        program: AnnotatedProgram,
        selection: SelectionReport,
        mapping: MappingReport,
        platform: Platform,
    ) -> GeneratedOutput:
        chunks: list[str] = []
        uses_cuda = self._platform_has_gpu(platform)
        chunks.append(
            self.banner(
                self.name,
                platform,
                extra=f"workers: {self._worker_summary(platform)}",
            )
        )
        chunks.append(self._includes(uses_cuda))

        # variant function definitions that survive selection and run on CPUs
        for interface in selection.selected:
            fallback = selection.fallback(interface)
            if fallback.source is not None:
                chunks.append(self._cpu_variant_code(fallback.source))

        # codelets
        for interface in selection.selected:
            chunks.append(
                self._codelet(interface, selection, mapping, uses_cuda)
            )

        # glue functions, one per execute annotation
        glue_chunks = []
        replacements = []
        for index, exec_mapping in enumerate(mapping.mappings):
            glue_name = f"cascabel_execute_{exec_mapping.interface}_{index}"
            glue_chunks.append(
                self._glue_function(glue_name, exec_mapping, selection)
            )
            call = exec_mapping.execution.call
            replacements.append(
                (call, f"{glue_name}({', '.join(call.arguments)});")
            )
        transformed = transform_source(program.source, replacements)
        chunks.extend(glue_chunks)

        chunks.append("/* ---- transformed input program ---- */")
        chunks.append(transformed.strip())

        content = "\n\n".join(chunks) + "\n"
        files = [OutputFile(name="main_starpu.c", language="c", content=content)]
        if uses_cuda:
            files.append(self._cuda_stub_file(selection, platform))
        return GeneratedOutput(
            backend=self.name, platform_name=platform.name, files=files
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _platform_has_gpu(platform: Platform) -> bool:
        return "gpu" in platform.architectures()

    @staticmethod
    def _worker_summary(platform: Platform) -> str:
        counts: dict[str, int] = {}
        for pu in platform.walk():
            if pu.kind == "Worker" and pu.architecture:
                counts[pu.architecture] = counts.get(pu.architecture, 0) + pu.quantity
        return ", ".join(f"{n}x {a}" for a, n in sorted(counts.items()))

    @staticmethod
    def _includes(uses_cuda: bool) -> str:
        lines = ["#include <starpu.h>", "#include <stdlib.h>", "#include <stdio.h>"]
        if uses_cuda:
            lines.append("#include <starpu_cuda.h>")
        return "\n".join(lines)

    @staticmethod
    def _cpu_variant_code(definition: TaskDefinition) -> str:
        fn = definition.function
        header = f"/* task variant {definition.variant_name!r}"
        header += f" (targets: {', '.join(definition.targets)}) */"
        return (
            f"{header}\n"
            f"static {fn.return_type} {fn.name}"
            f"({', '.join(fn.params)})\n{fn.body.strip()}"
        )

    def _codelet(
        self,
        interface: str,
        selection: SelectionReport,
        mapping: MappingReport,
        uses_cuda: bool,
    ) -> str:
        fallback = selection.fallback(interface)
        params = (
            fallback.source.pragma.parameters if fallback.source is not None else ()
        )
        nbuffers = len(params)
        modes = ", ".join(_MODE_MACRO[p.mode.value] for p in params)

        lines = [f"/* codelet for task interface {interface!r} */"]
        # cpu wrapper unpacks starpu buffers and calls the fallback variant
        wrapper = f"{interface}_cpu_wrapper"
        unpack = []
        call_args = []
        for i, p in enumerate(params):
            unpack.append(
                f"    double *{p.name} = (double *)"
                f"STARPU_MATRIX_GET_PTR(buffers[{i}]);"
            )
            call_args.append(p.name)
        fn_name = fallback.source.function.name if fallback.source else interface
        lines.append(
            f"static void {wrapper}(void *buffers[], void *cl_arg)\n"
            "{\n" + "\n".join(unpack) + "\n"
            f"    {fn_name}({', '.join(call_args)});\n"
            "}"
        )

        accel = selection.accelerator_variants(interface)
        cuda_field = ""
        if uses_cuda and accel:
            cuda_wrapper = f"{interface}_cuda_wrapper"
            lines.append(
                f"extern void {cuda_wrapper}(void *buffers[], void *cl_arg);"
                f" /* from {accel[0].name} ({accel[0].provenance}) */"
            )
            cuda_field = (
                f"    .cuda_funcs = {{ {cuda_wrapper} }},\n"
                "    .cuda_flags = { STARPU_CUDA_ASYNC },\n"
            )
        lines.append(
            f"static struct starpu_codelet {interface}_cl = {{\n"
            f"    .cpu_funcs = {{ {wrapper} }},\n"
            f"{cuda_field}"
            f"    .nbuffers = {nbuffers},\n"
            f"    .modes = {{ {modes} }},\n"
            f"    .name = \"{interface}\"\n"
            "};"
        )
        return "\n".join(lines)

    def _glue_function(
        self,
        glue_name: str,
        exec_mapping: ExecutionMapping,
        selection: SelectionReport,
    ) -> str:
        execution = exec_mapping.execution
        interface = exec_mapping.interface
        fallback = selection.fallback(interface)
        params = (
            fallback.source.pragma.parameters if fallback.source is not None else ()
        )
        nparts = max(1, exec_mapping.total_lanes * self.parts_per_lane)
        dist_doc = ", ".join(
            f"{d.name}:{d.kind}" + (f":{d.size}" if d.size else "")
            for d in execution.pragma.distributions
        ) or "(none)"
        group = execution.execution_group or "(all workers)"

        sig_params = ", ".join(f"double *{p.name}" for p in params)
        lines = [
            f"/* execute site line {execution.call.line}:"
            f" group {group}, distributions {dist_doc},"
            f" {nparts} parts over {exec_mapping.total_lanes} lanes */",
            f"static void {glue_name}({sig_params})",
            "{",
            f"    const unsigned nparts = {nparts};",
        ]
        # registration + partitioning per distributed parameter
        handles = []
        for p in params:
            dist = execution.pragma.distribution(p.name)
            handle = f"{p.name}_handle"
            handles.append((p, handle, dist))
            size = (dist.size if dist and dist.size else "N")
            lines.append(
                f"    starpu_data_handle_t {handle};\n"
                f"    starpu_matrix_data_register(&{handle}, STARPU_MAIN_RAM,\n"
                f"        (uintptr_t){p.name}, {size}, {size}, {size},"
                f" sizeof(double));"
            )
            if dist is not None:
                filter_name = {
                    "BLOCK": "starpu_matrix_filter_block",
                    "CYCLIC": "starpu_vector_filter_list",  # cyclic via index list
                    "BLOCKCYCLIC": "starpu_matrix_filter_block",
                }[dist.kind]
                lines.append(
                    f"    struct starpu_data_filter {p.name}_f = {{\n"
                    f"        .filter_func = {filter_name},\n"
                    "        .nchildren = nparts\n"
                    "    };\n"
                    f"    starpu_data_partition({handle}, &{p.name}_f);"
                )
        # submission loop
        lines.append("    for (unsigned part = 0; part < nparts; part++) {")
        lines.append("        struct starpu_task *task = starpu_task_create();")
        lines.append(f"        task->cl = &{interface}_cl;")
        for i, (p, handle, dist) in enumerate(handles):
            sub = (
                f"starpu_data_get_sub_data({handle}, 1, part)"
                if dist is not None
                else handle
            )
            lines.append(f"        task->handles[{i}] = {sub};")
        lines.append("        STARPU_CHECK_RETURN_VALUE(")
        lines.append("            starpu_task_submit(task), \"starpu_task_submit\");")
        lines.append("    }")
        lines.append("    starpu_task_wait_for_all();")
        for p, handle, dist in handles:
            if dist is not None:
                lines.append(
                    f"    starpu_data_unpartition({handle}, STARPU_MAIN_RAM);"
                )
            lines.append(f"    starpu_data_unregister({handle});")
        lines.append("}")
        return "\n".join(lines)

    def _cuda_stub_file(
        self, selection: SelectionReport, platform: Platform
    ) -> OutputFile:
        lines = [
            self.banner("starpu/cuda", platform),
            "#include <starpu.h>",
            "#include <cublas.h>",
        ]
        for interface in selection.selected:
            accel = selection.accelerator_variants(interface)
            if not accel:
                continue
            variant = accel[0]
            lines.append(
                f"/* CUDA wrapper for {interface!r}"
                f" (variant {variant.name}, {variant.provenance}) */"
            )
            if "gemm" in interface.lower() or "gemm" in variant.name.lower():
                lines.append(
                    f"void {interface}_cuda_wrapper(void *buffers[], void *cl_arg)\n"
                    "{\n"
                    "    double *C = (double *)STARPU_MATRIX_GET_PTR(buffers[0]);\n"
                    "    double *A = (double *)STARPU_MATRIX_GET_PTR(buffers[1]);\n"
                    "    double *B = (double *)STARPU_MATRIX_GET_PTR(buffers[2]);\n"
                    "    unsigned n = STARPU_MATRIX_GET_NX(buffers[0]);\n"
                    "    cublasDgemm('n', 'n', n, n, n, 1.0, A, n, B, n, 1.0, C, n);\n"
                    "    cudaStreamSynchronize(starpu_cuda_get_local_stream());\n"
                    "}"
                )
            else:
                fallback = selection.fallback(interface)
                params = (
                    fallback.source.pragma.parameters
                    if fallback.source is not None
                    else ()
                )
                unpack = "\n".join(
                    f"    double *{p.name} = (double *)"
                    f"STARPU_MATRIX_GET_PTR(buffers[{i}]);"
                    for i, p in enumerate(params)
                )
                lines.append(
                    f"void {interface}_cuda_wrapper(void *buffers[], void *cl_arg)\n"
                    "{\n"
                    f"{unpack}\n"
                    f"    /* device kernel for variant {variant.name} */\n"
                    f"    {interface}_device_kernel<<<128, 256, 0,"
                    " starpu_cuda_get_local_stream()>>>("
                    + ", ".join(p.name for p in params)
                    + ");\n"
                    "    cudaStreamSynchronize(starpu_cuda_get_local_stream());\n"
                    "}"
                )
        return OutputFile(
            name="kernels_cuda.cu", language="cuda", content="\n\n".join(lines) + "\n"
        )
