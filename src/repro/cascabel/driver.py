"""End-to-end Cascabel driver (the pipeline of Fig. 4).

``translate`` runs the four steps on one annotated translation unit and
one target PDL descriptor:

1. task registration (frontend → repository),
2. static variant pre-selection against the descriptor,
3. output generation (backend chosen from the descriptor),
4. compile-plan derivation.

Retargeting = calling :func:`translate` again with a different descriptor;
the input program is untouched (the Figure-5 methodology and the
XTRA-RETARGET experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.model.platform import Platform
from repro.obs import spans as _obs
from repro.pdl.catalog import load_platform
from repro.cascabel.codegen import Backend, GeneratedOutput, select_backend
from repro.cascabel.compile_plan import CompilationPlan, derive_compile_plan
from repro.cascabel.frontend import parse_program
from repro.cascabel.mapping import MappingReport, map_tasks
from repro.cascabel.program import AnnotatedProgram
from repro.cascabel.repository import TaskRepository
from repro.cascabel.selection import SelectionReport, preselect

__all__ = ["TranslationResult", "translate", "register_builtin_variants"]


@dataclass
class TranslationResult:
    """Everything one translation produced."""

    program: AnnotatedProgram
    platform: Platform
    repository: TaskRepository
    selection: SelectionReport
    mapping: MappingReport
    output: GeneratedOutput
    plan: CompilationPlan
    #: lint reports (program + cross pack) when translate ran with lint
    lint_reports: list = field(default_factory=list)

    @property
    def backend_name(self) -> str:
        return self.output.backend

    def summary(self) -> str:
        lines = [
            f"translated {self.program.filename}"
            f" for platform {self.platform.name!r}"
            f" via backend {self.backend_name!r}",
            self.selection.summary(),
            self.mapping.summary(),
            "generated files: "
            + ", ".join(f"{f.name} ({f.line_count} lines)" for f in self.output.files),
            "build: " + " && ".join(self.plan.commands()),
        ]
        return "\n".join(lines)


def register_builtin_variants(
    repository: TaskRepository, program: AnnotatedProgram
) -> None:
    """Populate the repository with the expert-provided accelerator
    variants the paper's experiment uses (CUBLAS DGEMM from the task
    implementation repository, SPE variants for Cell targets).

    Variants are added for every interface the program defines, keyed by
    simple kernel-shape heuristics (a 3-matrix interface gets GEMM
    variants; everything else gets generic CUDA/SPE ports).
    """
    for interface in program.interfaces():
        definitions = program.definitions_for(interface)
        params = definitions[0].pragma.parameters
        is_gemm = "gemm" in interface.lower() or len(params) == 3
        suffix = "cublas" if is_gemm else "cuda"
        existing_targets = {t for d in definitions for t in d.targets}
        if "cuda" not in existing_targets and "opencl" not in existing_targets:
            repository.register_expert_variant(
                interface,
                f"{interface.lower()}_{suffix}",
                ("cuda", "opencl"),
                provenance="CUBLAS-3.2" if is_gemm else "expert CUDA port",
            )
        if "cellsdk" not in existing_targets:
            repository.register_expert_variant(
                interface,
                f"{interface.lower()}_spe",
                ("cellsdk", "spe"),
                provenance="Cell-SDK-3.1",
            )


def translate(
    source: Union[str, AnnotatedProgram],
    platform: Union[str, Platform],
    *,
    filename: str = "<string>",
    repository: Optional[TaskRepository] = None,
    backend: Optional[Backend] = None,
    with_builtin_variants: bool = True,
    executable: Optional[str] = None,
    lint: str = "warn",
) -> TranslationResult:
    """Translate one annotated program for one target platform.

    Parameters
    ----------
    source:
        Annotated C/C++ text or an already-parsed program.
    platform:
        Target :class:`Platform` or the name of a shipped descriptor.
    repository:
        Pre-populated task repository (e.g. with expert variants); a fresh
        one is created otherwise.
    backend:
        Force a specific backend; default picks from the descriptor.
    with_builtin_variants:
        Add the stock accelerator variants (CUBLAS/SPE) to the repository,
        as the paper's task-implementation repository provides.
    lint:
        ``"warn"`` (default) runs the Cascabel and cross-artifact rule
        packs and attaches their reports to
        :attr:`TranslationResult.lint_reports`; ``"strict"`` additionally
        raises :class:`~repro.errors.LintError` on error-severity
        findings; ``"off"`` skips linting.
    """
    if lint not in ("off", "warn", "strict"):
        raise ValueError(f"lint must be 'off', 'warn', or 'strict', got {lint!r}")
    tracer = _obs.get_tracer()
    if tracer is None:
        return _translate(
            source, platform,
            filename=filename, repository=repository, backend=backend,
            with_builtin_variants=with_builtin_variants,
            executable=executable, lint=lint,
        )
    with tracer.span("cascabel.translate", filename=filename, lint=lint) as span_:
        result = _translate(
            source, platform,
            filename=filename, repository=repository, backend=backend,
            with_builtin_variants=with_builtin_variants,
            executable=executable, lint=lint,
        )
        span_.set(
            platform=result.platform.name,
            backend=result.backend_name,
            interfaces=len(result.selection.selected),
        )
        return result


def _translate(
    source: Union[str, AnnotatedProgram],
    platform: Union[str, Platform],
    *,
    filename: str,
    repository: Optional[TaskRepository],
    backend: Optional[Backend],
    with_builtin_variants: bool,
    executable: Optional[str],
    lint: str,
) -> TranslationResult:
    """The four pipeline steps, each under its own (optional) span."""
    program = (
        source
        if isinstance(source, AnnotatedProgram)
        else parse_program(source, filename=filename)
    )
    target = platform if isinstance(platform, Platform) else load_platform(platform)

    lint_reports: list = []
    if lint != "off":
        with _obs.span("cascabel.lint", strict=lint == "strict"):
            lint_reports = _lint_translation(
                program, target, strict=lint == "strict"
            )

    repo = repository if repository is not None else TaskRepository()
    with _obs.span("cascabel.register"):
        repo.register_program(program)  # step 1: task registration
        if with_builtin_variants:
            register_builtin_variants(repo, program)

    selection = preselect(repo, program, target)  # step 2: pre-selection
    with _obs.span("cascabel.lower"):
        mapping = map_tasks(program, selection, target)

    chosen_backend = backend if backend is not None else select_backend(target)
    with _obs.span("cascabel.codegen", backend=chosen_backend.name):
        output = chosen_backend.generate(program, selection, mapping, target)  # step 3

    with _obs.span("cascabel.compile_plan"):
        plan = derive_compile_plan(output, target, executable=executable)  # step 4
    return TranslationResult(
        program=program,
        platform=target,
        repository=repo,
        selection=selection,
        mapping=mapping,
        output=output,
        plan=plan,
        lint_reports=lint_reports,
    )


def _lint_translation(
    program: AnnotatedProgram, target: Platform, *, strict: bool
) -> list:
    """Run the Cascabel + cross + interference packs over one
    translation's inputs.

    Lints the variants the program itself defines — the auto-injected
    builtin expert variants are speculative retargeting stock and would
    only add dead-variant noise on targets they don't fit.  The target
    platform itself is checked for interference hazards (IFR pack): a
    descriptor whose shared channels are undeclared cannot honestly
    back the transfer costs the mapping is planned against.
    """
    from repro.analysis.cascabel_rules import CascabelContext
    from repro.analysis.diagnostics import Severity
    from repro.analysis.engine import Linter

    linter = Linter()
    ctx = CascabelContext(
        source=program.source,
        filename=program.filename,
        program=program,
        syntax_findings=[],
    )
    reports = [
        linter.lint_program(ctx),
        linter.lint_cross(ctx, [(target.name, target)]),
        linter.lint_interference(target),
    ]
    if strict:
        errors = [d for r in reports for d in r.at_least(Severity.ERROR)]
        if errors:
            from repro.errors import LintError

            raise LintError(
                f"strict lint rejected {program.filename!r}:"
                f" {len(errors)} error-severity finding(s)",
                diagnostics=[d.to_payload() for d in errors],
            )
    return reports
