"""Parsing of ``#pragma cascabel`` annotations (paper §IV-A).

Grammar (from the paper)::

    #pragma cascabel task
        : targetplatformlist          e.g.  x86  |  opencl,cuda
        : taskidentifier              the task *interface* name
        : taskname                    unique implementation-variant name
        : parameterlist               (A: readwrite, B: read)

    #pragma cascabel execute taskidentifier
        : executiongroup              LogicGroupAttribute reference
        ( distributionslist )         (A:BLOCK:N, B:BLOCK:N)

Access modes: ``read`` | ``write`` | ``readwrite``.
Distributions: ``BLOCK`` | ``CYCLIC`` | ``BLOCKCYCLIC`` with an optional
size argument.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import PragmaSyntaxError
from repro.runtime.coherence import AccessMode
from repro.cascabel.lexer import PragmaDirective

__all__ = [
    "ParameterSpec",
    "DistributionSpec",
    "TaskPragma",
    "ExecutePragma",
    "parse_pragma",
    "KNOWN_TARGET_PLATFORMS",
    "DISTRIBUTION_KINDS",
]

#: target platform identifiers the toolchain understands (extensible)
KNOWN_TARGET_PLATFORMS = ("x86", "x86_64", "opencl", "cuda", "cellsdk", "spe")

DISTRIBUTION_KINDS = ("BLOCK", "CYCLIC", "BLOCKCYCLIC")


@dataclass(frozen=True)
class ParameterSpec:
    """One ``name: accessmode`` entry of a task parameterlist."""

    name: str
    mode: AccessMode


@dataclass(frozen=True)
class DistributionSpec:
    """One ``name:KIND[:size]`` entry of an execute distributionslist."""

    name: str
    kind: str  # BLOCK | CYCLIC | BLOCKCYCLIC
    size: Optional[str] = None  # symbolic or numeric chunk/extent argument


@dataclass(frozen=True)
class TaskPragma:
    """Parsed ``task`` annotation."""

    targets: tuple[str, ...]
    interface: str  # taskidentifier
    variant_name: str  # taskname
    parameters: tuple[ParameterSpec, ...]
    line: int
    column: int = 1  # 1-based column of the directive's '#'

    def parameter(self, name: str) -> ParameterSpec:
        for p in self.parameters:
            if p.name == name:
                return p
        raise PragmaSyntaxError(
            f"task {self.interface!r}: no parameter {name!r}", line=self.line
        )


@dataclass(frozen=True)
class ExecutePragma:
    """Parsed ``execute`` annotation."""

    interface: str  # taskidentifier
    execution_group: str
    distributions: tuple[DistributionSpec, ...]
    line: int
    column: int = 1  # 1-based column of the directive's '#'

    def distribution(self, name: str) -> Optional[DistributionSpec]:
        for d in self.distributions:
            if d.name == name:
                return d
        return None


_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def parse_pragma(directive: PragmaDirective):
    """Parse one cascabel directive into a Task- or ExecutePragma."""
    text = directive.text
    if not text.startswith("cascabel"):
        raise PragmaSyntaxError(
            f"not a cascabel pragma: {text!r}", line=directive.line
        )
    rest = text[len("cascabel") :].strip()
    column = getattr(directive, "column", 1)
    if rest.startswith("task"):
        return _parse_task(rest[len("task") :].strip(), directive.line, column)
    if rest.startswith("execute"):
        return _parse_execute(
            rest[len("execute") :].strip(), directive.line, column
        )
    raise PragmaSyntaxError(
        f"unknown cascabel pragma kind in {text!r}"
        " (expected 'task' or 'execute')",
        line=directive.line,
    )


def _parse_task(body: str, line: int, column: int = 1) -> TaskPragma:
    # body: ": targets : interface : name : (params)"
    sections = _split_colons(body, line)
    if len(sections) != 4:
        raise PragmaSyntaxError(
            f"task pragma needs 4 ':'-separated sections"
            f" (targets:interface:name:params), got {len(sections)}",
            line=line,
        )
    targets_text, interface, variant_name, params_text = sections

    targets = tuple(t.strip() for t in targets_text.split(",") if t.strip())
    if not targets:
        raise PragmaSyntaxError("empty targetplatformlist", line=line)
    for target in targets:
        if target not in KNOWN_TARGET_PLATFORMS:
            raise PragmaSyntaxError(
                f"unknown target platform {target!r};"
                f" known: {KNOWN_TARGET_PLATFORMS}",
                line=line,
            )
    _require_ident(interface, "taskidentifier", line)
    _require_ident(variant_name, "taskname", line)

    params_text = params_text.strip()
    if not (params_text.startswith("(") and params_text.endswith(")")):
        raise PragmaSyntaxError(
            f"parameterlist must be parenthesized, got {params_text!r}", line=line
        )
    params = []
    inner = params_text[1:-1].strip()
    if inner:
        for item in inner.split(","):
            if ":" not in item:
                raise PragmaSyntaxError(
                    f"parameter {item.strip()!r} lacks an access mode", line=line
                )
            name, mode_text = item.split(":", 1)
            name = name.strip()
            _require_ident(name, "parameter name", line)
            try:
                mode = AccessMode.parse(mode_text)
            except Exception as exc:
                raise PragmaSyntaxError(str(exc), line=line) from exc
            params.append(ParameterSpec(name, mode))
    return TaskPragma(
        targets=targets,
        interface=interface.strip(),
        variant_name=variant_name.strip(),
        parameters=tuple(params),
        line=line,
        column=column,
    )


def _parse_execute(body: str, line: int, column: int = 1) -> ExecutePragma:
    # body: "Iface : group (dists)"  — distributions attach to the last section
    dist_specs: tuple[DistributionSpec, ...] = ()
    paren = body.find("(")
    if paren != -1:
        close = body.rfind(")")
        if close < paren:
            raise PragmaSyntaxError("unbalanced distribution list", line=line)
        dist_text = body[paren + 1 : close].strip()
        body = (body[:paren] + body[close + 1 :]).strip()
        dist_specs = _parse_distributions(dist_text, line)

    sections = _split_colons(body, line)
    if len(sections) == 1:
        interface, group = sections[0], ""
    elif len(sections) == 2:
        interface, group = sections
    else:
        raise PragmaSyntaxError(
            "execute pragma is 'execute <interface> : <group> (dists)'", line=line
        )
    interface = interface.strip()
    group = group.strip()
    _require_ident(interface, "taskidentifier", line)
    if group:
        _require_ident(group, "executiongroup", line)
    return ExecutePragma(
        interface=interface,
        execution_group=group,
        distributions=dist_specs,
        line=line,
        column=column,
    )


def _parse_distributions(text: str, line: int) -> tuple[DistributionSpec, ...]:
    if not text:
        return ()
    out = []
    for item in text.split(","):
        parts = [p.strip() for p in item.split(":")]
        if len(parts) < 2:
            raise PragmaSyntaxError(
                f"distribution {item.strip()!r} must be name:KIND[:size]", line=line
            )
        name, kind = parts[0], parts[1].upper().replace("-", "")
        if kind not in DISTRIBUTION_KINDS:
            raise PragmaSyntaxError(
                f"unknown distribution {parts[1]!r}; known: {DISTRIBUTION_KINDS}",
                line=line,
            )
        size = parts[2] if len(parts) > 2 else None
        _require_ident(name, "distribution parameter", line)
        out.append(DistributionSpec(name=name, kind=kind, size=size))
    return tuple(out)


def _split_colons(text: str, line: int) -> list[str]:
    """Split on top-level colons (colons inside parentheses don't count)."""
    sections = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise PragmaSyntaxError("unbalanced parentheses", line=line)
        if ch == ":" and depth == 0:
            sections.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    sections.append("".join(current).strip())
    # a leading ':' produces an empty first section — drop it
    if sections and sections[0] == "":
        sections = sections[1:]
    return sections


def _require_ident(text: str, what: str, line: int) -> None:
    if not _IDENT.match(text.strip()):
        raise PragmaSyntaxError(f"invalid {what} {text!r}", line=line)
