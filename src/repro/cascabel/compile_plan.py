"""Compilation-plan derivation (Cascabel step 4, §IV-C).

"After all required source-files have been constructed, platform specific
compilers (e.g., nvcc, gcc-spu, xlc) produce one or more executables.  The
required compilation and linking plan is derived from information
available in the platform description file."

We derive, per generated file, the compiler invocation the target platform
needs (by language and by the architectures/runtime the PDL declares), and
one final link step.  The plan is data (inspectable and testable); nothing
is actually invoked — the real compilers do not exist in this environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CompilePlanError
from repro.model.platform import Platform
from repro.cascabel.codegen.base import GeneratedOutput

__all__ = ["CompileStep", "LinkStep", "CompilationPlan", "derive_compile_plan"]


@dataclass(frozen=True)
class CompileStep:
    """One compiler invocation producing an object file."""

    compiler: str
    source: str
    output: str
    flags: tuple[str, ...] = ()

    def command(self) -> str:
        return " ".join(
            [self.compiler, *self.flags, "-c", self.source, "-o", self.output]
        )


@dataclass(frozen=True)
class LinkStep:
    """The final link producing the executable."""

    linker: str
    objects: tuple[str, ...]
    output: str
    libraries: tuple[str, ...] = ()
    flags: tuple[str, ...] = ()

    def command(self) -> str:
        libs = tuple(f"-l{lib}" for lib in self.libraries)
        return " ".join(
            [self.linker, *self.flags, *self.objects, *libs, "-o", self.output]
        )


@dataclass
class CompilationPlan:
    """Ordered build recipe for one translated program."""

    platform_name: str
    steps: list[CompileStep] = field(default_factory=list)
    link: Optional[LinkStep] = None

    def commands(self) -> list[str]:
        out = [step.command() for step in self.steps]
        if self.link is not None:
            out.append(self.link.command())
        return out

    def as_makefile(self) -> str:
        """Render the plan as a small Makefile (what the CLI writes out)."""
        lines = [f"# build plan for platform {self.platform_name}", ""]
        objects = " ".join(step.output for step in self.steps)
        target = self.link.output if self.link else "a.out"
        lines.append(f"all: {target}")
        lines.append("")
        for step in self.steps:
            lines.append(f"{step.output}: {step.source}")
            lines.append(f"\t{step.command()}")
            lines.append("")
        if self.link:
            lines.append(f"{target}: {objects}")
            lines.append(f"\t{self.link.command()}")
        return "\n".join(lines) + "\n"


#: language → (compiler, default flags)
_LANGUAGE_COMPILERS = {
    "c": ("gcc", ("-O2", "-Wall")),
    "cuda": ("nvcc", ("-O2",)),
    "opencl-c": (None, ()),  # .cl files are built at runtime
}


def _cuda_arch_flag(platform: Platform) -> Optional[str]:
    """``-arch=sm_XX`` from the lowest COMPUTE_CAPABILITY on the platform
    (code must run on every GPU the descriptor declares)."""
    capabilities = []
    for pu in platform.walk():
        prop = pu.descriptor.find("COMPUTE_CAPABILITY")
        if prop is not None:
            try:
                capabilities.append(float(prop.value.as_str()))
            except Exception:
                continue
    if not capabilities:
        return None
    lowest = min(capabilities)
    return f"-arch=sm_{int(lowest * 10)}"


def derive_compile_plan(
    output: GeneratedOutput,
    platform: Platform,
    *,
    executable: Optional[str] = None,
) -> CompilationPlan:
    """Derive the build recipe for ``output`` on ``platform``."""
    plan = CompilationPlan(platform_name=platform.name)
    architectures = platform.architectures()
    runtime = (
        platform.masters[0].descriptor.get_str("RUNTIME") if platform.masters else None
    )

    objects = []
    for f in output.files:
        try:
            compiler, flags = _LANGUAGE_COMPILERS[f.language]
        except KeyError:
            raise CompilePlanError(
                f"no compiler known for language {f.language!r} ({f.name})"
            ) from None
        if compiler is None:
            continue  # runtime-compiled source (OpenCL)
        flags = list(flags)
        if f.language == "c":
            if "spe" in architectures and runtime == "cellsdk":
                compiler = "ppu-gcc"  # host side of a Cell build
            if output.backend == "starpu":
                flags.append("$(shell pkg-config --cflags starpu-1.0)")
        if f.language == "cuda":
            arch = _cuda_arch_flag(platform)
            if arch:
                flags.append(arch)
        obj = f.name.rsplit(".", 1)[0] + ".o"
        plan.steps.append(
            CompileStep(
                compiler=compiler, source=f.name, output=obj, flags=tuple(flags)
            )
        )
        objects.append(obj)

    if not plan.steps:
        raise CompilePlanError("generated output contains no compilable files")

    libraries: list[str] = []
    linker = plan.steps[0].compiler
    if output.backend == "starpu":
        libraries.append("starpu-1.0")
    if any(f.language == "cuda" for f in output.files):
        libraries.extend(["cublas", "cudart"])
        linker = "nvcc"
    if output.backend == "opencl":
        libraries.append("OpenCL")
    if "spe" in architectures and runtime == "cellsdk":
        libraries.append("spe2")

    plan.link = LinkStep(
        linker=linker,
        objects=tuple(objects),
        output=executable or f"{output.backend}_{platform.name}",
        libraries=tuple(libraries),
    )
    return plan
