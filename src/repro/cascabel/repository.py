"""Task repository (paper Fig. 4: "repository for managing task
implementation variants tailored for different heterogeneous platforms").

The repository stores task *interfaces* (name + signature contract) and
their implementation *variants*.  Variants come from two sources:

* annotated input programs (Cascabel step 1, *task registration*), and
* out-of-band expert contributions (Fig. 1's "expert programmer provides
  implementation variants for specific platforms") via
  :meth:`TaskRepository.register_expert_variant`.

Each variant records its target platform list and, optionally, an abstract
*platform pattern* requirement (a :class:`~repro.model.platform.Platform`)
that must match the concrete target PDL for the variant to be eligible —
the paper's "architectural constraints and requirements for highly
optimized code".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import RepositoryError
from repro.model.platform import Platform
from repro.cascabel.program import AnnotatedProgram, TaskDefinition

__all__ = ["TaskInterface", "TaskVariant", "TaskRepository"]


@dataclass(frozen=True)
class TaskInterface:
    """Functional contract shared by all variants of a task."""

    name: str
    return_type: str
    param_names: tuple[str, ...]

    @property
    def arity(self) -> int:
        return len(self.param_names)


@dataclass
class TaskVariant:
    """One implementation variant of a task interface."""

    interface: str
    name: str  # unique taskname
    targets: tuple[str, ...]  # target platform list (x86, cuda, ...)
    source: Optional[TaskDefinition] = None  # from an annotated program
    #: abstract PDL pattern this variant requires on the target platform
    required_pattern: Optional[Platform] = None
    #: True when usable as the mandatory sequential fallback on a Master
    is_fallback: bool = False
    provenance: str = ""

    def targets_include(self, target: str) -> bool:
        return target in self.targets


class TaskRepository:
    """Interface- and variant-indexed store."""

    def __init__(self):
        self._interfaces: dict[str, TaskInterface] = {}
        self._variants: dict[str, list[TaskVariant]] = {}
        self._names: set[str] = set()

    # -- registration -------------------------------------------------------
    def register_program(self, program: AnnotatedProgram) -> list[TaskVariant]:
        """Cascabel step 1: register every annotated task definition."""
        registered = []
        for definition in program.definitions:
            registered.append(self._register_definition(definition))
        return registered

    def _register_definition(self, definition: TaskDefinition) -> TaskVariant:
        interface = self._interfaces.get(definition.interface)
        contract = TaskInterface(
            name=definition.interface,
            return_type=definition.function.return_type,
            param_names=definition.function.param_names,
        )
        if interface is None:
            self._interfaces[definition.interface] = contract
        elif interface != contract:
            raise RepositoryError(
                f"interface {definition.interface!r}: signature mismatch —"
                f" repository has {interface.param_names},"
                f" new variant declares {contract.param_names}"
            )
        variant = TaskVariant(
            interface=definition.interface,
            name=definition.variant_name,
            targets=definition.targets,
            source=definition,
            is_fallback=any(t in ("x86", "x86_64") for t in definition.targets),
            provenance=f"annotated source ({definition.function.name})",
        )
        return self._add_variant(variant)

    def register_expert_variant(
        self,
        interface: str,
        name: str,
        targets: tuple[str, ...],
        *,
        required_pattern: Optional[Platform] = None,
        param_names: Optional[tuple[str, ...]] = None,
        return_type: str = "void",
        is_fallback: bool = False,
        provenance: str = "expert",
    ) -> TaskVariant:
        """Register a variant contributed outside the annotated program."""
        if interface not in self._interfaces:
            if param_names is None:
                raise RepositoryError(
                    f"interface {interface!r} unknown; provide param_names to"
                    " create it"
                )
            self._interfaces[interface] = TaskInterface(
                name=interface, return_type=return_type, param_names=param_names
            )
        variant = TaskVariant(
            interface=interface,
            name=name,
            targets=tuple(targets),
            required_pattern=required_pattern,
            is_fallback=is_fallback,
            provenance=provenance,
        )
        return self._add_variant(variant)

    def _add_variant(self, variant: TaskVariant) -> TaskVariant:
        if variant.name in self._names:
            raise RepositoryError(f"duplicate taskname {variant.name!r}")
        self._names.add(variant.name)
        self._variants.setdefault(variant.interface, []).append(variant)
        return variant

    # -- lookup ----------------------------------------------------------------
    def interface(self, name: str) -> TaskInterface:
        try:
            return self._interfaces[name]
        except KeyError:
            raise RepositoryError(
                f"unknown task interface {name!r};"
                f" registered: {sorted(self._interfaces)}"
            ) from None

    def interfaces(self) -> list[str]:
        return sorted(self._interfaces)

    def variants(self, interface: str) -> list[TaskVariant]:
        self.interface(interface)  # raise on unknown
        return list(self._variants.get(interface, []))

    def variant(self, name: str) -> TaskVariant:
        for variants in self._variants.values():
            for v in variants:
                if v.name == name:
                    return v
        raise RepositoryError(f"unknown taskname {name!r}")

    def fallbacks(self, interface: str) -> list[TaskVariant]:
        """Sequential fallback variants of an interface (must be nonempty
        for a translatable program, §IV-C.3)."""
        return [v for v in self.variants(interface) if v.is_fallback]

    def variant_count(self) -> int:
        return sum(len(v) for v in self._variants.values())

    def __repr__(self) -> str:
        return (
            f"TaskRepository(interfaces={len(self._interfaces)},"
            f" variants={self.variant_count()})"
        )
