"""Runtime lowering: a translated program → executable task graph.

The paper's generated StarPU programs run on real hardware; ours run on
:mod:`repro.runtime`.  Lowering interprets each ``execute`` annotation of
a :class:`~repro.cascabel.driver.TranslationResult` — its distributions,
execution group and mapped variants — and submits the corresponding task
graph to a :class:`~repro.runtime.engine.RuntimeEngine` built from the
same PDL descriptor.  This closes the loop: annotated serial source in,
simulated heterogeneous execution out, parametrized only by the
descriptor.

Supported shapes (covering the paper's two running examples):

* **GEMM-shaped** interfaces (3 matrix parameters, first read-write):
  tiled ``C[i,j] += A[i,k]·B[k,j]`` decomposition with a tile grid derived
  from the distribution and lane count;
* **map-shaped** interfaces (element-wise over equal-length vectors, e.g.
  the §IV-A ``vectoradd``): one task per BLOCK part.

Symbolic distribution sizes (``A:BLOCK:N``) are bound through the
``sizes`` argument (the runtime must know concrete extents; the generated
C binds them at execution time the same way).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import CascabelError, DistributionError
from repro.kernels.registry import KernelRegistry
from repro.runtime.engine import RuntimeEngine
from repro.runtime.trace import RunResult
from repro.cascabel.driver import TranslationResult
from repro.cascabel.mapping import ExecutionMapping

__all__ = ["LoweredExecution", "lower_to_engine", "run_translation"]

#: interface-name → runtime kernel name bindings beyond the heuristics
DEFAULT_KERNEL_BINDINGS = {
    "Ivecadd": "dvecadd",
    "Idgemm": "dgemm",
    "Igemm": "dgemm",
}


@dataclass
class LoweredExecution:
    """Bookkeeping of one lowered execute annotation."""

    interface: str
    kernel: str
    task_count: int
    parts: int


def _resolve_kernel(
    interface: str,
    registry: KernelRegistry,
    bindings: dict[str, str],
) -> str:
    if interface in bindings:
        return bindings[interface]
    # heuristics: strip the I prefix the paper uses for interface names
    candidates = [interface, interface.lower()]
    if interface.startswith("I"):
        candidates.extend([interface[1:], interface[1:].lower()])
        candidates.append("d" + interface[1:].lower())
    for name in candidates:
        if name in registry:
            return name
    raise CascabelError(
        f"cannot bind task interface {interface!r} to a runtime kernel;"
        f" pass kernel_bindings={{'{interface}': '<kernel>'}}"
        f" (registry has: {registry.names()})"
    )


def _is_gemm_shaped(mapping: ExecutionMapping, result: TranslationResult) -> bool:
    fallback = result.selection.fallback(mapping.interface)
    if fallback.source is None:
        return False
    params = fallback.source.pragma.parameters
    return (
        len(params) == 3
        and params[0].mode.writes
        and all(not p.mode.writes for p in params[1:])
    )


def lower_to_engine(
    result: TranslationResult,
    engine: RuntimeEngine,
    *,
    sizes: dict[str, int],
    block_size: Optional[int] = None,
    kernel_bindings: Optional[dict[str, str]] = None,
    materialize: bool = False,
) -> list[LoweredExecution]:
    """Submit the task graphs of all execute annotations onto ``engine``.

    ``sizes`` binds symbolic distribution extents (``{"N": 8192}``).
    ``block_size`` fixes the GEMM tile edge (default: extent / lanes,
    rounded to a divisor).
    """
    bindings = {**DEFAULT_KERNEL_BINDINGS, **(kernel_bindings or {})}
    registry = engine.registry
    lowered = []
    from repro.experiments.workloads import submit_tiled_dgemm

    for mapping in result.mapping.mappings:
        kernel = _resolve_kernel(mapping.interface, registry, bindings)
        extent = _extent_of(mapping, sizes)
        lanes = max(1, mapping.total_lanes)

        if _is_gemm_shaped(mapping, result):
            bs = block_size or _default_block(extent, lanes)
            handles = submit_tiled_dgemm(
                engine, extent, bs, materialize=materialize
            )
            lowered.append(
                LoweredExecution(
                    interface=mapping.interface,
                    kernel=kernel,
                    task_count=handles.task_count,
                    parts=handles.tiles_per_dim,
                )
            )
        else:
            nparts = min(extent, lanes * 4)
            _submit_map_shaped(
                engine,
                kernel,
                mapping,
                result,
                extent,
                nparts,
                materialize=materialize,
            )
            lowered.append(
                LoweredExecution(
                    interface=mapping.interface,
                    kernel=kernel,
                    task_count=nparts,
                    parts=nparts,
                )
            )
    return lowered


def _submit_map_shaped(
    engine: RuntimeEngine,
    kernel: str,
    mapping: ExecutionMapping,
    result: TranslationResult,
    extent: int,
    nparts: int,
    *,
    materialize: bool,
) -> None:
    """Element-wise lowering honoring the interface's parameters.

    One runtime handle per pragma parameter, BLOCK-partitioned; one task
    per part with the access modes the annotation declares (the paper's
    ``(A: readwrite, B: read)`` drives the runtime's hazard inference).
    """
    import numpy as np

    fallback = result.selection.fallback(mapping.interface)
    params = fallback.source.pragma.parameters if fallback.source else ()
    if not params:
        raise CascabelError(
            f"interface {mapping.interface!r}: cannot lower an execute"
            " without declared parameters"
        )
    handles = []
    for i, param in enumerate(params):
        if materialize:
            rng = np.random.default_rng(100 + i)
            handle = engine.register(
                rng.standard_normal(extent), name=param.name
            )
        else:
            handle = engine.register(shape=(extent,), name=param.name)
        handles.append(handle)
    parts = [h.partition_rows(nparts) for h in handles]
    for part_idx in range(nparts):
        accesses = [
            (parts[i][part_idx], param.mode)
            for i, param in enumerate(params)
        ]
        engine.submit(
            kernel,
            accesses,
            dims=(parts[0][part_idx].shape[0],),
            tag=f"{mapping.interface}[{part_idx}]",
        )


def run_translation(
    result: TranslationResult,
    *,
    sizes: dict[str, int],
    scheduler: str = "dmda",
    block_size: Optional[int] = None,
    kernel_bindings: Optional[dict[str, str]] = None,
    materialize: bool = False,
) -> RunResult:
    """Build an engine from the translation's own descriptor and run it."""
    engine = RuntimeEngine(result.platform, scheduler=scheduler)
    lower_to_engine(
        result,
        engine,
        sizes=sizes,
        block_size=block_size,
        kernel_bindings=kernel_bindings,
        materialize=materialize,
    )
    return engine.run()


def _extent_of(mapping: ExecutionMapping, sizes: dict[str, int]) -> int:
    """Concrete extent from the first distribution's (symbolic) size."""
    for dist in mapping.execution.pragma.distributions:
        if dist.size is None:
            continue
        if dist.size.isdigit():
            return int(dist.size)
        if dist.size in sizes:
            return sizes[dist.size]
        raise DistributionError(
            f"symbolic size {dist.size!r} of execute {mapping.interface!r}"
            f" is not bound; sizes has {sorted(sizes)}"
        )
    if "N" in sizes:
        return sizes["N"]
    raise DistributionError(
        f"execute of {mapping.interface!r} has no distribution size and no"
        " 'N' binding"
    )


def _default_block(extent: int, lanes: int) -> int:
    """Pick a tile edge giving ~4 tiles per lane per dimension sweep,
    clamped to [128, extent] and forced to divide the extent."""
    target_tiles = max(2, round(math.sqrt(lanes * 4)))
    candidate = max(128, extent // target_tiles)
    # largest divisor of extent that is <= candidate
    best = 1
    for d in range(1, int(math.sqrt(extent)) + 1):
        if extent % d == 0:
            for v in (d, extent // d):
                if v <= candidate and v > best:
                    best = v
    return best if best >= 1 else extent
