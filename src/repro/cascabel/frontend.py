"""Cascabel frontend: source text → :class:`AnnotatedProgram`.

Walks the cascabel pragmas of a translation unit; every ``task`` pragma
binds to the next function definition, every ``execute`` pragma to the
next call statement ("must be placed before the respective function
invocation", §IV-A).
"""

from __future__ import annotations


from repro.cascabel.lexer import extract_call, extract_function, scan_pragmas
from repro.cascabel.pragmas import ExecutePragma, TaskPragma, parse_pragma
from repro.cascabel.program import AnnotatedProgram, TaskDefinition, TaskExecution
from repro.obs import spans as _obs

__all__ = ["parse_program", "parse_program_file"]


def parse_program(
    source: str, *, filename: str = "<string>", validate: bool = True
) -> AnnotatedProgram:
    """Parse an annotated C/C++ translation unit."""
    tracer = _obs.get_tracer()
    if tracer is None:
        return _parse_program(source, filename=filename, validate=validate)
    with tracer.span(
        "cascabel.frontend", filename=filename, nbytes=len(source)
    ) as span_:
        program = _parse_program(source, filename=filename, validate=validate)
        span_.set(
            definitions=len(program.definitions),
            executions=len(program.executions),
        )
        return program


def _parse_program(
    source: str, *, filename: str, validate: bool
) -> AnnotatedProgram:
    program = AnnotatedProgram(source=source, filename=filename)
    with _obs.span("cascabel.lex"):
        directives = list(scan_pragmas(source))
    with _obs.span("cascabel.parse"):
        for directive in directives:
            pragma = parse_pragma(directive)
            if isinstance(pragma, TaskPragma):
                function = extract_function(source, directive.end_line + 1)
                program.definitions.append(
                    TaskDefinition(pragma=pragma, function=function)
                )
            elif isinstance(pragma, ExecutePragma):
                call = extract_call(source, directive.end_line + 1)
                program.executions.append(TaskExecution(pragma=pragma, call=call))
        if validate:
            program.validate()
    return program


def parse_program_file(path, **kwargs) -> AnnotatedProgram:
    """Parse an annotated translation unit from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    kwargs.setdefault("filename", str(path))
    return parse_program(source, **kwargs)
