"""Cascabel — the PDL-parametrized source-to-source compiler (paper §IV).

Pipeline: :func:`parse_program` (frontend) → :class:`TaskRepository`
(registration) → :func:`preselect` (static variant pre-selection) →
:func:`map_tasks` (execution-group mapping) → backends (output
generation) → :func:`derive_compile_plan`.  :func:`translate` runs the
whole pipeline; :func:`run_translation` additionally executes the result
on the simulated runtime.
"""

from repro.cascabel.cli import available_samples, sample_source
from repro.cascabel.codegen import (
    Backend,
    CudaBackend,
    GeneratedOutput,
    OpenCLBackend,
    OpenMPBackend,
    OutputFile,
    SequentialBackend,
    StarPUBackend,
    select_backend,
)
from repro.cascabel.compile_plan import (
    CompilationPlan,
    CompileStep,
    LinkStep,
    derive_compile_plan,
)
from repro.cascabel.distribution import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    Distribution,
    make_distribution,
)
from repro.cascabel.driver import (
    TranslationResult,
    register_builtin_variants,
    translate,
)
from repro.cascabel.frontend import parse_program, parse_program_file
from repro.cascabel.lowering import (
    LoweredExecution,
    lower_to_engine,
    run_translation,
)
from repro.cascabel.mapping import (
    ExecutionMapping,
    MappingReport,
    Placement,
    map_tasks,
)
from repro.cascabel.pragmas import (
    DistributionSpec,
    ExecutePragma,
    ParameterSpec,
    TaskPragma,
    parse_pragma,
)
from repro.cascabel.program import AnnotatedProgram, TaskDefinition, TaskExecution
from repro.cascabel.repository import TaskInterface, TaskRepository, TaskVariant
from repro.cascabel.selection import (
    SelectionReport,
    eligible_variants,
    preselect,
    target_available,
)

__all__ = [
    "translate",
    "TranslationResult",
    "run_translation",
    "lower_to_engine",
    "LoweredExecution",
    "parse_program",
    "parse_program_file",
    "AnnotatedProgram",
    "TaskDefinition",
    "TaskExecution",
    "TaskPragma",
    "ExecutePragma",
    "ParameterSpec",
    "DistributionSpec",
    "parse_pragma",
    "TaskRepository",
    "TaskVariant",
    "TaskInterface",
    "register_builtin_variants",
    "preselect",
    "SelectionReport",
    "eligible_variants",
    "target_available",
    "map_tasks",
    "MappingReport",
    "ExecutionMapping",
    "Placement",
    "Distribution",
    "BlockDistribution",
    "CyclicDistribution",
    "BlockCyclicDistribution",
    "make_distribution",
    "Backend",
    "SequentialBackend",
    "StarPUBackend",
    "CudaBackend",
    "OpenCLBackend",
    "OpenMPBackend",
    "select_backend",
    "GeneratedOutput",
    "OutputFile",
    "derive_compile_plan",
    "CompilationPlan",
    "CompileStep",
    "LinkStep",
    "available_samples",
    "sample_source",
]
