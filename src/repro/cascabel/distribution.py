"""Data-distribution index math (paper §IV-A: "block, cyclic, block-cyclic").

Distribution specifiers on ``execute`` pragmas tell the compiler and
runtime how to decompose data-parallel task operands.  This module owns
the index arithmetic; codegen and the runtime lowering consume it.

All three classic distributions are provided over a 1-D index space of
``extent`` elements across ``nparts`` parts:

* ``BLOCK`` — contiguous balanced ranges;
* ``CYCLIC`` — element ``i`` belongs to part ``i mod nparts``;
* ``BLOCKCYCLIC(b)`` — blocks of ``b`` elements dealt round-robin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import DistributionError
from repro.runtime.data import block_ranges

__all__ = [
    "Distribution",
    "BlockDistribution",
    "CyclicDistribution",
    "BlockCyclicDistribution",
    "make_distribution",
]


@dataclass(frozen=True)
class Distribution:
    """Base: a 1-D index distribution over ``nparts`` parts."""

    extent: int
    nparts: int

    def __post_init__(self):
        if self.extent <= 0:
            raise DistributionError(f"extent must be positive, got {self.extent}")
        if self.nparts <= 0:
            raise DistributionError(f"nparts must be positive, got {self.nparts}")
        if self.nparts > self.extent:
            raise DistributionError(
                f"cannot distribute {self.extent} elements over"
                f" {self.nparts} parts"
            )

    # -- interface -----------------------------------------------------------
    def owner(self, index: int) -> int:
        """Part owning global index ``index``."""
        raise NotImplementedError

    def indices(self, part: int) -> list[int]:
        """All global indices owned by ``part`` (ascending)."""
        raise NotImplementedError

    def part_size(self, part: int) -> int:
        return len(self.indices(part))

    def _check_part(self, part: int) -> None:
        if not 0 <= part < self.nparts:
            raise DistributionError(
                f"part {part} out of range [0, {self.nparts})"
            )

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.extent:
            raise DistributionError(
                f"index {index} out of range [0, {self.extent})"
            )

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def contiguous_runs(self, part: int) -> list[tuple[int, int]]:
        """Owned indices as maximal half-open ``(start, stop)`` runs."""
        indices = self.indices(part)
        runs: list[tuple[int, int]] = []
        for idx in indices:
            if runs and runs[-1][1] == idx:
                runs[-1] = (runs[-1][0], idx + 1)
            else:
                runs.append((idx, idx + 1))
        return runs


class BlockDistribution(Distribution):
    """Contiguous balanced blocks (first parts get the remainder)."""

    @property
    def kind(self) -> str:
        return "BLOCK"

    def _ranges(self) -> list[tuple[int, int]]:
        return block_ranges(self.extent, self.nparts)

    def owner(self, index: int) -> int:
        self._check_index(index)
        for part, (lo, hi) in enumerate(self._ranges()):
            if lo <= index < hi:
                return part
        raise AssertionError("unreachable")  # pragma: no cover

    def indices(self, part: int) -> list[int]:
        self._check_part(part)
        lo, hi = self._ranges()[part]
        return list(range(lo, hi))

    def range(self, part: int) -> tuple[int, int]:
        self._check_part(part)
        return self._ranges()[part]


class CyclicDistribution(Distribution):
    """Element ``i`` → part ``i mod nparts``."""

    @property
    def kind(self) -> str:
        return "CYCLIC"

    def owner(self, index: int) -> int:
        self._check_index(index)
        return index % self.nparts

    def indices(self, part: int) -> list[int]:
        self._check_part(part)
        return list(range(part, self.extent, self.nparts))


@dataclass(frozen=True)
class BlockCyclicDistribution(Distribution):
    """Blocks of ``block`` elements dealt round-robin over the parts."""

    block: int = 1

    def __post_init__(self):
        super().__post_init__()
        if self.block <= 0:
            raise DistributionError(f"block must be positive, got {self.block}")

    @property
    def kind(self) -> str:
        return "BLOCKCYCLIC"

    def owner(self, index: int) -> int:
        self._check_index(index)
        return (index // self.block) % self.nparts

    def indices(self, part: int) -> list[int]:
        self._check_part(part)
        out: list[int] = []
        nblocks = (self.extent + self.block - 1) // self.block
        for b in range(part, nblocks, self.nparts):
            lo = b * self.block
            hi = min(lo + self.block, self.extent)
            out.extend(range(lo, hi))
        return out


def make_distribution(
    kind: str,
    extent: int,
    nparts: int,
    *,
    block: Optional[int] = None,
) -> Distribution:
    """Factory from a pragma distribution kind string."""
    kind = kind.upper().replace("-", "")
    if kind == "BLOCK":
        return BlockDistribution(extent, nparts)
    if kind == "CYCLIC":
        return CyclicDistribution(extent, nparts)
    if kind == "BLOCKCYCLIC":
        return BlockCyclicDistribution(extent, nparts, block=block or 1)
    raise DistributionError(
        f"unknown distribution kind {kind!r}; use BLOCK|CYCLIC|BLOCKCYCLIC"
    )
