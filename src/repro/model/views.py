"""Co-existing logical platform views (paper §II).

"Multiple logic platform patterns can co-exist for a single target
system.  Our PDL supports the representation of different programming
model specific control-relationships for the same physical hardware."

A :class:`LogicalView` derives a *new* control hierarchy over the PUs of
one physical platform: e.g. the same dual-CPU+2-GPU box seen as

* a StarPU-style flat Master/Worker pool (every core and GPU a Worker), or
* an OpenCL-style host-device model (host Master, devices only), or
* an MPI+X hierarchy (one Hybrid per NUMA domain).

Views are honest PDL platforms — they validate, serialize and drive the
runtime like any other descriptor — whose PUs carry a ``PHYSICAL_ID``
property linking back to the underlying hardware entity, so tools can
correlate views.  A :class:`ViewRegistry` keeps the views of one physical
platform together.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.errors import ModelError
from repro.model.entities import Hybrid, Master, ProcessingUnit, Worker
from repro.model.platform import Platform
from repro.model.properties import Property

__all__ = ["LogicalView", "ViewRegistry", "PHYSICAL_ID_PROP"]

PHYSICAL_ID_PROP = "PHYSICAL_ID"

Selector = Union[str, Callable[[ProcessingUnit], bool]]


def _select(platform: Platform, selector: Selector) -> list[ProcessingUnit]:
    if callable(selector):
        return [pu for pu in platform.walk() if selector(pu)]
    from repro.query.selectors import select

    return select(platform, selector)


def _derived_pu(cls, physical: ProcessingUnit, view_id: str) -> ProcessingUnit:
    pu = cls(
        view_id,
        quantity=physical.quantity,
        name=physical.name,
    )
    for prop in physical.descriptor:
        pu.descriptor.add(prop.copy())
    pu.descriptor.add(
        Property(PHYSICAL_ID_PROP, physical.id, fixed=True)
    )
    for group in physical.groups:
        pu.add_group(group)
    return pu


class LogicalView:
    """Builder for one logical view over a physical platform."""

    def __init__(self, name: str, physical: Platform):
        self.name = name
        self.physical = physical
        self._platform = Platform(f"{physical.name}::{name}")
        self._current: Optional[ProcessingUnit] = None
        self._used_ids: set[str] = set()

    # -- construction ------------------------------------------------------
    def master(self, selector: Selector, *, id: Optional[str] = None) -> "LogicalView":
        """Promote exactly one physical PU to the view's Master."""
        matches = _select(self.physical, selector)
        if len(matches) != 1:
            raise ModelError(
                f"view {self.name!r}: master selector matched"
                f" {len(matches)} PUs, need exactly 1"
            )
        master = _derived_pu(Master, matches[0], id or matches[0].id)
        self._register(master)
        self._platform.add_master(master)
        self._current = master
        return self

    def hybrid(self, selector: Selector, *, id: Optional[str] = None) -> "LogicalView":
        """Add one physical PU as a Hybrid under the current scope."""
        self._require_scope("hybrid")
        matches = _select(self.physical, selector)
        if len(matches) != 1:
            raise ModelError(
                f"view {self.name!r}: hybrid selector matched"
                f" {len(matches)} PUs, need exactly 1"
            )
        hybrid = _derived_pu(Hybrid, matches[0], id or matches[0].id)
        self._register(hybrid)
        self._current.add_child(hybrid)
        self._current = hybrid
        return self

    def workers(self, selector: Selector) -> "LogicalView":
        """Add every matching physical PU as Workers of the current scope."""
        self._require_scope("workers")
        matches = _select(self.physical, selector)
        if not matches:
            raise ModelError(
                f"view {self.name!r}: worker selector matched nothing"
            )
        for physical in matches:
            if physical.id in self._used_ids:
                continue  # a PU appears at most once per view
            worker = _derived_pu(Worker, physical, physical.id)
            self._register(worker)
            self._current.add_child(worker)
        return self

    def end(self) -> "LogicalView":
        """Pop out of a Hybrid scope."""
        if self._current is None or self._current.parent is None:
            raise ModelError(f"view {self.name!r}: no inner scope to end")
        self._current = self._current.parent
        return self

    def _register(self, pu: ProcessingUnit) -> None:
        physical_id = pu.descriptor.get_str(PHYSICAL_ID_PROP)
        if physical_id in self._used_ids:
            raise ModelError(
                f"view {self.name!r}: physical PU {physical_id!r} used twice"
            )
        self._used_ids.add(physical_id)

    def _require_scope(self, what: str) -> None:
        if self._current is None:
            raise ModelError(
                f"view {self.name!r}: {what}() requires a master() first"
            )

    # -- result ------------------------------------------------------------
    def build(self, *, validate: bool = True) -> Platform:
        if validate:
            self._platform.validate()
        return self._platform

    def physical_of(self, view_pu_id: str) -> ProcessingUnit:
        """Resolve a view PU back to the physical entity it mirrors."""
        view_pu = self._platform.pu(view_pu_id)
        physical_id = view_pu.descriptor.get_str(PHYSICAL_ID_PROP)
        return self.physical.pu(physical_id)


class ViewRegistry:
    """The co-existing views of one physical platform."""

    def __init__(self, physical: Platform):
        self.physical = physical
        self._views: dict[str, LogicalView] = {}

    def define(self, name: str) -> LogicalView:
        if name in self._views:
            raise ModelError(f"view {name!r} already defined")
        view = LogicalView(name, self.physical)
        self._views[name] = view
        return view

    def view(self, name: str) -> LogicalView:
        try:
            return self._views[name]
        except KeyError:
            raise ModelError(
                f"unknown view {name!r}; defined: {sorted(self._views)}"
            ) from None

    def platform(self, name: str) -> Platform:
        return self.view(name).build(validate=False)

    def names(self) -> list[str]:
        return sorted(self._views)

    def views_containing(self, physical_id: str) -> list[str]:
        """Which views expose the given physical PU."""
        out = []
        for name, view in self._views.items():
            if physical_id in view._used_ids:
                out.append(name)
        return sorted(out)

    def __len__(self) -> int:
        return len(self._views)
