"""Fluent construction API for platform descriptions.

The XML parser covers documents; this builder covers programmatic
construction (tests, discovery generators, examples) without the verbosity
of wiring entities manually::

    platform = (
        PlatformBuilder("gpgpu-node")
        .master("cpu0", architecture="x86", cores=4)
            .memory("main", size="48 GB")
            .worker("gpu0", architecture="gpu", properties={"MODEL": "GTX480"})
            .worker("gpu1", architecture="gpu", properties={"MODEL": "GTX285"})
            .interconnect("cpu0", "gpu0", type="PCIe", bandwidth="5.7 GB/s")
            .interconnect("cpu0", "gpu1", type="PCIe", bandwidth="5.7 GB/s")
        .build()
    )

``master``/``hybrid`` push a new scope; ``end()`` pops back to the parent
scope; ``build()`` validates and returns the platform.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.errors import ModelError
from repro.model.entities import (
    Hybrid,
    Interconnect,
    Master,
    MemoryRegion,
    ProcessingUnit,
    Worker,
)
from repro.model.platform import Platform
from repro.model.properties import Property

__all__ = ["PlatformBuilder", "split_quantity_string"]


def split_quantity_string(text: str) -> tuple[float, Optional[str]]:
    """Split ``"48 GB"`` into ``(48.0, "GB")``; bare numbers get unit None."""
    parts = str(text).split()
    if len(parts) == 1:
        return float(parts[0]), None
    if len(parts) == 2:
        return float(parts[0]), parts[1]
    raise ModelError(f"cannot parse quantity string {text!r}")


class PlatformBuilder:
    """Stack-based fluent builder for :class:`~repro.model.platform.Platform`."""

    def __init__(self, name: str = "platform", *, schema_version: str = "1.0"):
        self._platform = Platform(name, schema_version=schema_version)
        self._stack: list[ProcessingUnit] = []

    # -- scope handling -------------------------------------------------------
    @property
    def current(self) -> Optional[ProcessingUnit]:
        return self._stack[-1] if self._stack else None

    def end(self) -> "PlatformBuilder":
        """Close the current Master/Hybrid scope."""
        if not self._stack:
            raise ModelError("end() without an open PU scope")
        self._stack.pop()
        return self

    # -- PU creation ------------------------------------------------------------
    def _apply_common(
        self,
        pu: ProcessingUnit,
        architecture: Optional[str],
        properties: Optional[Mapping[str, object]],
        groups: tuple[str, ...],
    ) -> None:
        if architecture is not None:
            pu.descriptor.add(Property("ARCHITECTURE", architecture))
        if properties:
            for key, value in properties.items():
                pu.descriptor.add(Property(key, value))
        for group in groups:
            pu.add_group(group)

    def master(
        self,
        id: Optional[str] = None,
        *,
        architecture: Optional[str] = None,
        quantity: int = 1,
        properties: Optional[Mapping[str, object]] = None,
        groups: tuple[str, ...] = (),
        name: Optional[str] = None,
    ) -> "PlatformBuilder":
        """Open a new top-level Master scope."""
        if self._stack:
            raise ModelError(
                "master() is only valid at top level; close open scopes with end()"
            )
        master = Master(id, quantity=quantity, name=name)
        self._apply_common(master, architecture, properties, groups)
        self._platform.add_master(master)
        self._stack.append(master)
        return self

    def hybrid(
        self,
        id: Optional[str] = None,
        *,
        architecture: Optional[str] = None,
        quantity: int = 1,
        properties: Optional[Mapping[str, object]] = None,
        groups: tuple[str, ...] = (),
        name: Optional[str] = None,
    ) -> "PlatformBuilder":
        """Open a Hybrid scope under the current PU."""
        if not self._stack:
            raise ModelError("hybrid() requires an enclosing Master/Hybrid scope")
        hybrid = Hybrid(id, quantity=quantity, name=name)
        self._apply_common(hybrid, architecture, properties, groups)
        self._stack[-1].add_child(hybrid)
        self._stack.append(hybrid)
        return self

    def worker(
        self,
        id: Optional[str] = None,
        *,
        architecture: Optional[str] = None,
        quantity: int = 1,
        properties: Optional[Mapping[str, object]] = None,
        groups: tuple[str, ...] = (),
        name: Optional[str] = None,
    ) -> "PlatformBuilder":
        """Add a leaf Worker to the current scope (does not push)."""
        if not self._stack:
            raise ModelError("worker() requires an enclosing Master/Hybrid scope")
        worker = Worker(id, quantity=quantity, name=name)
        self._apply_common(worker, architecture, properties, groups)
        self._stack[-1].add_child(worker)
        return self

    # -- attachments --------------------------------------------------------------
    def memory(
        self,
        id: Optional[str] = None,
        *,
        size: Optional[Union[str, int]] = None,
        properties: Optional[Mapping[str, object]] = None,
    ) -> "PlatformBuilder":
        """Attach a memory region to the current PU."""
        if not self._stack:
            raise ModelError("memory() requires an enclosing PU scope")
        region = MemoryRegion(id)
        if size is not None:
            magnitude, unit = (
                split_quantity_string(size) if isinstance(size, str) else (size, None)
            )
            prop = Property("SIZE", _format_number(magnitude))
            prop.value.unit = unit
            region.descriptor.add(prop)
        if properties:
            for key, value in properties.items():
                region.descriptor.add(Property(key, value))
        self._stack[-1].add_memory_region(region)
        return self

    def interconnect(
        self,
        from_pu: str,
        to_pu: str,
        *,
        type: str = "",
        scheme: str = "",
        bandwidth: Optional[str] = None,
        latency: Optional[str] = None,
        bidirectional: bool = True,
        id: Optional[str] = None,
        properties: Optional[Mapping[str, object]] = None,
    ) -> "PlatformBuilder":
        """Attach an interconnect to the current PU scope."""
        if not self._stack:
            raise ModelError("interconnect() requires an enclosing PU scope")
        ic = Interconnect(
            from_pu,
            to_pu,
            type=type,
            scheme=scheme,
            id=id,
            bidirectional=bidirectional,
        )
        if bandwidth is not None:
            magnitude, unit = split_quantity_string(bandwidth)
            prop = Property("BANDWIDTH", _format_number(magnitude))
            prop.value.unit = unit
            ic.descriptor.add(prop)
        if latency is not None:
            magnitude, unit = split_quantity_string(latency)
            prop = Property("LATENCY", _format_number(magnitude))
            prop.value.unit = unit
            ic.descriptor.add(prop)
        if properties:
            for key, value in properties.items():
                ic.descriptor.add(Property(key, value))
        self._stack[-1].add_interconnect(ic)
        return self

    def prop(self, name: str, value, *, fixed: bool = True) -> "PlatformBuilder":
        """Add a property to the current PU's descriptor."""
        if not self._stack:
            raise ModelError("prop() requires an enclosing PU scope")
        self._stack[-1].descriptor.add(Property(name, value, fixed=fixed))
        return self

    # -- finalization -----------------------------------------------------------
    def build(self, *, validate: bool = True) -> Platform:
        """Close all scopes and return the (optionally validated) platform."""
        self._stack.clear()
        if validate:
            self._platform.validate()
        return self._platform


def _format_number(value: float) -> str:
    """Render floats without a spurious ``.0`` so documents stay tidy."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
