"""LogicGroupAttribute handling (paper §III-B / §IV-A).

``LogicGroupAttribute`` defines group identifiers for subsets of PUs.
Cascabel's ``execute`` pragma references such a group via its
``executiongroup`` clause to say *where* a task is intended to run.  This
module provides a resolved view over the groups of a platform plus set
algebra used by the mapper.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional

from repro.errors import ModelError
from repro.model.entities import ProcessingUnit
from repro.model.platform import Platform

__all__ = ["GroupRegistry", "valid_group_name"]

_GROUP_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_\-]*$")


def valid_group_name(name: str) -> bool:
    """Whether ``name`` is a syntactically valid LogicGroupAttribute label."""
    return bool(_GROUP_RE.match(name))


class GroupRegistry:
    """Resolved group → members table for one platform.

    The registry snapshots membership at construction; call
    :meth:`refresh` after mutating the platform's groups.
    """

    def __init__(self, platform: Platform):
        self._platform = platform
        self._table: dict[str, list[ProcessingUnit]] = {}
        self.refresh()

    def refresh(self) -> None:
        self._table = {}
        for pu in self._platform.walk():
            for group in pu.groups:
                if not valid_group_name(group):
                    raise ModelError(f"invalid group name {group!r} on PU {pu.id!r}")
                self._table.setdefault(group, []).append(pu)

    # -- queries ---------------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._table)

    def members(self, group: str) -> list[ProcessingUnit]:
        try:
            return list(self._table[group])
        except KeyError:
            raise ModelError(
                f"unknown execution group {group!r};"
                f" defined groups: {self.names() or '(none)'}"
            ) from None

    def has(self, group: str) -> bool:
        return group in self._table

    def member_ids(self, group: str) -> list[str]:
        return [pu.id for pu in self.members(group)]

    def union(self, groups: Iterable[str]) -> list[ProcessingUnit]:
        """Members of any listed group, deduplicated, document order."""
        seen: dict[str, ProcessingUnit] = {}
        for group in groups:
            for pu in self.members(group):
                seen.setdefault(pu.id, pu)
        return list(seen.values())

    def intersection(self, groups: Iterable[str]) -> list[ProcessingUnit]:
        """PUs that are members of *all* listed groups."""
        groups = list(groups)
        if not groups:
            return []
        common: Optional[set[str]] = None
        for group in groups:
            ids = set(self.member_ids(group))
            common = ids if common is None else common & ids
        return [pu for pu in self.members(groups[0]) if pu.id in (common or set())]

    def groups_of(self, pu_id: str) -> list[str]:
        return sorted(g for g, pus in self._table.items() if any(p.id == pu_id for p in pus))

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, group: str) -> bool:
        return group in self._table

    def __repr__(self) -> str:
        return f"GroupRegistry({self.names()!r})"
