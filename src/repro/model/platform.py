"""The :class:`Platform` container — a complete PDL platform description.

A platform holds one or more top-level :class:`~repro.model.entities.Master`
PUs (the paper allows co-existing Masters), identity maps for PUs, memory
regions and interconnects, and document metadata (name, schema version).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import ModelError
from repro.model.entities import (
    Interconnect,
    Master,
    MemoryRegion,
    ProcessingUnit,
)

__all__ = ["Platform"]


class Platform:
    """A complete platform description (one PDL document).

    Parameters
    ----------
    name:
        Human-readable platform name (e.g. ``"xeon-x5550-2gpu"``).
    masters:
        Top-level Master PUs.
    schema_version:
        Version string of the PDL base schema the document adheres to.
    """

    def __init__(
        self,
        name: str = "platform",
        masters: Iterable[Master] = (),
        *,
        schema_version: str = "1.0",
    ):
        self.name = name
        self.schema_version = schema_version
        self._masters: list[Master] = []
        for master in masters:
            self.add_master(master)

    # -- construction --------------------------------------------------------
    def add_master(self, master: Master) -> Master:
        if not isinstance(master, Master):
            raise ModelError(
                f"top-level platform entries must be Master PUs, got"
                f" {type(master).__name__} {getattr(master, 'id', '?')!r}"
            )
        if master.parent is not None:
            raise ModelError(f"Master {master.id!r} must not have a controller")
        self._masters.append(master)
        return master

    # -- iteration -----------------------------------------------------------
    @property
    def masters(self) -> tuple[Master, ...]:
        return tuple(self._masters)

    def walk(self) -> Iterator[ProcessingUnit]:
        """All PUs in document order (depth-first from each Master)."""
        for master in self._masters:
            yield from master.walk()

    def processing_units(self) -> list[ProcessingUnit]:
        return list(self.walk())

    def workers(self) -> list[ProcessingUnit]:
        return [pu for pu in self.walk() if pu.kind == "Worker"]

    def hybrids(self) -> list[ProcessingUnit]:
        return [pu for pu in self.walk() if pu.kind == "Hybrid"]

    def memory_regions(self) -> list[MemoryRegion]:
        regions: list[MemoryRegion] = []
        for pu in self.walk():
            regions.extend(pu.memory_regions)
        return regions

    def interconnects(self) -> list[Interconnect]:
        ics: list[Interconnect] = []
        for pu in self.walk():
            ics.extend(pu.interconnects)
        return ics

    # -- lookup ----------------------------------------------------------------
    def find_pu(self, pu_id: str) -> Optional[ProcessingUnit]:
        for pu in self.walk():
            if pu.id == pu_id:
                return pu
        return None

    def pu(self, pu_id: str) -> ProcessingUnit:
        found = self.find_pu(pu_id)
        if found is None:
            raise ModelError(f"no processing unit with id {pu_id!r}")
        return found

    def find_memory_region(self, mr_id: str) -> Optional[MemoryRegion]:
        for region in self.memory_regions():
            if region.id == mr_id:
                return region
        return None

    def find_interconnect(self, ic_id: str) -> Optional[Interconnect]:
        for ic in self.interconnects():
            if ic.id == ic_id:
                return ic
        return None

    def groups(self) -> dict[str, list[ProcessingUnit]]:
        """Map LogicGroupAttribute label → member PUs."""
        table: dict[str, list[ProcessingUnit]] = {}
        for pu in self.walk():
            for group in pu.groups:
                table.setdefault(group, []).append(pu)
        return table

    def group_members(self, group: str) -> list[ProcessingUnit]:
        return self.groups().get(group, [])

    # -- aggregate views --------------------------------------------------------
    def total_pu_count(self, *, expand_quantity: bool = True) -> int:
        if expand_quantity:
            return sum(pu.quantity for pu in self.walk())
        return sum(1 for _ in self.walk())

    def architectures(self) -> set[str]:
        return {pu.architecture for pu in self.walk() if pu.architecture}

    def copy(self) -> "Platform":
        clone = Platform(self.name, schema_version=self.schema_version)
        for master in self._masters:
            clone.add_master(master.copy())
        return clone

    def validate(self) -> None:
        """Structural validation; see :mod:`repro.model.validation`."""
        from repro.model.validation import validate_platform

        validate_platform(self)

    def __repr__(self) -> str:
        return (
            f"Platform({self.name!r}, masters={len(self._masters)},"
            f" pus={self.total_pu_count(expand_quantity=False)})"
        )
