"""Property and descriptor primitives of the hierarchical machine model.

The PDL paper (§III-B) bases all extensibility on a key/value *Property*
mechanism attached to *Descriptor* containers:

* every entity (processing unit, memory region, interconnect) carries a
  descriptor (``PUDescriptor``, ``MRDescriptor``, ``ICDescriptor``),
* a descriptor is an ordered collection of properties,
* a property is a ``name``/``value`` pair that is either **fixed** (authored
  by hand, immutable downstream) or **unfixed** (a slot to be filled in by a
  later toolchain stage, e.g. an OpenCL runtime query),
* values may carry a unit (Listing 2: ``<ocl:value unit="kB">``),
* properties are *polymorphic*: concrete subschemas (``ocl:``, ``cuda:`` …)
  refine the generic property type via XML schema inheritance.

This module implements those primitives independent of any XML syntax; the
:mod:`repro.pdl` package maps them to/from documents.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Mapping, Optional, Union

from repro.errors import PropertyError

__all__ = [
    "PropertyValue",
    "Property",
    "Descriptor",
    "PUDescriptor",
    "MRDescriptor",
    "ICDescriptor",
    "parse_quantity",
    "UNIT_SCALES",
]

# Scale factors for byte/frequency units that show up in platform
# descriptors.  Scaling is only applied by :func:`parse_quantity`; stored
# values always keep their original unit so documents round-trip unchanged.
UNIT_SCALES: Mapping[str, float] = {
    # bytes
    "B": 1.0,
    "kB": 1024.0,
    "KB": 1024.0,
    "MB": 1024.0**2,
    "GB": 1024.0**3,
    "TB": 1024.0**4,
    # frequencies
    "Hz": 1.0,
    "kHz": 1e3,
    "MHz": 1e6,
    "GHz": 1e9,
    # bandwidth
    "B/s": 1.0,
    "kB/s": 1024.0,
    "MB/s": 1024.0**2,
    "GB/s": 1024.0**3,
    # time
    "s": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "ns": 1e-9,
}

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


def parse_quantity(value: str, unit: Optional[str]) -> float:
    """Return ``value`` scaled to base units (bytes, Hz, B/s or seconds).

    ``value`` must parse as a number.  Unknown units raise
    :class:`~repro.errors.PropertyError` so typos in descriptors surface
    early instead of silently mis-scaling a capacity.
    """
    try:
        magnitude = float(value)
    except (TypeError, ValueError) as exc:
        raise PropertyError(f"quantity value {value!r} is not numeric") from exc
    if unit is None:
        return magnitude
    try:
        return magnitude * UNIT_SCALES[unit]
    except KeyError:
        raise PropertyError(
            f"unknown unit {unit!r}; known units: {sorted(UNIT_SCALES)}"
        ) from None


class PropertyValue:
    """A property value with an optional unit.

    Values are stored as strings — exactly what the XML carries — together
    with typed accessors.  This keeps round-tripping lossless, which the
    paper's toolchain scenario requires (unfixed values may be edited by
    other tools and written back).
    """

    __slots__ = ("text", "unit")

    def __init__(self, text: Union[str, int, float], unit: Optional[str] = None):
        if isinstance(text, bool):
            text = "true" if text else "false"
        self.text = str(text)
        self.unit = unit

    # -- typed accessors ---------------------------------------------------
    def as_str(self) -> str:
        return self.text

    def as_int(self) -> int:
        try:
            return int(self.text)
        except ValueError as exc:
            raise PropertyError(f"value {self.text!r} is not an integer") from exc

    def as_float(self) -> float:
        try:
            return float(self.text)
        except ValueError as exc:
            raise PropertyError(f"value {self.text!r} is not a number") from exc

    def as_bool(self) -> bool:
        lowered = self.text.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise PropertyError(f"value {self.text!r} is not a boolean")

    def as_quantity(self) -> float:
        """Value scaled to base units (see :func:`parse_quantity`)."""
        return parse_quantity(self.text, self.unit)

    # -- dunder ------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, PropertyValue):
            return self.text == other.text and self.unit == other.unit
        if isinstance(other, str):
            return self.text == other and self.unit is None
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.text, self.unit))

    def __repr__(self) -> str:
        if self.unit:
            return f"PropertyValue({self.text!r}, unit={self.unit!r})"
        return f"PropertyValue({self.text!r})"

    def __str__(self) -> str:
        return f"{self.text} {self.unit}" if self.unit else self.text


class Property:
    """A single named platform property.

    Parameters
    ----------
    name:
        Property key, e.g. ``"ARCHITECTURE"`` or ``"MAX_COMPUTE_UNITS"``.
    value:
        The value; strings/numbers are wrapped into :class:`PropertyValue`.
    fixed:
        ``True`` for hand-authored immutable properties; ``False`` marks the
        value editable by downstream tools (paper §III-B).
    type_name:
        Polymorphic type tag, e.g. ``"ocl:oclDevicePropertyType"``.  ``None``
        means the generic base property type.
    source:
        Optional provenance note (which tool/run generated this property).
    """

    __slots__ = ("name", "_value", "fixed", "type_name", "source")

    def __init__(
        self,
        name: str,
        value: Union[str, int, float, PropertyValue],
        *,
        fixed: bool = True,
        type_name: Optional[str] = None,
        source: Optional[str] = None,
    ):
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise PropertyError(f"invalid property name {name!r}")
        self.name = name
        self._value = value if isinstance(value, PropertyValue) else PropertyValue(value)
        self.fixed = bool(fixed)
        self.type_name = type_name
        self.source = source

    @property
    def value(self) -> PropertyValue:
        return self._value

    @value.setter
    def value(self, new: Union[str, int, float, PropertyValue]) -> None:
        if self.fixed:
            raise PropertyError(
                f"property {self.name!r} is fixed and cannot be re-instantiated"
            )
        self._value = new if isinstance(new, PropertyValue) else PropertyValue(new)

    def instantiate(self, new_value: Union[str, int, float, PropertyValue]) -> None:
        """Fill in an unfixed property (e.g. by a runtime discovery pass)."""
        self.value = new_value  # property setter enforces mutability

    @property
    def namespace(self) -> Optional[str]:
        """Namespace prefix of the polymorphic type (``"ocl"``) or ``None``."""
        if self.type_name and ":" in self.type_name:
            return self.type_name.split(":", 1)[0]
        return None

    def copy(self) -> "Property":
        return Property(
            self.name,
            PropertyValue(self._value.text, self._value.unit),
            fixed=self.fixed,
            type_name=self.type_name,
            source=self.source,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Property):
            return NotImplemented
        return (
            self.name == other.name
            and self._value == other._value
            and self.fixed == other.fixed
            and self.type_name == other.type_name
        )

    def __hash__(self) -> int:
        return hash((self.name, self._value, self.fixed, self.type_name))

    def __repr__(self) -> str:
        flags = "" if self.fixed else ", fixed=False"
        typ = f", type={self.type_name!r}" if self.type_name else ""
        return f"Property({self.name!r}, {self._value!r}{flags}{typ})"


class Descriptor:
    """Ordered, name-indexed collection of :class:`Property` objects.

    Multiple properties may share a name only when they carry different
    polymorphic types (mirrors XML, where a base and an extension property
    may coexist); within one type a name is unique.
    """

    #: XML element name used by the PDL writer; subclasses override.
    xml_tag = "Descriptor"

    def __init__(self, properties: Iterable[Property] = ()):
        self._props: list[Property] = []
        for prop in properties:
            self.add(prop)

    # -- mutation ----------------------------------------------------------
    def add(self, prop: Property) -> Property:
        if not isinstance(prop, Property):
            raise PropertyError(f"expected Property, got {type(prop).__name__}")
        for existing in self._props:
            if existing.name == prop.name and existing.type_name == prop.type_name:
                raise PropertyError(
                    f"duplicate property {prop.name!r}"
                    f" (type {prop.type_name or 'generic'!r})"
                )
        self._props.append(prop)
        return prop

    def set(
        self,
        name: str,
        value: Union[str, int, float, PropertyValue],
        **kwargs,
    ) -> Property:
        """Add a property, or re-instantiate an existing *unfixed* one."""
        existing = self.find(name, type_name=kwargs.get("type_name"))
        if existing is not None:
            existing.instantiate(value)
            return existing
        return self.add(Property(name, value, **kwargs))

    def remove(self, name: str, *, type_name: Optional[str] = None) -> None:
        before = len(self._props)
        self._props = [
            p
            for p in self._props
            if not (p.name == name and (type_name is None or p.type_name == type_name))
        ]
        if len(self._props) == before:
            raise PropertyError(f"no property named {name!r} to remove")

    # -- lookup ------------------------------------------------------------
    def find(self, name: str, *, type_name: Optional[str] = None) -> Optional[Property]:
        for prop in self._props:
            if prop.name == name and (type_name is None or prop.type_name == type_name):
                return prop
        return None

    def get(self, name: str, default=None):
        """Return the :class:`PropertyValue` for ``name`` (or ``default``)."""
        prop = self.find(name)
        return prop.value if prop is not None else default

    def get_str(self, name: str, default: Optional[str] = None) -> Optional[str]:
        prop = self.find(name)
        return prop.value.as_str() if prop is not None else default

    def get_int(self, name: str, default: Optional[int] = None) -> Optional[int]:
        prop = self.find(name)
        return prop.value.as_int() if prop is not None else default

    def get_float(self, name: str, default: Optional[float] = None) -> Optional[float]:
        prop = self.find(name)
        return prop.value.as_float() if prop is not None else default

    def get_quantity(self, name: str, default: Optional[float] = None) -> Optional[float]:
        prop = self.find(name)
        return prop.value.as_quantity() if prop is not None else default

    def names(self) -> list[str]:
        return [p.name for p in self._props]

    def unfixed(self) -> list[Property]:
        """All properties still open for instantiation by later stages."""
        return [p for p in self._props if not p.fixed]

    def by_namespace(self, namespace: Optional[str]) -> list[Property]:
        return [p for p in self._props if p.namespace == namespace]

    # -- protocol ----------------------------------------------------------
    def __iter__(self) -> Iterator[Property]:
        return iter(self._props)

    def __len__(self) -> int:
        return len(self._props)

    def __contains__(self, name: str) -> bool:
        return self.find(name) is not None

    def copy(self) -> "Descriptor":
        return type(self)(p.copy() for p in self._props)

    def merge(self, other: "Descriptor", *, overwrite_unfixed: bool = True) -> None:
        """Fold ``other``'s properties into this descriptor.

        New names are appended.  Names that exist here as *unfixed*
        properties are instantiated from ``other`` when
        ``overwrite_unfixed`` is set — this is the paper's late-binding
        flow where a runtime fills in slots left open at composition time.

        Invariants:

        * fixed-ness never flips — instantiation fills the value of an
          unfixed slot but the slot stays unfixed, and fixed properties
          here are never overwritten;
        * units are preserved — an incoming bare magnitude (``unit is
          None``) fills the slot *in the slot's authored unit* (the unit
          is part of the slot's contract; dropping it would silently
          rescale quantities like ``"2" kB`` → ``"2"`` bytes), while an
          incoming value with an explicit unit replaces unit and text
          together (lossless).
        """
        for prop in other:
            mine = self.find(prop.name, type_name=prop.type_name)
            if mine is None:
                self.add(prop.copy())
            elif not mine.fixed and overwrite_unfixed:
                unit = prop.value.unit if prop.value.unit is not None else mine.value.unit
                mine.instantiate(PropertyValue(prop.value.text, unit))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._props!r})"


class PUDescriptor(Descriptor):
    """Descriptor attached to a processing unit."""

    xml_tag = "PUDescriptor"


class MRDescriptor(Descriptor):
    """Descriptor attached to a memory region."""

    xml_tag = "MRDescriptor"


class ICDescriptor(Descriptor):
    """Descriptor attached to an interconnect."""

    xml_tag = "ICDescriptor"
