"""Structural validation of the hierarchical machine model (§III-A).

The paper fixes the following rules, which we enforce here:

* Masters are defined only at the highest hierarchy level; several Masters
  may co-exist in one system.
* Workers are leaves and must be controlled by a Master or a Hybrid.
* Hybrids are inner nodes and must be controlled by a Master or a Hybrid;
  a Hybrid in the Worker role still needs a controller.
* Control relationships form a forest (no cycles, single controller).

We additionally check document hygiene that the XML schema would give us:
unique ids, interconnect endpoints that resolve to PUs, and interconnects
that respect scoping (both endpoints inside the subtree of the PU that
declares the link, which is how Listing 1 scopes the ``rDMA`` link under
its Master).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ValidationError
from repro.model.entities import Hybrid, Master, ProcessingUnit, Worker

if TYPE_CHECKING:
    from repro.model.platform import Platform

__all__ = ["validate_platform", "collect_violations"]


def collect_violations(platform: "Platform") -> list[str]:
    """Return all rule violations of ``platform`` (empty list = valid)."""
    violations: list[str] = []
    violations.extend(_check_pu_classes(platform))
    violations.extend(_check_unique_ids(platform))
    violations.extend(_check_interconnects(platform))
    violations.extend(_check_hybrid_shape(platform))
    return violations


def validate_platform(platform: "Platform") -> None:
    """Raise :class:`~repro.errors.ValidationError` on any rule violation."""
    violations = collect_violations(platform)
    if violations:
        raise ValidationError(violations)


# ---------------------------------------------------------------------------
# individual rule groups
# ---------------------------------------------------------------------------
def _check_pu_classes(platform: "Platform") -> list[str]:
    out: list[str] = []
    for master in platform.masters:
        if master.parent is not None:  # Platform.add_master guards, but re-check
            out.append(f"Master {master.id!r} has a controller {master.parent.id!r}")
    for pu in platform.walk():
        if isinstance(pu, Master):
            if pu.parent is not None:
                out.append(
                    f"Master {pu.id!r} appears below {pu.parent.id!r};"
                    " Masters exist only at the highest level"
                )
        elif isinstance(pu, Worker):
            if pu.parent is None:
                out.append(f"Worker {pu.id!r} is uncontrolled")
            elif not isinstance(pu.parent, (Master, Hybrid)):
                out.append(
                    f"Worker {pu.id!r} controlled by {pu.parent.kind}"
                    f" {pu.parent.id!r}; must be Master or Hybrid"
                )
            if pu.children:
                out.append(f"Worker {pu.id!r} controls other PUs; Workers are leaves")
        elif isinstance(pu, Hybrid):
            if pu.parent is None:
                out.append(f"Hybrid {pu.id!r} is uncontrolled")
            elif not isinstance(pu.parent, (Master, Hybrid)):
                out.append(
                    f"Hybrid {pu.id!r} controlled by {pu.parent.kind}"
                    f" {pu.parent.id!r}; must be Master or Hybrid"
                )
        else:
            out.append(f"PU {pu.id!r} has unknown class {type(pu).__name__}")
    return out


def _check_hybrid_shape(platform: "Platform") -> list[str]:
    # A Hybrid without children would collapse to a Worker; the paper places
    # Hybrids at inner nodes.  We flag childless Hybrids as violations so
    # descriptions stay canonical.
    return [
        f"Hybrid {pu.id!r} has no controlled PUs; use a Worker for leaf resources"
        for pu in platform.walk()
        if isinstance(pu, Hybrid) and not pu.children
    ]


def _check_unique_ids(platform: "Platform") -> list[str]:
    out: list[str] = []
    seen_pu: dict[str, ProcessingUnit] = {}
    for pu in platform.walk():
        if pu.id in seen_pu:
            out.append(f"duplicate PU id {pu.id!r}")
        seen_pu[pu.id] = pu
    seen_mr: set[str] = set()
    for region in platform.memory_regions():
        if region.id in seen_mr:
            out.append(f"duplicate MemoryRegion id {region.id!r}")
        seen_mr.add(region.id)
    seen_ic: set[str] = set()
    for ic in platform.interconnects():
        if ic.id in seen_ic:
            out.append(f"duplicate Interconnect id {ic.id!r}")
        seen_ic.add(ic.id)
    return out


def _check_interconnects(platform: "Platform") -> list[str]:
    out: list[str] = []
    ids = {pu.id for pu in platform.walk()}
    for owner in platform.walk():
        scope = {pu.id for pu in owner.walk()}
        for ic in owner.interconnects:
            for endpoint in ic.endpoints():
                if endpoint not in ids:
                    out.append(
                        f"Interconnect {ic.id!r} references unknown PU {endpoint!r}"
                    )
                elif endpoint not in scope:
                    out.append(
                        f"Interconnect {ic.id!r} declared under {owner.id!r} but"
                        f" endpoint {endpoint!r} is outside that subtree"
                    )
            if ic.from_pu == ic.to_pu:
                out.append(f"Interconnect {ic.id!r} is a self-loop on {ic.from_pu!r}")
    return out
