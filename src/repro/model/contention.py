"""Contention-domain declarations: shared channels in a platform.

The PML follow-up to the paper ("Analysing Interference on Hardware
Accelerators through PML") argues that *interference channels* — shared
memory controllers, common buses, IO hubs — must be explicit in the
platform description before any tool can certify co-located workloads.
This module defines the PDL convention for that and the collector that
turns a parsed :class:`~repro.model.platform.Platform` into a list of
:class:`ContentionDomain` objects the lint pack
(:mod:`repro.analysis.interference_rules`) and the runtime transfer
model (:mod:`repro.perf.transfer`) share.

Declaration convention (ordinary fixed properties, so documents
round-trip through parse/validate/write and content digests with no
schema change):

``CONTENTION_DOMAIN``
    on an ``MRDescriptor`` or ``ICDescriptor``: the name of the shared
    channel this memory region / interconnect draws bandwidth from.

``CONTENTION_BANDWIDTH``
    the channel's *aggregate* bandwidth budget (a bandwidth quantity,
    e.g. ``25.6 GB/s``).  At least one member of a domain must declare
    it; members that do declare it must agree.

``CONTENTION_MEMBERS``
    optional, next to a ``CONTENTION_DOMAIN`` declaration: a
    whitespace/comma-separated list of interconnect or memory-region
    ids enrolled into the same domain (a link *group* joining one
    channel without repeating the declaration on every link).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.model.platform import Platform

__all__ = [
    "CONTENTION_DOMAIN",
    "CONTENTION_BANDWIDTH",
    "CONTENTION_MEMBERS",
    "DomainMember",
    "ContentionDomain",
    "collect_contention_domains",
]

CONTENTION_DOMAIN = "CONTENTION_DOMAIN"
CONTENTION_BANDWIDTH = "CONTENTION_BANDWIDTH"
CONTENTION_MEMBERS = "CONTENTION_MEMBERS"

_MEMBER_SEP = re.compile(r"[\s,]+")


@dataclass(frozen=True)
class DomainMember:
    """One component enrolled in a contention domain."""

    kind: str  # "memory" | "interconnect"
    id: str  # the member entity's id
    owner: str  # id of the PU declaring the member entity
    #: the member's own BANDWIDTH figure (bytes/s), when declared
    bandwidth_bps: Optional[float]
    #: the member's CONTENTION_BANDWIDTH budget claim (bytes/s), if any
    declared_budget_bps: Optional[float]
    #: "property" (declared on the member itself) or "members-list"
    #: (enrolled through another member's CONTENTION_MEMBERS)
    via: str

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "id": self.id,
            "owner": self.owner,
            "bandwidth_gbs": (
                None
                if self.bandwidth_bps is None
                else round(self.bandwidth_bps / 1e9, 6)
            ),
            "via": self.via,
        }


@dataclass
class ContentionDomain:
    """One shared channel: its members and aggregate bandwidth budget."""

    name: str
    members: list[DomainMember] = field(default_factory=list)
    #: ``(declaring entity id, missing id)`` for every CONTENTION_MEMBERS
    #: entry that names no interconnect or memory region in the document
    dangling: list[tuple[str, str]] = field(default_factory=list)

    def budgets_bps(self) -> list[float]:
        """Distinct declared budgets, ascending (one entry when consistent)."""
        return sorted({
            m.declared_budget_bps
            for m in self.members
            if m.declared_budget_bps is not None
        })

    @property
    def budget_bps(self) -> Optional[float]:
        """The effective budget: the smallest declared figure (the lint
        pack flags disagreements; the runtime stays conservative)."""
        budgets = self.budgets_bps()
        return budgets[0] if budgets else None

    def link_members(self) -> list[DomainMember]:
        return [m for m in self.members if m.kind == "interconnect"]

    def region_members(self) -> list[DomainMember]:
        return [m for m in self.members if m.kind == "memory"]

    def link_subscription_bps(self) -> float:
        """Sum of the member links' own bandwidth figures."""
        return sum(
            m.bandwidth_bps
            for m in self.link_members()
            if m.bandwidth_bps is not None
        )

    def to_payload(self) -> dict:
        budget = self.budget_bps
        subscription = self.link_subscription_bps()
        return {
            "name": self.name,
            "budget_gbs": None if budget is None else round(budget / 1e9, 6),
            "members": [
                m.to_payload()
                for m in sorted(self.members, key=lambda m: (m.kind, m.id))
            ],
            "link_subscription_gbs": round(subscription / 1e9, 6),
            "subscription_ratio": (
                None
                if budget is None or not budget
                else round(subscription / budget, 6)
            ),
            "dangling": [list(pair) for pair in sorted(self.dangling)],
        }


def split_members(text: str) -> list[str]:
    """Member ids out of a CONTENTION_MEMBERS value."""
    return [part for part in _MEMBER_SEP.split(text.strip()) if part]


def _declarations(platform: Platform):
    """Every entity carrying a CONTENTION_DOMAIN property.

    Yields ``(kind, entity_id, owner_pu_id, descriptor)``.
    """
    for pu in platform.walk():
        for region in pu.memory_regions:
            if region.descriptor.get(CONTENTION_DOMAIN) is not None:
                yield "memory", region.id, pu.id, region.descriptor
        for ic in pu.interconnects:
            if ic.descriptor.get(CONTENTION_DOMAIN) is not None:
                yield "interconnect", ic.id, pu.id, ic.descriptor


def collect_contention_domains(platform: Platform) -> list[ContentionDomain]:
    """All declared contention domains, sorted by name.

    Membership comes from per-entity ``CONTENTION_DOMAIN`` properties
    plus ``CONTENTION_MEMBERS`` group enrollment; a component named both
    ways appears once (the direct declaration wins, so its budget claim
    is kept).  Unresolvable CONTENTION_MEMBERS ids land in
    :attr:`ContentionDomain.dangling` for the lint pack.
    """
    regions = {}
    links = {}
    for pu in platform.walk():
        for region in pu.memory_regions:
            regions[region.id] = (pu.id, region.descriptor)
        for ic in pu.interconnects:
            links[ic.id] = (pu.id, ic.descriptor)

    domains: dict[str, ContentionDomain] = {}
    enrolled: dict[str, set[tuple[str, str]]] = {}

    def domain(name: str) -> ContentionDomain:
        if name not in domains:
            domains[name] = ContentionDomain(name=name)
            enrolled[name] = set()
        return domains[name]

    def add_member(name: str, member: DomainMember) -> None:
        dom = domain(name)
        key = (member.kind, member.id)
        if key in enrolled[name]:
            return
        enrolled[name].add(key)
        dom.members.append(member)

    # pass 1: direct declarations (budget claims live here)
    declarations = list(_declarations(platform))
    for kind, entity_id, owner, descriptor in declarations:
        name = str(descriptor.get_str(CONTENTION_DOMAIN)).strip()
        add_member(
            name,
            DomainMember(
                kind=kind,
                id=entity_id,
                owner=owner,
                bandwidth_bps=descriptor.get_quantity("BANDWIDTH"),
                declared_budget_bps=descriptor.get_quantity(
                    CONTENTION_BANDWIDTH
                ),
                via="property",
            ),
        )

    # pass 2: CONTENTION_MEMBERS group enrollment
    for _kind, entity_id, _owner, descriptor in declarations:
        members_text = descriptor.get_str(CONTENTION_MEMBERS)
        if not members_text:
            continue
        name = str(descriptor.get_str(CONTENTION_DOMAIN)).strip()
        for member_id in split_members(members_text):
            if member_id in links:
                owner_id, member_descriptor = links[member_id]
                member_kind = "interconnect"
            elif member_id in regions:
                owner_id, member_descriptor = regions[member_id]
                member_kind = "memory"
            else:
                domain(name).dangling.append((entity_id, member_id))
                continue
            add_member(
                name,
                DomainMember(
                    kind=member_kind,
                    id=member_id,
                    owner=owner_id,
                    bandwidth_bps=member_descriptor.get_quantity("BANDWIDTH"),
                    declared_budget_bps=member_descriptor.get_quantity(
                        CONTENTION_BANDWIDTH
                    ),
                    via="members-list",
                ),
            )

    for dom in domains.values():
        dom.members.sort(key=lambda m: (m.kind, m.id))
        dom.dangling.sort()
    return [domains[name] for name in sorted(domains)]
