"""Hierarchical machine model of the PDL (paper §III-A).

Public surface: entity classes (:class:`Master`, :class:`Hybrid`,
:class:`Worker`, :class:`MemoryRegion`, :class:`Interconnect`), property
primitives, the :class:`Platform` container, structural validation, the
fluent :class:`PlatformBuilder` and traversal helpers.
"""

from repro.model.builder import PlatformBuilder
from repro.model.entities import (
    PU_KINDS,
    Hybrid,
    Interconnect,
    Master,
    MemoryRegion,
    ProcessingUnit,
    Worker,
)
from repro.model.groups import GroupRegistry, valid_group_name
from repro.model.platform import Platform
from repro.model.properties import (
    Descriptor,
    ICDescriptor,
    MRDescriptor,
    Property,
    PropertyValue,
    PUDescriptor,
    parse_quantity,
)
from repro.model.validation import collect_violations, validate_platform
from repro.model.views import PHYSICAL_ID_PROP, LogicalView, ViewRegistry
from repro.model.visitor import (
    PlatformVisitor,
    find_all,
    render_tree,
    tree_lines,
    walk_breadth_first,
)

__all__ = [
    "PU_KINDS",
    "Master",
    "Hybrid",
    "Worker",
    "ProcessingUnit",
    "MemoryRegion",
    "Interconnect",
    "Platform",
    "PlatformBuilder",
    "GroupRegistry",
    "valid_group_name",
    "Property",
    "PropertyValue",
    "Descriptor",
    "PUDescriptor",
    "MRDescriptor",
    "ICDescriptor",
    "parse_quantity",
    "validate_platform",
    "collect_violations",
    "LogicalView",
    "ViewRegistry",
    "PHYSICAL_ID_PROP",
    "PlatformVisitor",
    "walk_breadth_first",
    "find_all",
    "tree_lines",
    "render_tree",
]
