"""Entities of the hierarchical machine model (paper §III-A, Fig. 2/3).

The model distinguishes three processing-unit (PU) classes:

``Master``
    Feature-rich general-purpose PU; a possible starting point for program
    execution.  Masters exist only at the top level of the hierarchy and
    may co-exist with other Masters in one system.

``Worker``
    Specialized compute resource at the leaves.  A Worker must be
    controlled by a Master or Hybrid.

``Hybrid``
    Inner node acting as Worker towards its controller and Master towards
    its children; must itself be controlled by a Master or Hybrid.

A *control relationship* (edge parent→child in the PU tree) is defined as
"the possibility for delegation of computational tasks from one PU to
another".  Besides PUs the model has ``MemoryRegion`` (directly addressable
memory attached to some PU scope) and ``Interconnect`` (a communication
facility between two PUs) entities, plus ``LogicGroupAttribute`` labels
that name PU subsets for task-mapping (referenced by Cascabel's
``executiongroup`` pragma clause).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import ModelError
from repro.model.properties import (
    Descriptor,
    ICDescriptor,
    MRDescriptor,
    PUDescriptor,
)

__all__ = [
    "ProcessingUnit",
    "Master",
    "Hybrid",
    "Worker",
    "MemoryRegion",
    "Interconnect",
    "PU_KINDS",
]

#: canonical tag names, in document order of the spec
PU_KINDS = ("Master", "Hybrid", "Worker")

_id_counter = itertools.count(1)


def _auto_id(prefix: str) -> str:
    return f"{prefix}{next(_id_counter)}"


class MemoryRegion:
    """A directly addressable memory region.

    Qualitative attributes (size, affinity, relative speed) live in the
    attached :class:`~repro.model.properties.MRDescriptor`; the abstract
    model itself only knows identity and ownership.
    """

    xml_tag = "MemoryRegion"

    def __init__(
        self,
        id: Optional[str] = None,
        *,
        descriptor: Optional[MRDescriptor] = None,
    ):
        self.id = str(id) if id is not None else _auto_id("mr")
        self.descriptor = descriptor if descriptor is not None else MRDescriptor()
        #: the ProcessingUnit owning this region (set on attach)
        self.owner: Optional["ProcessingUnit"] = None

    @property
    def size_bytes(self) -> Optional[float]:
        """Region capacity in bytes, if a SIZE property is present."""
        return self.descriptor.get_quantity("SIZE")

    def copy(self) -> "MemoryRegion":
        return MemoryRegion(self.id, descriptor=self.descriptor.copy())

    def __repr__(self) -> str:
        return f"MemoryRegion(id={self.id!r})"


class Interconnect:
    """A communication facility between two processing units.

    ``from_pu``/``to_pu`` hold PU ids (resolved against the owning
    platform).  ``type`` names the link technology (e.g. ``"rDMA"``,
    ``"PCIe"``, ``"QPI"``); ``scheme`` an optional addressing or transfer
    scheme.  Interconnects are directed in the document; a bidirectional
    physical link is either expressed as two entities or flagged with
    ``bidirectional=True`` (our extension, defaulting to True because every
    practical link in the paper's platforms is full duplex).
    """

    xml_tag = "Interconnect"

    def __init__(
        self,
        from_pu: str,
        to_pu: str,
        *,
        type: str = "",
        scheme: str = "",
        id: Optional[str] = None,
        bidirectional: bool = True,
        descriptor: Optional[ICDescriptor] = None,
    ):
        self.id = str(id) if id is not None else _auto_id("ic")
        self.from_pu = str(from_pu)
        self.to_pu = str(to_pu)
        self.type = type
        self.scheme = scheme
        self.bidirectional = bool(bidirectional)
        self.descriptor = descriptor if descriptor is not None else ICDescriptor()

    @property
    def bandwidth_bytes_per_s(self) -> Optional[float]:
        return self.descriptor.get_quantity("BANDWIDTH")

    @property
    def latency_s(self) -> Optional[float]:
        return self.descriptor.get_quantity("LATENCY")

    def endpoints(self) -> tuple[str, str]:
        return (self.from_pu, self.to_pu)

    def connects(self, pu_id: str) -> bool:
        return pu_id in (self.from_pu, self.to_pu)

    def copy(self) -> "Interconnect":
        return Interconnect(
            self.from_pu,
            self.to_pu,
            type=self.type,
            scheme=self.scheme,
            id=self.id,
            bidirectional=self.bidirectional,
            descriptor=self.descriptor.copy(),
        )

    def __repr__(self) -> str:
        arrow = "<->" if self.bidirectional else "->"
        return (
            f"Interconnect({self.from_pu!r}{arrow}{self.to_pu!r},"
            f" type={self.type!r})"
        )


class ProcessingUnit:
    """Common base of Master/Hybrid/Worker PUs.

    A PU owns a :class:`PUDescriptor`, an ordered list of child PUs (the
    control relationship), memory regions, interconnects *scoped to this
    subtree*, and logic-group labels.  ``quantity`` expresses homogeneous
    replication (Listing 1 uses ``quantity="1"``): a PU entity with
    ``quantity=8`` stands for eight identical units; :mod:`repro.query`
    and the runtime expand this where needed.
    """

    #: overridden by subclasses
    kind: str = "PU"
    xml_tag: str = "PU"

    # hierarchy rules, encoded per class and consumed by model.validation
    may_be_root = False
    may_have_children = False
    must_have_parent = False

    def __init__(
        self,
        id: Optional[str] = None,
        *,
        quantity: int = 1,
        descriptor: Optional[PUDescriptor] = None,
        groups: Iterable[str] = (),
        name: Optional[str] = None,
    ):
        if quantity < 1:
            raise ModelError(f"quantity must be >= 1, got {quantity}")
        self.id = str(id) if id is not None else _auto_id("pu")
        self.name = name
        self.quantity = int(quantity)
        self.descriptor = descriptor if descriptor is not None else PUDescriptor()
        #: LogicGroupAttribute labels naming PU subsets
        self.groups: list[str] = list(dict.fromkeys(groups))
        self.parent: Optional["ProcessingUnit"] = None
        self._children: list["ProcessingUnit"] = []
        self._memory_regions: list[MemoryRegion] = []
        self._interconnects: list[Interconnect] = []

    # -- hierarchy ---------------------------------------------------------
    @property
    def children(self) -> Sequence["ProcessingUnit"]:
        return tuple(self._children)

    def add_child(self, child: "ProcessingUnit") -> "ProcessingUnit":
        if not self.may_have_children:
            raise ModelError(
                f"{self.kind} {self.id!r} cannot control other processing units"
            )
        if child.parent is not None:
            raise ModelError(
                f"PU {child.id!r} already controlled by {child.parent.id!r}"
            )
        if child is self or child.is_ancestor_of(self):
            raise ModelError(f"adding {child.id!r} would create a control cycle")
        child.parent = self
        self._children.append(child)
        return child

    def remove_child(self, child: "ProcessingUnit") -> None:
        try:
            self._children.remove(child)
        except ValueError:
            raise ModelError(f"{child.id!r} is not a child of {self.id!r}") from None
        child.parent = None

    def is_ancestor_of(self, other: "ProcessingUnit") -> bool:
        node = other.parent
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def ancestors(self) -> Iterator["ProcessingUnit"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def walk(self) -> Iterator["ProcessingUnit"]:
        """Depth-first pre-order traversal of this subtree (self first)."""
        yield self
        for child in self._children:
            yield from child.walk()

    def leaves(self) -> Iterator["ProcessingUnit"]:
        for pu in self.walk():
            if not pu._children:
                yield pu

    @property
    def depth(self) -> int:
        return sum(1 for _ in self.ancestors())

    # -- memory / interconnect ownership ------------------------------------
    @property
    def memory_regions(self) -> Sequence[MemoryRegion]:
        return tuple(self._memory_regions)

    def add_memory_region(self, region: MemoryRegion) -> MemoryRegion:
        if region.owner is not None:
            raise ModelError(
                f"memory region {region.id!r} already owned by {region.owner.id!r}"
            )
        region.owner = self
        self._memory_regions.append(region)
        return region

    @property
    def interconnects(self) -> Sequence[Interconnect]:
        return tuple(self._interconnects)

    def add_interconnect(self, ic: Interconnect) -> Interconnect:
        self._interconnects.append(ic)
        return ic

    # -- convenience -------------------------------------------------------
    @property
    def architecture(self) -> Optional[str]:
        """Shortcut for the ubiquitous ARCHITECTURE property (Listing 1)."""
        return self.descriptor.get_str("ARCHITECTURE")

    def in_group(self, group: str) -> bool:
        return group in self.groups

    def add_group(self, group: str) -> None:
        if group not in self.groups:
            self.groups.append(group)

    def matches_properties(self, required: dict) -> bool:
        """True when every (name → value) pair is present in the descriptor."""
        for name, value in required.items():
            prop = self.descriptor.find(name)
            if prop is None or prop.value.as_str() != str(value):
                return False
        return True

    def expand(self) -> list["ProcessingUnit"]:
        """Materialize ``quantity`` logical instances of this PU.

        Returns ``quantity`` shallow stand-ins sharing this PU's descriptor
        and children; instance ids are ``"{id}#{k}"``.  Quantity one returns
        ``[self]`` unchanged.
        """
        if self.quantity == 1:
            return [self]
        instances = []
        for k in range(self.quantity):
            clone = type(self)(
                f"{self.id}#{k}",
                quantity=1,
                descriptor=self.descriptor,
                groups=self.groups,
                name=self.name,
            )
            clone.parent = self.parent
            clone._children = self._children
            clone._memory_regions = self._memory_regions
            instances.append(clone)
        return instances

    def copy(self) -> "ProcessingUnit":
        """Deep copy of this subtree (parent link cleared on the root)."""
        clone = type(self)(
            self.id,
            quantity=self.quantity,
            descriptor=self.descriptor.copy(),
            groups=self.groups,
            name=self.name,
        )
        for region in self._memory_regions:
            clone.add_memory_region(region.copy())
        for ic in self._interconnects:
            clone.add_interconnect(ic.copy())
        for child in self._children:
            clone.add_child(child.copy())
        return clone

    def __repr__(self) -> str:
        arch = f", arch={self.architecture!r}" if self.architecture else ""
        qty = f", quantity={self.quantity}" if self.quantity != 1 else ""
        return f"{self.kind}(id={self.id!r}{arch}{qty})"


class Master(ProcessingUnit):
    """Feature-rich top-level PU; possible program entry point."""

    kind = "Master"
    xml_tag = "Master"
    may_be_root = True
    may_have_children = True
    must_have_parent = False


class Hybrid(ProcessingUnit):
    """Inner-node PU: Worker towards its controller, Master towards children."""

    kind = "Hybrid"
    xml_tag = "Hybrid"
    may_be_root = False
    may_have_children = True
    must_have_parent = True


class Worker(ProcessingUnit):
    """Specialized leaf PU carrying out delegated tasks."""

    kind = "Worker"
    xml_tag = "Worker"
    may_be_root = False
    may_have_children = False
    must_have_parent = True
