"""Traversal utilities over platform hierarchies.

Provides a classic visitor (dispatch per PU kind), generic functional
traversals, and rendering of the control hierarchy as ASCII art — handy in
examples and error messages.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, TypeVar, Union

from repro.model.entities import Hybrid, Master, ProcessingUnit, Worker
from repro.model.platform import Platform

__all__ = [
    "PlatformVisitor",
    "walk_breadth_first",
    "find_all",
    "tree_lines",
    "render_tree",
]

T = TypeVar("T")
Root = Union[Platform, ProcessingUnit]


def _roots(root: Root) -> Iterable[ProcessingUnit]:
    if isinstance(root, Platform):
        return root.masters
    return (root,)


class PlatformVisitor:
    """Kind-dispatched visitor over a platform hierarchy.

    Subclasses override any of :meth:`visit_master`, :meth:`visit_hybrid`,
    :meth:`visit_worker`; each defaults to :meth:`visit_pu`.  ``visit``
    walks depth-first pre-order and calls the matching hook for every PU.
    """

    def visit(self, root: Root) -> None:
        for top in _roots(root):
            for pu in top.walk():
                self.dispatch(pu)

    def dispatch(self, pu: ProcessingUnit) -> None:
        if isinstance(pu, Master):
            self.visit_master(pu)
        elif isinstance(pu, Hybrid):
            self.visit_hybrid(pu)
        elif isinstance(pu, Worker):
            self.visit_worker(pu)
        else:  # pragma: no cover - defensive
            self.visit_pu(pu)

    def visit_pu(self, pu: ProcessingUnit) -> None:
        """Default hook; called when a kind-specific hook is not overridden."""

    def visit_master(self, pu: Master) -> None:
        self.visit_pu(pu)

    def visit_hybrid(self, pu: Hybrid) -> None:
        self.visit_pu(pu)

    def visit_worker(self, pu: Worker) -> None:
        self.visit_pu(pu)


def walk_breadth_first(root: Root) -> Iterator[ProcessingUnit]:
    """Level-order traversal (Masters first, then their children, ...)."""
    queue: list[ProcessingUnit] = list(_roots(root))
    while queue:
        pu = queue.pop(0)
        yield pu
        queue.extend(pu.children)


def find_all(
    root: Root, predicate: Callable[[ProcessingUnit], bool]
) -> list[ProcessingUnit]:
    """All PUs (depth-first order) satisfying ``predicate``."""
    out = []
    for top in _roots(root):
        out.extend(pu for pu in top.walk() if predicate(pu))
    return out


def tree_lines(
    root: Root,
    *,
    label: Optional[Callable[[ProcessingUnit], str]] = None,
) -> list[str]:
    """Render the control hierarchy as a list of ASCII-art lines."""
    if label is None:

        def label(pu: ProcessingUnit) -> str:  # noqa: F811 - default labeler
            arch = f" [{pu.architecture}]" if pu.architecture else ""
            qty = f" x{pu.quantity}" if pu.quantity != 1 else ""
            groups = f" groups={','.join(pu.groups)}" if pu.groups else ""
            return f"{pu.kind}({pu.id}){arch}{qty}{groups}"

    lines: list[str] = []

    def emit(pu: ProcessingUnit, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(label(pu))
            child_prefix = ""
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(prefix + connector + label(pu))
            child_prefix = prefix + ("    " if is_last else "|   ")
        children = list(pu.children)
        for i, child in enumerate(children):
            emit(child, child_prefix, i == len(children) - 1, False)

    for top in _roots(root):
        emit(top, "", True, True)
    return lines


def render_tree(root: Root, **kwargs) -> str:
    """ASCII-art rendering of the control hierarchy as one string."""
    return "\n".join(tree_lines(root, **kwargs))
