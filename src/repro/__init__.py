"""repro — reproduction of "Explicit Platform Descriptions for
Heterogeneous Many-Core Architectures" (Sandrieser, Benkner, Pllana;
IPDPS Workshops 2011).

Subpackages
-----------
``repro.model``
    Hierarchical machine model (Master/Hybrid/Worker, memory, interconnect).
``repro.pdl``
    The XML Platform Description Language: parser, writer, schemas, catalog.
``repro.query``
    Query API over platforms: selectors, data paths, pattern matching.
``repro.discovery``
    Automatic PDL generation from (simulated) hwloc/OpenCL sources.
``repro.perf`` / ``repro.kernels``
    Calibrated performance models and numpy compute kernels.
``repro.runtime``
    StarPU-like heterogeneous runtime (simulated-time and real threads).
``repro.cascabel``
    The source-to-source compiler for ``#pragma cascabel`` programs.
``repro.service``
    Platform registry service: content-addressed PDL store + HTTP API
    exposing queries, diffs and variant pre-selection remotely.
``repro.experiments``
    Harnesses regenerating the paper's figures and our ablations.
``repro.obs``
    Observability: hierarchical spans, counters/gauges/histograms, and
    trace exporters (Chrome trace-event JSON, deterministic JSON, text).
``repro.session``
    The :class:`Session` facade tying platform + tracer + policies into
    one object with ``parse/translate/run/preselect/lint/calibrate/explore``.
``repro.explore``
    Design-space exploration: synthesize PDL platform families under
    area/power/bandwidth budgets, sweep them across a worker pool, and
    rank Pareto frontiers (``repro explore`` on the command line).
``repro.serve``
    Online serving: streaming task ingestion with admission control,
    SLO-aware deadline scheduling, simulated autoscaling, and an online
    tuning loop (``repro serve`` on the command line).
"""

__version__ = "1.0.0"

from repro import errors  # noqa: F401  (re-export for convenience)
from repro.model import (  # noqa: F401
    Hybrid,
    Interconnect,
    Master,
    MemoryRegion,
    Platform,
    PlatformBuilder,
    Property,
    Worker,
)
from repro.obs import Tracer, span, use_tracer  # noqa: F401
from repro.pdl import (  # noqa: F401
    load_platform,
    parse_pdl,
    parse_pdl_file,
    write_pdl,
    write_pdl_file,
)

__all__ = [
    "__version__",
    "errors",
    "Master",
    "Hybrid",
    "Worker",
    "MemoryRegion",
    "Interconnect",
    "Platform",
    "PlatformBuilder",
    "Property",
    "parse_pdl",
    "parse_pdl_file",
    "write_pdl",
    "write_pdl_file",
    "load_platform",
    "Tracer",
    "span",
    "use_tracer",
    "Session",
    "SelectionReport",
    "run_exploration",
    "ServeEngine",
    "ServeConfig",
]

#: heavyweight exports resolved lazily (PEP 562) so ``import repro``
#: stays light: Session pulls the toolchain in on first attribute access
_LAZY = {
    "Session": ("repro.session", "Session"),
    "SelectionReport": ("repro.cascabel.selection", "SelectionReport"),
    "run_exploration": ("repro.explore.sweep", "run_exploration"),
    "ServeEngine": ("repro.serve.engine", "ServeEngine"),
    "ServeConfig": ("repro.serve.engine", "ServeConfig"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
