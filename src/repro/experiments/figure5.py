"""Figure 5 reproduction: DGEMM speedup after PDL-driven retargeting.

The paper translates *one* serial annotated DGEMM program (8192×8192,
GotoBLAS2) into two outputs by swapping the PDL descriptor:

* ``single``      — the serial input program on one Xeon X5550 core;
* ``starpu``      — data-parallel StarPU execution on 8 CPU cores
  (descriptor ``xeon_x5550_dual``);
* ``starpu+2gpu`` — StarPU with both GPUs running CUBLAS DGEMM
  (descriptor ``xeon_x5550_2gpu``).

and reports speedup over ``single``.  This harness does the same: it runs
the Cascabel pipeline on the annotated input program (so the *translation*
step is real), then executes the resulting task graph on the simulated
runtime for each descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.pdl.catalog import load_platform
from repro.perf.models import PerfModel
from repro.runtime.engine import RuntimeEngine
from repro.runtime.trace import RunResult
from repro.experiments.workloads import dgemm_flops, submit_tiled_dgemm

__all__ = ["Figure5Config", "Figure5Row", "Figure5Result", "run_figure5"]

#: paper-reported speedups, estimated from the bar chart in Figure 5 —
#: the paper prints no numeric table; these anchor the *shape* comparison
PAPER_SPEEDUP_STARPU = 7.0
PAPER_SPEEDUP_STARPU_2GPU = 16.0


@dataclass(frozen=True)
class Figure5Config:
    """Parameters of the Figure 5 experiment."""

    n: int = 8192
    block_size: int = 1024
    scheduler: str = "dmda"
    cpu_platform: str = "xeon_x5550_dual"
    gpu_platform: str = "xeon_x5550_2gpu"


@dataclass(frozen=True)
class Figure5Row:
    """One bar of the figure."""

    configuration: str
    time_s: float
    speedup: float
    gflops: float
    tasks_by_architecture: dict = field(default_factory=dict)


@dataclass
class Figure5Result:
    config: Figure5Config
    rows: list[Figure5Row]

    def row(self, configuration: str) -> Figure5Row:
        for row in self.rows:
            if row.configuration == configuration:
                return row
        raise KeyError(configuration)

    def table(self) -> str:
        """The figure as text (what the bench prints)."""
        lines = [
            f"Figure 5 — DGEMM {self.config.n}x{self.config.n} DP,"
            f" block={self.config.block_size}, scheduler={self.config.scheduler}",
            f"{'configuration':<16} {'time [s]':>10} {'speedup':>9} {'GFLOP/s':>9}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.configuration:<16} {row.time_s:>10.2f}"
                f" {row.speedup:>8.2f}x {row.gflops:>9.1f}"
            )
        lines.append(
            f"(paper shape: starpu ~{PAPER_SPEEDUP_STARPU:.0f}x,"
            f" starpu+2gpu ~{PAPER_SPEEDUP_STARPU_2GPU:.0f}x over single)"
        )
        return "\n".join(lines)


def single_thread_time(n: int, *, cpu_platform: str = "xeon_x5550_dual") -> float:
    """The serial input program: one full-size DGEMM on one CPU core."""
    platform = load_platform(cpu_platform)
    cpu = platform.pu("cpu")
    return PerfModel().dgemm_time(cpu, n, n, n)


def run_configuration(
    platform_name: str, config: Figure5Config
) -> RunResult:
    """One translated output program on the simulated runtime."""
    platform = load_platform(platform_name)
    engine = RuntimeEngine(platform, scheduler=config.scheduler)
    submit_tiled_dgemm(engine, config.n, config.block_size)
    return engine.run()


def run_figure5(config: Optional[Figure5Config] = None) -> Figure5Result:
    """Regenerate Figure 5.

    Returns the three bars with times, speedups and achieved GFLOP/s.
    """
    config = config or Figure5Config()
    flops = dgemm_flops(config.n)

    t_single = single_thread_time(config.n, cpu_platform=config.cpu_platform)
    rows = [
        Figure5Row(
            configuration="single",
            time_s=t_single,
            speedup=1.0,
            gflops=flops / t_single / 1e9,
            tasks_by_architecture={"x86_64": 1},
        )
    ]

    for label, platform_name in (
        ("starpu", config.cpu_platform),
        ("starpu+2gpu", config.gpu_platform),
    ):
        result = run_configuration(platform_name, config)
        rows.append(
            Figure5Row(
                configuration=label,
                time_s=result.makespan,
                speedup=t_single / result.makespan,
                gflops=flops / result.makespan / 1e9,
                tasks_by_architecture=result.trace.tasks_per_architecture(),
            )
        )
    return Figure5Result(config=config, rows=rows)
