"""Workload builders shared by experiments, benchmarks and examples.

The paper's evaluation workload is a blocked double-precision matrix
multiplication (DGEMM, 8192×8192) run through the StarPU-style runtime.
:func:`submit_tiled_dgemm` is the canonical builder: it partitions the
three matrices into a ``p × p`` tile grid and submits the classic
``C[i,j] += A[i,k] · B[k,j]`` task graph (``p³`` tasks, RAW-chained per C
tile), which is what StarPU's DGEMM example does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DistributionError
from repro.runtime.data import DataHandle
from repro.runtime.engine import RuntimeEngine

__all__ = [
    "DgemmHandles",
    "submit_tiled_dgemm",
    "submit_vecadd",
    "submit_tiled_cholesky",
    "dgemm_flops",
    "cholesky_flops",
]


def dgemm_flops(n: int) -> float:
    """FLOPs of an n×n×n double-precision matrix multiply."""
    return 2.0 * float(n) ** 3


@dataclass
class DgemmHandles:
    """Root handles of one tiled DGEMM submission."""

    A: DataHandle
    B: DataHandle
    C: DataHandle
    n: int
    block_size: int

    @property
    def tiles_per_dim(self) -> int:
        return self.n // self.block_size

    @property
    def task_count(self) -> int:
        return self.tiles_per_dim**3

    @property
    def flops(self) -> float:
        return dgemm_flops(self.n)


def submit_tiled_dgemm(
    engine: RuntimeEngine,
    n: int,
    block_size: int,
    *,
    materialize: bool = False,
    rng_seed: int = 7,
) -> DgemmHandles:
    """Partition and submit a blocked ``C += A·B`` onto ``engine``.

    Parameters
    ----------
    engine:
        A fresh engine (no prior run).
    n:
        Matrix dimension; must be a multiple of ``block_size``.
    block_size:
        Tile edge length.
    materialize:
        Allocate real arrays (needed for functional validation / real
        mode).  The Figure-5 size (8192) at float64 is 3 × 512 MiB — keep
        this off for timing-only simulation.
    rng_seed:
        Seed for input data when materializing.
    """
    if n % block_size != 0:
        raise DistributionError(
            f"matrix size {n} is not a multiple of block size {block_size}"
        )
    p = n // block_size

    if materialize:
        rng = np.random.default_rng(rng_seed)
        A = engine.register(rng.standard_normal((n, n)), name="A")
        B = engine.register(rng.standard_normal((n, n)), name="B")
        C = engine.register(np.zeros((n, n)), name="C")
    else:
        A = engine.register(shape=(n, n), name="A")
        B = engine.register(shape=(n, n), name="B")
        C = engine.register(shape=(n, n), name="C")

    tiles_a = A.partition_tiles(p, p)
    tiles_b = B.partition_tiles(p, p)
    tiles_c = C.partition_tiles(p, p)

    for i in range(p):
        for j in range(p):
            for k in range(p):
                engine.submit(
                    "dgemm",
                    [
                        (tiles_c[i][j], "rw"),
                        (tiles_a[i][k], "r"),
                        (tiles_b[k][j], "r"),
                    ],
                    dims=(block_size, block_size, block_size),
                    tag=f"dgemm[{i},{j},{k}]",
                )
    return DgemmHandles(A=A, B=B, C=C, n=n, block_size=block_size)


def cholesky_flops(n: int) -> float:
    """FLOPs of an n×n double-precision Cholesky factorization."""
    return float(n) ** 3 / 3.0


def submit_tiled_cholesky(
    engine: RuntimeEngine,
    n: int,
    block_size: int,
    *,
    materialize: bool = False,
    rng_seed: int = 11,
) -> DataHandle:
    """Submit the classic 4-kernel tiled Cholesky task graph.

    The right-looking algorithm over a ``p × p`` tile grid::

        for k in 0..p:   POTRF(A[k,k])
          for i > k:     TRSM (A[i,k], A[k,k])
          for i > k:     SYRK (A[i,i], A[i,k])
            for k<j<i:   GEMM (A[i,j], A[i,k], A[j,k])

    This is the second workload the paper's introduction motivates
    (irregular dependencies, mixed kernel costs) and a standard StarPU
    showcase.  Returns the root handle of A (factorized in place; lower
    triangle holds L when executed functionally).
    """
    if n % block_size != 0:
        raise DistributionError(
            f"matrix size {n} is not a multiple of block size {block_size}"
        )
    p = n // block_size
    if materialize:
        rng = np.random.default_rng(rng_seed)
        m = rng.standard_normal((n, n))
        spd = m @ m.T + n * np.eye(n)
        A = engine.register(spd, name="A")
    else:
        A = engine.register(shape=(n, n), name="A")
    tiles = A.partition_tiles(p, p)
    bs = block_size

    for k in range(p):
        engine.submit(
            "dpotrf", [(tiles[k][k], "rw")], dims=(bs,), tag=f"potrf[{k}]"
        )
        for i in range(k + 1, p):
            engine.submit(
                "dtrsm",
                [(tiles[i][k], "rw"), (tiles[k][k], "r")],
                dims=(bs,),
                tag=f"trsm[{i},{k}]",
            )
        for i in range(k + 1, p):
            engine.submit(
                "dsyrk",
                [(tiles[i][i], "rw"), (tiles[i][k], "r")],
                dims=(bs,),
                tag=f"syrk[{i},{k}]",
            )
            for j in range(k + 1, i):
                engine.submit(
                    "dgemm_nt",
                    [(tiles[i][j], "rw"), (tiles[i][k], "r"), (tiles[j][k], "r")],
                    dims=(bs, bs, bs),
                    tag=f"gemm[{i},{j},{k}]",
                )
    return A


def submit_vecadd(
    engine: RuntimeEngine,
    n: int,
    nparts: int,
    *,
    materialize: bool = False,
) -> tuple[DataHandle, DataHandle]:
    """The paper's §IV-A running example: ``A += B`` with BLOCK distribution.

    Mirrors the annotated ``vectoradd`` task (``A: readwrite, B: read``,
    ``A:BLOCK:N, B:BLOCK:N``).
    """
    if materialize:
        rng = np.random.default_rng(3)
        A = engine.register(rng.standard_normal(n), name="A")
        B = engine.register(rng.standard_normal(n), name="B")
    else:
        A = engine.register(shape=(n,), name="A")
        B = engine.register(shape=(n,), name="B")
    parts_a = A.partition_rows(nparts)
    parts_b = B.partition_rows(nparts)
    for idx, (pa, pb) in enumerate(zip(parts_a, parts_b)):
        engine.submit(
            "dvecadd",
            [(pa, "rw"), (pb, "r")],
            dims=(pa.shape[0],),
            tag=f"vecadd[{idx}]",
        )
    return A, B
