"""Ablation and scaling experiments around the Figure-5 setup.

These are the experiments the paper's design discussion implies but does
not run (it is "ongoing work"): scheduler-policy ablation, block-size
sweep, and PDL scalability on many-core descriptors.  Each returns plain
dataclasses; the corresponding benchmarks print them as tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.model.builder import PlatformBuilder
from repro.model.platform import Platform
from repro.pdl.catalog import load_platform
from repro.runtime.engine import RuntimeEngine
from repro.experiments.workloads import dgemm_flops, submit_tiled_dgemm

__all__ = [
    "SchedulerAblationRow",
    "scheduler_ablation",
    "BlockSizeRow",
    "block_size_sweep",
    "synthetic_manycore_platform",
    "synthetic_mesh_platform",
]


@dataclass(frozen=True)
class SchedulerAblationRow:
    scheduler: str
    time_s: float
    gflops: float
    transfers: int
    bytes_transferred: float
    tasks_on_gpu: int


def scheduler_ablation(
    *,
    platform_name: str = "xeon_x5550_2gpu",
    n: int = 8192,
    block_size: int = 1024,
    schedulers: Sequence[str] = ("eager", "ws", "dm", "dmda", "random"),
) -> list[SchedulerAblationRow]:
    """XTRA-SCHED: the Figure-5 workload under each scheduling policy."""
    rows = []
    flops = dgemm_flops(n)
    for name in schedulers:
        engine = RuntimeEngine(load_platform(platform_name), scheduler=name)
        submit_tiled_dgemm(engine, n, block_size)
        result = engine.run()
        rows.append(
            SchedulerAblationRow(
                scheduler=name,
                time_s=result.makespan,
                gflops=flops / result.makespan / 1e9,
                transfers=result.transfer_count,
                bytes_transferred=result.bytes_transferred,
                tasks_on_gpu=result.trace.tasks_per_architecture().get("gpu", 0),
            )
        )
    return rows


@dataclass(frozen=True)
class BlockSizeRow:
    block_size: int
    tasks: int
    time_s: float
    gflops: float


def block_size_sweep(
    *,
    platform_name: str = "xeon_x5550_2gpu",
    n: int = 8192,
    block_sizes: Sequence[int] = (256, 512, 1024, 2048, 4096),
    scheduler: str = "dmda",
) -> list[BlockSizeRow]:
    """Granularity sweep: too-small tiles drown in overhead/launch cost,
    too-large tiles starve the workers — the classic U-shape."""
    rows = []
    flops = dgemm_flops(n)
    for bs in block_sizes:
        engine = RuntimeEngine(load_platform(platform_name), scheduler=scheduler)
        handles = submit_tiled_dgemm(engine, n, bs)
        result = engine.run()
        rows.append(
            BlockSizeRow(
                block_size=bs,
                tasks=handles.task_count,
                time_s=result.makespan,
                gflops=flops / result.makespan / 1e9,
            )
        )
    return rows


def synthetic_mesh_platform(
    rows: int,
    cols: int,
    *,
    name: Optional[str] = None,
    link_bandwidth: str = "16 GB/s",
    link_latency: str = "50 ns",
    distributed_memory: bool = False,
) -> Platform:
    """A 2-D mesh NoC platform (many-core tile architectures).

    One Master (the host/IO tile) controls a ``rows × cols`` grid of
    Workers connected by nearest-neighbour links — the topology of
    tiled many-cores (SCC/RAW/Tilera-class) the paper's "future
    heterogeneous many-core systems" wording anticipates.  The Master
    attaches to tile ``t0_0``.  Routing through the mesh exercises
    multi-hop :mod:`repro.query.paths` queries.

    With ``distributed_memory=True`` every tile owns a local memory
    region, so the runtime gives each tile its own memory node and task
    operands genuinely travel hop-by-hop over the (contended) NoC.
    """
    builder = PlatformBuilder(name or f"mesh-{rows}x{cols}")
    builder.master("host", architecture="x86_64", properties={"RUNTIME": "starpu"})
    for r in range(rows):
        for c in range(cols):
            builder.worker(
                f"t{r}_{c}",
                architecture="x86_64",
                properties={
                    "PEAK_GFLOPS_DP": "4.0",
                    "DGEMM_EFFICIENCY": "0.85",
                    "MESH_ROW": str(r),
                    "MESH_COL": str(c),
                },
                groups=("tiles",),
            )
    # host injects at the corner tile
    builder.interconnect(
        "host", "t0_0", type="IO", bandwidth=link_bandwidth,
        latency=link_latency, id="io",
    )
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                builder.interconnect(
                    f"t{r}_{c}", f"t{r}_{c + 1}", type="NoC",
                    bandwidth=link_bandwidth, latency=link_latency,
                    id=f"h{r}_{c}",
                )
            if r + 1 < rows:
                builder.interconnect(
                    f"t{r}_{c}", f"t{r + 1}_{c}", type="NoC",
                    bandwidth=link_bandwidth, latency=link_latency,
                    id=f"v{r}_{c}",
                )
    platform = builder.build()
    if distributed_memory:
        from repro.model.entities import MemoryRegion
        from repro.model.properties import Property, PropertyValue

        for pu in platform.workers():
            region = MemoryRegion(f"{pu.id}-mem")
            region.descriptor.add(
                Property("SIZE", PropertyValue("64", "MB"))
            )
            region.descriptor.add(Property("KIND", "tile-local"))
            pu.add_memory_region(region)
        platform.validate()
    return platform


def synthetic_manycore_platform(
    n_workers: int,
    *,
    name: Optional[str] = None,
    architectures: Sequence[str] = ("x86_64", "gpu"),
    groups_per_worker: int = 2,
) -> Platform:
    """A synthetic many-core PDL description with ``n_workers`` workers.

    Used by the PDL scalability experiments (XTRA-SCALE): the paper claims
    the language targets "current and future heterogeneous many-core
    systems", so parsing/validating/querying must stay tractable as PU
    counts grow.
    """
    builder = PlatformBuilder(name or f"manycore-{n_workers}")
    builder.master("host", architecture="x86_64", properties={"RUNTIME": "starpu"})
    for i in range(n_workers):
        arch = architectures[i % len(architectures)]
        groups = tuple(
            f"group{(i + g) % max(2, n_workers // 4)}" for g in range(groups_per_worker)
        )
        builder.worker(
            f"w{i}",
            architecture=arch,
            properties={
                "PEAK_GFLOPS_DP": str(10.0 + (i % 7)),
                "DGEMM_EFFICIENCY": "0.8",
                "MODEL": f"synthetic-{arch}-{i % 3}",
            },
            groups=groups,
        )
        builder.interconnect(
            "host", f"w{i}", type="PCIe" if arch == "gpu" else "SHM",
            bandwidth="5.7 GB/s" if arch == "gpu" else "25.6 GB/s",
            id=f"link{i}",
        )
    return builder.build()
