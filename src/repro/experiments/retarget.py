"""XTRA-RETARGET: one input program, many targets, zero source edits.

Operationalizes the paper's headline claim ("by varying the target PDL
descriptor our compiler can generate code for different target
architectures without the need to modify the source program"): translate
the Figure-5 input program for every shipped descriptor and record what
changed — backend, selected variants, generated files, build plan — while
asserting the input program text was never touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cascabel.cli import sample_source
from repro.cascabel.driver import TranslationResult, translate
from repro.cascabel.frontend import parse_program

__all__ = ["RetargetRow", "retarget_experiment", "DEFAULT_TARGETS"]

DEFAULT_TARGETS = (
    "xeon_x5550_dual",
    "xeon_x5550_2gpu",
    "cell_qs22",
    "hybrid_cluster",
)


@dataclass(frozen=True)
class RetargetRow:
    """One (program, target) translation."""

    platform: str
    backend: str
    variants: str  # comma-joined selected variant names
    files: int
    output_lines: int
    compilers: str  # comma-joined compiler set of the build plan


def retarget_experiment(
    *,
    sample: str = "dgemm_serial",
    targets: Sequence[str] = DEFAULT_TARGETS,
) -> tuple[list[RetargetRow], list[TranslationResult]]:
    """Translate ``sample`` for each target; returns rows + full results.

    Raises if any translation mutates the shared input program (it must
    not — the program object is reused across targets).
    """
    source = sample_source(sample)
    program = parse_program(source, filename=f"<sample:{sample}>")
    original_text = program.source

    rows: list[RetargetRow] = []
    results: list[TranslationResult] = []
    for target in targets:
        result = translate(program, target)
        if program.source != original_text:
            raise AssertionError(
                f"translation for {target!r} modified the input program"
            )
        variant_names = sorted(
            v.name
            for variants in result.selection.selected.values()
            for v in variants
        )
        compilers = sorted(
            {step.compiler for step in result.plan.steps}
            | ({result.plan.link.linker} if result.plan.link else set())
        )
        rows.append(
            RetargetRow(
                platform=result.platform.name,
                backend=result.backend_name,
                variants=",".join(variant_names),
                files=len(result.output.files),
                output_lines=sum(f.line_count for f in result.output.files),
                compilers=",".join(compilers),
            )
        )
        results.append(result)
    return rows, results
