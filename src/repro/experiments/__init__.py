"""Experiment harnesses regenerating the paper's evaluation (and ablations).

See DESIGN.md's experiment index: ``figure5`` is the paper's quantitative
result; ``scenarios`` holds the ablations; ``workloads`` the shared task
graph builders; ``reporting`` the table renderers.
"""

from repro.experiments.figure5 import (
    Figure5Config,
    Figure5Result,
    Figure5Row,
    run_configuration,
    run_figure5,
    single_thread_time,
)
from repro.experiments.reporting import ascii_bar_chart, dataclass_table, format_table
from repro.experiments.retarget import (
    DEFAULT_TARGETS,
    RetargetRow,
    retarget_experiment,
)
from repro.experiments.scenarios import (
    BlockSizeRow,
    SchedulerAblationRow,
    block_size_sweep,
    scheduler_ablation,
    synthetic_manycore_platform,
    synthetic_mesh_platform,
)
from repro.experiments.workloads import (
    DgemmHandles,
    cholesky_flops,
    dgemm_flops,
    submit_tiled_cholesky,
    submit_tiled_dgemm,
    submit_vecadd,
)

__all__ = [
    "Figure5Config",
    "Figure5Result",
    "Figure5Row",
    "run_figure5",
    "run_configuration",
    "single_thread_time",
    "scheduler_ablation",
    "SchedulerAblationRow",
    "block_size_sweep",
    "BlockSizeRow",
    "synthetic_manycore_platform",
    "synthetic_mesh_platform",
    "retarget_experiment",
    "RetargetRow",
    "DEFAULT_TARGETS",
    "submit_tiled_dgemm",
    "submit_tiled_cholesky",
    "submit_vecadd",
    "DgemmHandles",
    "dgemm_flops",
    "cholesky_flops",
    "format_table",
    "dataclass_table",
    "ascii_bar_chart",
]
