"""Plain-text table rendering for experiment results.

Benchmarks print their regenerated figures/tables through these helpers so
all output shares one format (and EXPERIMENTS.md can quote it verbatim).
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Iterable, Optional, Sequence

__all__ = ["format_table", "dataclass_table", "ascii_bar_chart"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def dataclass_table(rows: Sequence, *, title: Optional[str] = None) -> str:
    """Table from a homogeneous list of dataclass instances."""
    if not rows:
        return title or "(empty)"
    first = rows[0]
    if not is_dataclass(first):
        raise TypeError(f"expected dataclass rows, got {type(first).__name__}")
    names = [f.name for f in fields(first)]
    return format_table(
        names,
        [[getattr(row, name) for name in names] for row in rows],
        title=title,
    )


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """Horizontal ASCII bar chart (how the benches render Figure 5)."""
    if len(labels) != len(values):
        raise ValueError("labels and values length mismatch")
    peak = max(values) if values else 1.0
    label_width = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak)) if peak > 0 else ""
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}"
    if isinstance(value, dict):
        return ",".join(f"{k}={v}" for k, v in sorted(value.items()))
    return str(value)


def _numeric(text: str) -> bool:
    try:
        float(text.replace(",", ""))
        return True
    except ValueError:
        return False
