"""Dynamic platform descriptors (paper §VI future work, implemented).

Events mutate descriptors through the unfixed-property mechanism;
:class:`DynamicPlatform` adds revisions, audit logging and subscriptions;
:func:`run_across_revisions` re-derives the runtime from each snapshot.
"""

from repro.dynamic.events import (
    AVAILABLE_PROP,
    INTERCONNECT_PROPS,
    FrequencyChange,
    GroupChange,
    PlatformEvent,
    PropertyUpdate,
    PUOffline,
    PUOnline,
    TaskFault,
    WorkerFault,
)
from repro.dynamic.monitor import AppliedEvent, DynamicPlatform, available_workers
from repro.dynamic.rebalance import RevisionRun, run_across_revisions

__all__ = [
    "PlatformEvent",
    "PUOffline",
    "PUOnline",
    "WorkerFault",
    "TaskFault",
    "FrequencyChange",
    "PropertyUpdate",
    "GroupChange",
    "AVAILABLE_PROP",
    "INTERCONNECT_PROPS",
    "DynamicPlatform",
    "AppliedEvent",
    "available_workers",
    "RevisionRun",
    "run_across_revisions",
]
