"""Descriptor-driven re-scheduling across dynamic revisions.

The experiment the paper's conclusion asks for: as availability/DVFS
events hit the descriptor, rebuild the runtime from the *current*
snapshot and measure how the same workload fares.  Because the engine is
constructed purely from the descriptor, reacting to change is literally
re-reading the platform description — the PDL as the single source of
truth for dynamic schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.runtime.engine import RuntimeEngine
from repro.runtime.trace import RunResult
from repro.dynamic.events import PlatformEvent
from repro.dynamic.monitor import DynamicPlatform

__all__ = ["RevisionRun", "run_across_revisions"]


@dataclass(frozen=True)
class RevisionRun:
    """Workload outcome at one descriptor revision."""

    revision: int
    event: str  # the event that produced this revision ("" for baseline)
    lanes: int
    makespan: float
    tasks_by_architecture: dict

    def __repr__(self) -> str:
        return (
            f"RevisionRun(r{self.revision}, lanes={self.lanes},"
            f" makespan={self.makespan:.4f})"
        )


def run_across_revisions(
    dynamic: DynamicPlatform,
    submit: Callable[[RuntimeEngine], object],
    events: Sequence[PlatformEvent],
    *,
    scheduler: str = "dmda",
) -> list[RevisionRun]:
    """Run ``submit``'s workload at the current revision and after each event.

    Parameters
    ----------
    dynamic:
        The monitored platform (mutated in place by the events).
    submit:
        Callback receiving a fresh engine; submits the workload.
    events:
        Events applied one at a time; one run per resulting revision.

    Returns one :class:`RevisionRun` per run (baseline first).
    """
    runs: list[RevisionRun] = []

    def run_now(event_text: str) -> None:
        engine = RuntimeEngine(dynamic.snapshot(), scheduler=scheduler)
        submit(engine)
        result: RunResult = engine.run()
        runs.append(
            RevisionRun(
                revision=dynamic.revision,
                event=event_text,
                lanes=sum(w.pu.quantity if w.entity_id == w.instance_id else 1
                          for w in engine.workers),
                makespan=result.makespan,
                tasks_by_architecture=result.trace.tasks_per_architecture(),
            )
        )

    run_now("")  # baseline
    for event in events:
        dynamic.apply(event)
        run_now(event.describe())
    return runs
