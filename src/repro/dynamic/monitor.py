"""Dynamic platform monitor: revisioned descriptor state + subscriptions.

Wraps one :class:`~repro.model.platform.Platform` and funnels every
mutation through :class:`~repro.dynamic.events.PlatformEvent` objects.
Each applied event bumps a revision counter, lands in an audit log, and
is pushed to subscribers (e.g. a scheduler wanting to react, or the
re-mapping helper below).  ``snapshot()`` hands out immutable copies for
engines to run against — the paper's "later instantiation by a runtime"
flow, iterated over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.model.platform import Platform
from repro.dynamic.events import AVAILABLE_PROP, PlatformEvent

__all__ = ["AppliedEvent", "DynamicPlatform", "available_workers"]


@dataclass(frozen=True)
class AppliedEvent:
    """Audit-log entry: one event at one revision."""

    revision: int
    event: PlatformEvent

    def __repr__(self) -> str:
        return f"AppliedEvent(r{self.revision}, {self.event.describe()})"


def available_workers(platform: Platform) -> list:
    """Worker PUs currently marked available (AVAILABLE != false)."""
    out = []
    for pu in platform.walk():
        if pu.kind != "Worker":
            continue
        prop = pu.descriptor.find(AVAILABLE_PROP)
        if prop is not None:
            try:
                if not prop.value.as_bool():
                    continue
            except Exception:
                pass  # unparsable availability counts as available
        out.append(pu)
    return out


class DynamicPlatform:
    """A platform description that changes over time."""

    def __init__(self, platform: Platform):
        self._platform = platform
        self._revision = 0
        self._log: list[AppliedEvent] = []
        self._subscribers: list[Callable[[int, PlatformEvent], None]] = []

    # -- state ----------------------------------------------------------------
    @property
    def revision(self) -> int:
        return self._revision

    @property
    def platform(self) -> Platform:
        """The live (mutable) description; prefer :meth:`snapshot` for runs."""
        return self._platform

    @property
    def log(self) -> list[AppliedEvent]:
        return list(self._log)

    def snapshot(self) -> Platform:
        """Deep copy of the current description (safe to hand to engines)."""
        return self._platform.copy()

    # -- mutation -----------------------------------------------------------------
    def apply(self, event: PlatformEvent) -> int:
        """Apply one event; returns the new revision."""
        event.apply(self._platform)  # raises before any bookkeeping on error
        self._revision += 1
        entry = AppliedEvent(self._revision, event)
        self._log.append(entry)
        for subscriber in list(self._subscribers):
            subscriber(self._revision, event)
        return self._revision

    def apply_all(self, events) -> int:
        for event in events:
            self.apply(event)
        return self._revision

    # -- subscriptions ---------------------------------------------------------------
    def subscribe(self, callback: Callable[[int, PlatformEvent], None]) -> Callable:
        """Register ``callback(revision, event)``; returns an unsubscriber."""
        self._subscribers.append(callback)

        def unsubscribe():
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    # -- views ------------------------------------------------------------------------
    def available_workers(self) -> list:
        return available_workers(self._platform)

    def available_lane_count(self) -> int:
        return sum(pu.quantity for pu in self.available_workers())

    def events_for(self, pu_id: str) -> list[AppliedEvent]:
        return [e for e in self._log if e.event.pu_id == pu_id]

    def __repr__(self) -> str:
        return (
            f"DynamicPlatform({self._platform.name!r}, r{self._revision},"
            f" {self.available_lane_count()} lanes up)"
        )
