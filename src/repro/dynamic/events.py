"""Dynamic platform events (paper §VI future work).

"We have observed that tracking dynamically changing system resources via
platform descriptors can be difficult.  In future we will investigate how
platform descriptors could be utilized for supporting highly dynamic
run-time schedulers."

We model dynamism as a stream of *events* applied to a platform
description.  Each event is a small, auditable mutation of the
descriptor — availability flips, frequency scaling (DVFS), and
re-instantiation of unfixed properties (the §III-B late-binding
mechanism used at runtime rather than at composition time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ModelError
from repro.model.platform import Platform
from repro.model.properties import Property, PropertyValue

__all__ = [
    "PlatformEvent",
    "PUOffline",
    "PUOnline",
    "WorkerFault",
    "TaskFault",
    "FrequencyChange",
    "PropertyUpdate",
    "GroupChange",
    "AVAILABLE_PROP",
    "INTERCONNECT_PROPS",
]

#: descriptor property carrying dynamic availability (unfixed by design)
AVAILABLE_PROP = "AVAILABLE"

#: descriptor properties that parameterize the interconnect fabric; an
#: event updating one of these invalidates memoized transfer routes
#: (and, for CONTENTION_BANDWIDTH, the contention-domain tables)
INTERCONNECT_PROPS = frozenset(
    {"BANDWIDTH", "LATENCY", "LINKWIDTH", "CONTENTION_BANDWIDTH"}
)


@dataclass(frozen=True)
class PlatformEvent:
    """Base class: one observable change to a platform."""

    pu_id: str

    def apply(self, platform: Platform) -> None:
        raise NotImplementedError

    @property
    def affects_interconnect(self) -> bool:
        """Whether the event invalidates cached transfer routes."""
        return False

    def describe(self) -> str:
        return f"{type(self).__name__}({self.pu_id})"

    def _pu(self, platform: Platform):
        pu = platform.find_pu(self.pu_id)
        if pu is None:
            raise ModelError(
                f"event {self.describe()}: unknown PU {self.pu_id!r}"
            )
        return pu


def _set_unfixed(descriptor, name: str, value, unit=None) -> None:
    """Set an *unfixed* property, creating it if needed.

    Dynamic state must stay re-instantiable, so events never create fixed
    properties; attempting to overwrite a hand-authored fixed property of
    the same name is an error surfaced to the caller.
    """
    existing = descriptor.find(name)
    pv = PropertyValue(value, unit)
    if existing is None:
        descriptor.add(Property(name, pv, fixed=False, source="dynamic-event"))
    else:
        existing.instantiate(pv)  # raises PropertyError when fixed


@dataclass(frozen=True)
class PUOffline(PlatformEvent):
    """A processing unit became unavailable (failure, power capping...)."""

    reason: str = ""

    def apply(self, platform: Platform) -> None:
        pu = self._pu(platform)
        _set_unfixed(pu.descriptor, AVAILABLE_PROP, "false")

    def describe(self) -> str:
        extra = f": {self.reason}" if self.reason else ""
        return f"PUOffline({self.pu_id}{extra})"


@dataclass(frozen=True)
class PUOnline(PlatformEvent):
    """A previously offline processing unit came back."""

    def apply(self, platform: Platform) -> None:
        pu = self._pu(platform)
        _set_unfixed(pu.descriptor, AVAILABLE_PROP, "true")


@dataclass(frozen=True)
class WorkerFault(PUOffline):
    """A worker lane *died* abruptly (crash, ECC fault, watchdog reset).

    Stronger than :class:`PUOffline`: the graceful-offline semantics let
    the lane finish its in-flight task, a fault does not.  The runtime
    aborts whatever was executing on the lane, requeues it (and the
    lane's queued tasks) to surviving compatible workers, and marks the
    lane retired — a later :class:`PUOnline` does not revive it.
    """

    def describe(self) -> str:
        extra = f": {self.reason}" if self.reason else ""
        return f"WorkerFault({self.pu_id}{extra})"


@dataclass(frozen=True)
class TaskFault(PlatformEvent):
    """Inject a (transient) failure into one task by its trace tag.

    Not a descriptor mutation — the platform is untouched — but delivered
    through the same mid-run event stream so fault scenarios compose with
    availability and DVFS events.  If the target task is running when the
    event fires, the attempt is aborted mid-flight; if it has not started
    yet, its next start attempt fails.  Either way the runtime's retry
    policy (:class:`repro.runtime.faults.FaultPolicy`) decides whether it
    gets another attempt.
    """

    pu_id: str = ""
    task_tag: str = ""

    def apply(self, platform: Platform) -> None:
        if not self.task_tag:
            raise ModelError("TaskFault requires a task_tag")
        # no descriptor change; the engine interprets the event

    def describe(self) -> str:
        return f"TaskFault({self.task_tag})"


@dataclass(frozen=True)
class FrequencyChange(PlatformEvent):
    """DVFS: the PU's clock changed; dependent rates scale with it.

    Updates ``FREQUENCY`` and rescales ``PEAK_GFLOPS_DP`` proportionally
    when present (both as unfixed properties), so performance models pick
    the new rate up transparently.
    """

    new_ghz: float = 0.0

    def apply(self, platform: Platform) -> None:
        if self.new_ghz <= 0:
            raise ModelError(
                f"FrequencyChange({self.pu_id}): frequency must be positive"
            )
        pu = self._pu(platform)
        old = pu.descriptor.get_float("FREQUENCY")
        peak_prop = pu.descriptor.find("PEAK_GFLOPS_DP")
        if old and peak_prop is not None:
            scale = self.new_ghz / old
            new_peak = peak_prop.value.as_float() * scale
            if peak_prop.fixed:
                # replace the fixed calibration value with a dynamic one
                pu.descriptor.remove("PEAK_GFLOPS_DP")
                _set_unfixed(pu.descriptor, "PEAK_GFLOPS_DP", f"{new_peak:.6g}")
            else:
                peak_prop.instantiate(f"{new_peak:.6g}")
        freq_prop = pu.descriptor.find("FREQUENCY")
        if freq_prop is not None and freq_prop.fixed:
            pu.descriptor.remove("FREQUENCY")
        _set_unfixed(pu.descriptor, "FREQUENCY", f"{self.new_ghz:.6g}", "GHz")

    def describe(self) -> str:
        return f"FrequencyChange({self.pu_id} -> {self.new_ghz} GHz)"


@dataclass(frozen=True)
class PropertyUpdate(PlatformEvent):
    """Re-instantiate (or create) an unfixed descriptor property."""

    name: str = ""
    value: str = ""
    unit: Optional[str] = None

    def apply(self, platform: Platform) -> None:
        if not self.name:
            raise ModelError("PropertyUpdate requires a property name")
        pu = self._pu(platform)
        _set_unfixed(pu.descriptor, self.name, self.value, self.unit)

    @property
    def affects_interconnect(self) -> bool:
        return self.name.upper() in INTERCONNECT_PROPS

    def describe(self) -> str:
        return f"PropertyUpdate({self.pu_id}.{self.name}={self.value})"


@dataclass(frozen=True)
class GroupChange(PlatformEvent):
    """Add or remove the PU from a LogicGroupAttribute group."""

    group: str = ""
    add: bool = True

    def apply(self, platform: Platform) -> None:
        if not self.group:
            raise ModelError("GroupChange requires a group name")
        pu = self._pu(platform)
        if self.add:
            pu.add_group(self.group)
        elif self.group in pu.groups:
            pu.groups.remove(self.group)

    def describe(self) -> str:
        verb = "+=" if self.add else "-="
        return f"GroupChange({self.pu_id} {verb} {self.group})"
