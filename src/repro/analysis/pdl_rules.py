"""Descriptor-local lint rules (``PDL0xx``).

These run over one parsed :class:`~repro.model.platform.Platform` and
check invariants the structural validator (:mod:`repro.model.validation`)
and schema checker (:mod:`repro.pdl.validator`) do not cover: physical
unit consistency, referential integrity of conventional reference
properties, interconnect reachability, link symmetry, and whether every
*unfixed* property slot can actually be filled later (by namespaced
runtime discovery or by :mod:`repro.tune.latebind`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.analysis.diagnostics import Finding, Severity, SourceLocation
from repro.errors import PathError
from repro.model.entities import Interconnect, ProcessingUnit
from repro.model.platform import Platform
from repro.model.properties import Property, UNIT_SCALES

__all__ = ["PdlContext", "RULES", "UNIT_DIMENSIONS", "LATEBIND_FILLABLE"]

#: unit → physical dimension (covers every unit in ``UNIT_SCALES``)
UNIT_DIMENSIONS: dict[str, str] = {
    **{u: "bytes" for u in ("B", "kB", "KB", "MB", "GB", "TB")},
    **{u: "frequency" for u in ("Hz", "kHz", "MHz", "GHz")},
    **{u: "bandwidth" for u in ("B/s", "kB/s", "MB/s", "GB/s")},
    **{u: "time" for u in ("s", "ms", "us", "ns")},
}

#: property names :mod:`repro.tune.latebind` can fill per owner kind;
#: anything else unfixed *and* un-namespaced has no instantiation path
LATEBIND_FILLABLE: dict[str, frozenset] = {
    "pu": frozenset({"SUSTAINED_GFLOPS_DP", "MEASURED_STREAM_BANDWIDTH_GBS"}),
    "interconnect": frozenset({"BANDWIDTH", "MEASURED_BANDWIDTH"}),
    "memory": frozenset(),
}

#: conventional reference properties → what their value must name
_REGION_REFS = ("AFFINITY", "MEMORY_REGION", "MEMORY_AFFINITY")
_GROUP_REFS = ("GROUP", "EXECUTION_GROUP", "LOGIC_GROUP")

_SUPPORTED_SCHEMA_VERSIONS = ("1.0",)


@dataclass(frozen=True)
class PdlContext:
    """Input of the PDL pack: one platform plus its display location."""

    platform: Platform
    filename: Optional[str] = None

    @property
    def location(self) -> Optional[SourceLocation]:
        if self.filename is None:
            return None
        return SourceLocation(file=self.filename)

    def properties(self) -> Iterator[tuple[str, str, str, Property]]:
        """``(owner_kind, owner_id, owner_class, prop)`` for every property;
        ``owner_class`` is a :data:`LATEBIND_FILLABLE` key."""
        for pu in self.platform.walk():
            for prop in pu.descriptor:
                yield pu.kind, pu.id, "pu", prop
            for region in pu.memory_regions:
                for prop in region.descriptor:
                    yield "MemoryRegion", region.id, "memory", prop
            for ic in pu.interconnects:
                for prop in ic.descriptor:
                    yield "Interconnect", ic.id, "interconnect", prop

    def interconnects(self) -> list[tuple[ProcessingUnit, Interconnect]]:
        out = []
        for pu in self.platform.walk():
            out.extend((pu, ic) for ic in pu.interconnects)
        return out


def _owner_label(kind: str, owner_id: str) -> str:
    return f"{kind} {owner_id!r}"


# ---------------------------------------------------------------------------
# PDL001 / PDL002 — units
# ---------------------------------------------------------------------------
def check_unit_dimensions(ctx: PdlContext) -> Iterable[Finding]:
    """Same property name used with units of different physical dimensions."""
    uses: dict[str, dict[str, list[str]]] = {}
    for kind, owner_id, _cls, prop in ctx.properties():
        unit = prop.value.unit
        dimension = UNIT_DIMENSIONS.get(unit) if unit else None
        if dimension is None:
            continue
        uses.setdefault(prop.name, {}).setdefault(dimension, []).append(
            f"{_owner_label(kind, owner_id)} ({unit})"
        )
    for name in sorted(uses):
        dimensions = uses[name]
        if len(dimensions) < 2:
            continue
        detail = "; ".join(
            f"{dim}: {', '.join(owners)}"
            for dim, owners in sorted(dimensions.items())
        )
        yield Finding(
            message=(
                f"property {name!r} mixes units of different dimensions"
                f" across the document — {detail}"
            ),
            location=ctx.location,
            subject=name,
            hint="give every use of a comparable property the same dimension",
        )


def check_unknown_units(ctx: PdlContext) -> Iterable[Finding]:
    """Units :func:`repro.model.properties.parse_quantity` would reject."""
    for kind, owner_id, _cls, prop in ctx.properties():
        unit = prop.value.unit
        if unit and unit not in UNIT_SCALES:
            yield Finding(
                message=(
                    f"{_owner_label(kind, owner_id)}: property {prop.name!r}"
                    f" has unknown unit {unit!r}"
                ),
                location=ctx.location,
                subject=owner_id,
                hint=f"known units: {', '.join(sorted(UNIT_SCALES))}",
            )


# ---------------------------------------------------------------------------
# PDL003 — dangling references
# ---------------------------------------------------------------------------
def check_dangling_references(ctx: PdlContext) -> Iterable[Finding]:
    """Reference properties naming nonexistent regions or groups."""
    region_ids = {r.id for r in ctx.platform.memory_regions()}
    groups = set(ctx.platform.groups())
    for kind, owner_id, _cls, prop in ctx.properties():
        target = prop.value.text.strip()
        if prop.name in _REGION_REFS and target not in region_ids:
            yield Finding(
                message=(
                    f"{_owner_label(kind, owner_id)}: {prop.name} references"
                    f" memory region {target!r}, which is not declared"
                ),
                location=ctx.location,
                subject=owner_id,
                hint=(
                    f"declared regions: {sorted(region_ids) or '(none)'}"
                ),
            )
        elif prop.name in _GROUP_REFS and target not in groups:
            yield Finding(
                message=(
                    f"{_owner_label(kind, owner_id)}: {prop.name} references"
                    f" LogicGroupAttribute {target!r}, which no PU declares"
                ),
                location=ctx.location,
                subject=owner_id,
                hint=f"declared groups: {sorted(groups) or '(none)'}",
            )


# ---------------------------------------------------------------------------
# PDL010 — interconnect reachability
# ---------------------------------------------------------------------------
def _memory_anchor(pu: ProcessingUnit) -> Optional[ProcessingUnit]:
    """The nearest ancestor holding a memory region — the controller
    memory a Worker's data must travel from/to."""
    for ancestor in pu.ancestors():
        if ancestor.memory_regions:
            return ancestor
    return None


def check_reachability(ctx: PdlContext) -> Iterable[Finding]:
    """Workers/Hybrids with no declared route to their controller's memory.

    Only meaningful when the document models both interconnects and
    memory regions; descriptors that omit either (e.g. minimal examples)
    imply connectivity through the control hierarchy and are skipped.
    """
    platform = ctx.platform
    if not platform.interconnects() or not platform.memory_regions():
        return
    # imported lazily: networkx stays out of the import path of callers
    # that never run this rule
    from repro.query.paths import InterconnectGraph

    graph = InterconnectGraph(platform)
    for pu in platform.walk():
        if pu.kind == "Master":
            continue
        anchor = _memory_anchor(pu)
        if anchor is None:
            continue
        if _has_route(graph, pu.id, anchor.id):
            continue
        regions = ", ".join(r.id for r in anchor.memory_regions)
        yield Finding(
            message=(
                f"{pu.kind} {pu.id!r} has no interconnect route to"
                f" {anchor.kind} {anchor.id!r}, which holds its controller"
                f" memory ({regions}) — transfers to this PU cannot be"
                f" derived"
            ),
            location=ctx.location,
            subject=pu.id,
            hint=f"declare an Interconnect between {anchor.id!r} and {pu.id!r}",
        )


def _has_route(graph, a: str, b: str) -> bool:
    for src, dst in ((a, b), (b, a)):
        try:
            graph.shortest(src, dst)
            return True
        except PathError:
            continue
    return False


# ---------------------------------------------------------------------------
# PDL011 / PDL012 — duplicate and asymmetric links
# ---------------------------------------------------------------------------
def check_duplicate_links(ctx: PdlContext) -> Iterable[Finding]:
    """More than one link of the same type between the same endpoints."""
    seen: dict[tuple, list[str]] = {}
    for _pu, ic in ctx.interconnects():
        key = (frozenset((ic.from_pu, ic.to_pu)), ic.type)
        seen.setdefault(key, []).append(ic.id)
    for (endpoints, link_type), ids in sorted(
        seen.items(), key=lambda item: sorted(item[1])
    ):
        if len(ids) < 2:
            continue
        pair = " <-> ".join(sorted(endpoints))
        yield Finding(
            message=(
                f"duplicate {link_type!r} interconnects between {pair}:"
                f" {sorted(ids)}"
            ),
            location=ctx.location,
            subject=sorted(ids)[0],
            hint="merge duplicates or give the links distinct types",
        )


def check_asymmetric_links(ctx: PdlContext) -> Iterable[Finding]:
    """Unidirectional links with no (or contradictory) return direction."""
    links = [ic for _pu, ic in ctx.interconnects()]
    for ic in links:
        if ic.bidirectional:
            continue
        reverse = [
            other
            for other in links
            if other.from_pu == ic.to_pu and other.to_pu == ic.from_pu
        ]
        if not reverse:
            yield Finding(
                message=(
                    f"interconnect {ic.id!r} ({ic.from_pu} -> {ic.to_pu}) is"
                    f" unidirectional and no link declares the return"
                    f" direction"
                ),
                location=ctx.location,
                subject=ic.id,
                hint=(
                    "mark the link bidirectional or declare the reverse"
                    " direction explicitly"
                ),
            )
            continue
        for other in reverse:
            if ic.id >= other.id:
                continue  # report each asymmetric pair once
            mismatched = [
                name
                for name, a, b in (
                    ("bandwidth", ic.bandwidth_bytes_per_s, other.bandwidth_bytes_per_s),
                    ("latency", ic.latency_s, other.latency_s),
                )
                if a is not None and b is not None and a != b
            ]
            if mismatched:
                yield Finding(
                    message=(
                        f"interconnects {ic.id!r} and {other.id!r} form a"
                        f" directed pair but disagree on"
                        f" {' and '.join(mismatched)}"
                    ),
                    location=ctx.location,
                    subject=ic.id,
                    hint="symmetric links should declare identical figures",
                )


# ---------------------------------------------------------------------------
# PDL020 / PDL021 — schema versions and subschema types
# ---------------------------------------------------------------------------
def check_schema_version(ctx: PdlContext) -> Iterable[Finding]:
    version = ctx.platform.schema_version
    if version not in _SUPPORTED_SCHEMA_VERSIONS:
        yield Finding(
            message=(
                f"document declares schemaVersion {version!r}; this"
                f" toolchain supports {', '.join(_SUPPORTED_SCHEMA_VERSIONS)}"
            ),
            location=ctx.location,
            subject=ctx.platform.name,
            hint="regenerate the descriptor against a supported schema",
        )


def check_subschema_types(ctx: PdlContext) -> Iterable[Finding]:
    """Property types no registered subschema defines (stale or unknown)."""
    from repro.pdl.schema import default_registry

    registry = default_registry()
    known_prefixes = sorted(s.prefix for s in registry.subschemas())
    for kind, owner_id, _cls, prop in ctx.properties():
        if prop.type_name is None:
            continue
        if registry.lookup_type(prop.type_name) is not None:
            continue
        prefix = prop.namespace
        if prefix and registry.subschema(prefix) is None:
            message = (
                f"{_owner_label(kind, owner_id)}: property {prop.name!r}"
                f" uses type {prop.type_name!r} from unregistered"
                f" subschema prefix {prefix!r}"
            )
            hint = f"registered subschemas: {known_prefixes}"
        else:
            sub = registry.subschema(prefix) if prefix else None
            stale = (
                f" (registered {prefix!r} is version {sub.version})"
                if sub is not None
                else ""
            )
            message = (
                f"{_owner_label(kind, owner_id)}: property {prop.name!r}"
                f" has unknown type {prop.type_name!r}{stale}"
            )
            hint = "update the subschema registration or the descriptor"
        yield Finding(
            message=message, location=ctx.location, subject=owner_id, hint=hint
        )


# ---------------------------------------------------------------------------
# PDL030 — unfixed-property flow
# ---------------------------------------------------------------------------
def check_unfixed_flow(ctx: PdlContext) -> Iterable[Finding]:
    """Unfixed slots nothing can instantiate.

    An unfixed property is fine when a later stage can fill it: properties
    with a namespaced subschema type are resolved by runtime discovery
    (§III-B), and :mod:`repro.tune.latebind` writes the measured names in
    :data:`LATEBIND_FILLABLE`.  Anything else stays unfixed forever.
    """
    for kind, owner_id, owner_class, prop in ctx.properties():
        if prop.fixed:
            continue
        if prop.namespace is not None:
            continue  # discovery fills namespaced (ocl:/cuda:/...) slots
        if prop.name in LATEBIND_FILLABLE.get(owner_class, frozenset()):
            continue
        fillable = sorted(LATEBIND_FILLABLE.get(owner_class, frozenset()))
        yield Finding(
            message=(
                f"{_owner_label(kind, owner_id)}: unfixed property"
                f" {prop.name!r} has no instantiation path — it is neither"
                f" namespaced (discovery) nor late-bindable by repro-tune"
            ),
            location=ctx.location,
            subject=owner_id,
            hint=(
                f"fix the value, give it a subschema type, or use one of"
                f" the tunable names {fillable or '(none for this entity)'}"
            ),
        )


def _rule(rule_id, name, severity, summary, check):
    from repro.analysis.rules import Rule

    return Rule(
        id=rule_id,
        name=name,
        pack="pdl",
        severity=severity,
        summary=summary,
        check=check,
    )


RULES = [
    _rule(
        "PDL001",
        "unit-dimension-conflict",
        Severity.ERROR,
        "comparable properties mix units of different physical dimensions",
        check_unit_dimensions,
    ),
    _rule(
        "PDL002",
        "unknown-unit",
        Severity.ERROR,
        "property unit is not a known PDL unit",
        check_unknown_units,
    ),
    _rule(
        "PDL003",
        "dangling-reference",
        Severity.ERROR,
        "reference property names an undeclared memory region or group",
        check_dangling_references,
    ),
    _rule(
        "PDL010",
        "unreachable-pu",
        Severity.ERROR,
        "PU has no interconnect route to its controller's memory",
        check_reachability,
    ),
    _rule(
        "PDL011",
        "duplicate-link",
        Severity.WARNING,
        "multiple interconnects of one type between the same endpoints",
        check_duplicate_links,
    ),
    _rule(
        "PDL012",
        "asymmetric-link",
        Severity.WARNING,
        "unidirectional link without a consistent return direction",
        check_asymmetric_links,
    ),
    _rule(
        "PDL020",
        "stale-schema-version",
        Severity.WARNING,
        "document schemaVersion is not supported by this toolchain",
        check_schema_version,
    ),
    _rule(
        "PDL021",
        "unknown-subschema-type",
        Severity.WARNING,
        "property type is not defined by any registered subschema",
        check_subschema_types,
    ),
    _rule(
        "PDL030",
        "unfillable-unfixed-property",
        Severity.WARNING,
        "unfixed property that neither discovery nor late binding can fill",
        check_unfixed_flow,
    ),
]
