"""Rule-based static analysis over PDL descriptors and Cascabel programs.

The paper's toolchain only works when descriptors and annotated programs
are *jointly* consistent: variant target lists must match PDL-declared
hardware (§IV-B), data transfers follow declared interconnects (§IV-C),
and unfixed properties must be instantiable before codegen.  This package
checks those invariants statically, before selection/codegen/runtime:

* :mod:`repro.analysis.diagnostics` — structured :class:`Diagnostic`
  findings with stable rule IDs, severities, and source locations;
* :mod:`repro.analysis.rules` — the rule registry with per-rule
  enable/disable and severity overrides;
* :mod:`repro.analysis.pdl_rules` — ``PDL0xx``: descriptor-local lint;
* :mod:`repro.analysis.cascabel_rules` — ``CAS0xx``: program-local lint
  including static race detection over task access modes;
* :mod:`repro.analysis.cross_rules` — ``XAR0xx``: program × descriptor
  consistency (variant satisfiability, toolchains, transfer routes);
* :mod:`repro.analysis.interference_rules` — ``IFR0xx``: contention-domain
  hazards (undeclared shared channels, budget conflicts, dangling members);
* :mod:`repro.analysis.interference` — the whole-platform
  :class:`InterferenceReport` (domains, utilization, slowdown matrix);
* :mod:`repro.analysis.render` — text/JSON/SARIF output;
* :mod:`repro.analysis.engine` — the :class:`Linter` façade;
* :mod:`repro.analysis.cli` — the ``repro-lint`` command.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    Finding,
    LintReport,
    Severity,
    SourceLocation,
)
from repro.analysis.engine import Linter, lint_platform, lint_program
from repro.analysis.interference import InterferenceReport, analyze_interference
from repro.analysis.rules import LintConfig, Rule, RuleRegistry, default_registry

__all__ = [
    "InterferenceReport",
    "analyze_interference",
    "Diagnostic",
    "Finding",
    "LintReport",
    "Severity",
    "SourceLocation",
    "Rule",
    "RuleRegistry",
    "LintConfig",
    "default_registry",
    "Linter",
    "lint_platform",
    "lint_program",
]
