"""``repro-lint`` command line interface.

Usage::

    repro-lint <path-or-catalog-ref> ...     # .xml/.pdl → PDL pack,
                                             # .c/.cc/... → Cascabel pack
    repro-lint prog.c --platform xeon_x5550_2gpu   # + cross-artifact pack
    repro-lint --catalog --samples --platform xeon_x5550_2gpu
    repro-lint --list-rules
    repro-lint prog.c --format sarif > lint.sarif
    repro-lint prog.c --select CAS --ignore CAS003 --fail-on error

Bare (non-path) arguments resolve against the shipped PDL catalog and the
shipped Cascabel samples.  Exit codes are CI-friendly: ``0`` clean, ``1``
findings at or above ``--fail-on`` (default: warning), ``2`` usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from repro.analysis.diagnostics import LintReport, Severity
from repro.analysis.engine import Linter
from repro.analysis.render import FORMATS, render
from repro.analysis.rules import LintConfig, default_registry
from repro.errors import PDLError, ReproError, UnknownPlatformError

__all__ = ["main", "build_arg_parser"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "static analysis for PDL descriptors and Cascabel programs"
        ),
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        help=(
            "files to lint (.xml/.pdl descriptors, .c/.cc/.cpp programs),"
            " shipped catalog descriptor names, or shipped sample names"
        ),
    )
    parser.add_argument(
        "--platform",
        action="append",
        default=[],
        metavar="REF",
        help=(
            "target descriptor (file or catalog name) for cross-artifact"
            " lint of the given programs; repeatable"
        ),
    )
    parser.add_argument(
        "--catalog",
        action="store_true",
        help="also lint every shipped catalog descriptor",
    )
    parser.add_argument(
        "--samples",
        action="store_true",
        help="also lint every shipped Cascabel sample program",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="only run these rule IDs/prefixes (comma-separated, repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="skip these rule IDs/prefixes (comma-separated, repeatable)",
    )
    parser.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="RULE=LEVEL",
        help="override a rule's severity, e.g. CAS003=note (repeatable)",
    )
    parser.add_argument(
        "--fail-on",
        choices=[s.value for s in Severity],
        default="warning",
        help="minimum severity that fails the run (default: warning)",
    )
    parser.add_argument(
        "--expert-variants",
        action="store_true",
        help="include the builtin expert variants in cross-artifact lint",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    return parser


def _split_csv(values: list[str]) -> list[str]:
    out = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def _parse_overrides(entries: list[str]) -> dict[str, str]:
    overrides = {}
    for entry in _split_csv(entries):
        rule_id, sep, level = entry.partition("=")
        if not sep or not rule_id or not level:
            raise ValueError(
                f"--severity takes RULE=LEVEL entries, got {entry!r}"
            )
        overrides[rule_id] = level
    return overrides


def _load_target(ref: str):
    """(label, Platform) from a file path or shipped catalog name."""
    from repro.pdl.catalog import load_platform
    from repro.pdl.parser import parse_pdl_file

    if os.path.exists(ref):
        platform = parse_pdl_file(ref, validate=False)
        return os.path.splitext(os.path.basename(ref))[0], platform
    return ref, load_platform(ref, validate=False)


def _resolve_artifact(linter: Linter, spec: str, targets, expert: bool):
    """Lint one CLI artifact argument into a list of reports."""
    from repro.cascabel.cli import available_samples, sample_source
    from repro.pdl.catalog import available_platforms, load_platform

    if os.path.exists(spec):
        return linter.lint_path(
            spec, targets=targets, expert_variants=expert
        )
    if spec in available_platforms():
        platform = load_platform(spec, validate=False)
        return [linter.lint_platform(platform, filename=spec)]
    if spec in available_samples():
        source = sample_source(spec)
        reports = [linter.lint_program(source, filename=spec)]
        if targets:
            reports.append(
                linter.lint_cross(
                    source, targets, filename=spec, expert_variants=expert
                )
            )
        return reports
    raise UnknownPlatformError(
        f"{spec!r} is neither a file, a catalog descriptor"
        f" ({available_platforms()}), nor a shipped sample"
        f" ({available_samples()})"
    )


def _list_rules(registry) -> str:
    lines = []
    for rule in registry.rules():
        lines.append(
            f"{rule.id}  {rule.severity.value:<7}  {rule.name:<32}"
            f" {rule.summary}"
        )
    return "\n".join(lines) + "\n"


def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "interference":
        # `repro lint interference ...` — the whole-platform report
        from repro.analysis.interference import interference_main

        return interference_main(argv[1:])
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    registry = default_registry()
    if args.list_rules:
        sys.stdout.write(_list_rules(registry))
        return EXIT_CLEAN

    try:
        config = LintConfig.build(
            select=_split_csv(args.select) or None,
            ignore=_split_csv(args.ignore),
            severity_overrides=_parse_overrides(args.severity),
            fail_on=args.fail_on,
        )
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    linter = Linter(registry=registry, config=config)

    try:
        targets = [_load_target(ref) for ref in args.platform]
    except (OSError, ReproError) as exc:
        print(f"repro-lint: cannot load target platform: {exc}", file=sys.stderr)
        return EXIT_USAGE

    specs = list(args.artifacts)
    if args.catalog:
        from repro.pdl.catalog import available_platforms

        specs.extend(available_platforms())
    if args.samples:
        from repro.cascabel.cli import available_samples

        specs.extend(available_samples())
    if not specs:
        parser.print_usage(sys.stderr)
        print(
            "repro-lint: nothing to lint (pass files, --catalog, or"
            " --samples)",
            file=sys.stderr,
        )
        return EXIT_USAGE

    reports: list[LintReport] = []
    for spec in specs:
        try:
            reports.extend(
                _resolve_artifact(
                    linter, spec, targets, args.expert_variants
                )
            )
        except (OSError, ValueError, PDLError, UnknownPlatformError) as exc:
            print(f"repro-lint: {spec}: {exc}", file=sys.stderr)
            return EXIT_USAGE

    sys.stdout.write(render(reports, args.format, registry=registry))

    gate = config.fail_on
    failing = sum(len(r.at_least(gate)) for r in reports)
    return EXIT_FINDINGS if failing else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
