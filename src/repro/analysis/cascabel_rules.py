"""Program-local lint rules (``CAS0xx``) over annotated translation units.

The context parses the unit *leniently*: a malformed pragma becomes a
``CAS000`` diagnostic instead of aborting the run, and every well-formed
pragma is still analyzed.  The semantic checks mirror (and subsume)
:meth:`repro.cascabel.program.AnnotatedProgram.validate`, plus dataflow
over the declared access modes: two executions submitted to *different*
execution groups run concurrently (only same-group submissions are
serialized by the runtime queue), so a shared argument written by either
side is a statically detectable race.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.diagnostics import Finding, Severity, SourceLocation
from repro.errors import PragmaSyntaxError
from repro.cascabel.lexer import extract_call, extract_function, scan_pragmas
from repro.cascabel.pragmas import TaskPragma, parse_pragma
from repro.cascabel.program import (
    AnnotatedProgram,
    TaskDefinition,
    TaskExecution,
)

__all__ = ["CascabelContext", "build_context", "RULES"]


@dataclass
class CascabelContext:
    """Input of the Cascabel pack: a leniently parsed translation unit."""

    source: str
    filename: str
    program: AnnotatedProgram
    syntax_findings: list[Finding] = field(default_factory=list)

    def location(
        self, line: Optional[int] = None, column: Optional[int] = None
    ) -> SourceLocation:
        return SourceLocation(file=self.filename, line=line, column=column)

    def pragma_location(self, pragma) -> SourceLocation:
        return self.location(pragma.line, getattr(pragma, "column", None))


def build_context(source: str, *, filename: str = "<string>") -> CascabelContext:
    """Parse for lint: collect syntax failures instead of raising."""
    program = AnnotatedProgram(source=source, filename=filename)
    ctx = CascabelContext(source=source, filename=filename, program=program)
    try:
        directives = scan_pragmas(source)
    except PragmaSyntaxError as exc:
        ctx.syntax_findings.append(_syntax_finding(exc, filename))
        return ctx
    for directive in directives:
        try:
            pragma = parse_pragma(directive)
            if isinstance(pragma, TaskPragma):
                function = extract_function(source, directive.end_line + 1)
                program.definitions.append(
                    TaskDefinition(pragma=pragma, function=function)
                )
            else:
                call = extract_call(source, directive.end_line + 1)
                program.executions.append(
                    TaskExecution(pragma=pragma, call=call)
                )
        except PragmaSyntaxError as exc:
            ctx.syntax_findings.append(
                _syntax_finding(exc, filename, fallback_line=directive.line,
                                fallback_column=directive.column)
            )
    return ctx


def _syntax_finding(
    exc: PragmaSyntaxError,
    filename: str,
    *,
    fallback_line: Optional[int] = None,
    fallback_column: Optional[int] = None,
) -> Finding:
    line = exc.line if exc.line is not None else fallback_line
    column = getattr(exc, "column", None)
    if column is None:
        column = fallback_column
    return Finding(
        message=str(exc),
        location=SourceLocation(file=filename, line=line, column=column),
        hint="see the pragma grammar in docs/pdl-language-reference.md",
    )


# ---------------------------------------------------------------------------
# CAS000–CAS008 — structural program checks
# ---------------------------------------------------------------------------
def check_syntax(ctx: CascabelContext) -> Iterable[Finding]:
    return list(ctx.syntax_findings)


def check_unknown_interface(ctx: CascabelContext) -> Iterable[Finding]:
    known = set(ctx.program.interfaces())
    for execution in ctx.program.executions:
        if execution.interface not in known:
            yield Finding(
                message=(
                    f"execute pragma references unknown task interface"
                    f" {execution.interface!r}"
                    f" (defined: {sorted(known) or '(none)'})"
                ),
                location=ctx.pragma_location(execution.pragma),
                subject=execution.interface,
                hint="annotate a task definition for this interface first",
            )


def check_use_before_definition(ctx: CascabelContext) -> Iterable[Finding]:
    """Execute pragmas textually before the task they invoke is registered.

    The paper requires annotations "placed before the respective function
    invocation"; Cascabel registers tasks in document order, so an execute
    above its task definition invokes an unregistered interface.
    """
    first_definition = {}
    for definition in ctx.program.definitions:
        first_definition.setdefault(definition.interface, definition.pragma.line)
    for execution in ctx.program.executions:
        defined_at = first_definition.get(execution.interface)
        if defined_at is not None and execution.pragma.line < defined_at:
            yield Finding(
                message=(
                    f"interface {execution.interface!r} is executed at line"
                    f" {execution.pragma.line} but its first task definition"
                    f" appears later (line {defined_at})"
                ),
                location=ctx.pragma_location(execution.pragma),
                subject=execution.interface,
                hint="move the task definition above its first execution",
            )


def check_unused_task(ctx: CascabelContext) -> Iterable[Finding]:
    for interface in ctx.program.interfaces():
        if ctx.program.executions_for(interface):
            continue
        definition = ctx.program.definitions_for(interface)[0]
        yield Finding(
            message=(
                f"task interface {interface!r} is defined but never"
                f" executed in this translation unit"
            ),
            location=ctx.pragma_location(definition.pragma),
            subject=interface,
            hint="remove the dead task pragma or add an execute pragma",
        )


def check_dead_execute(ctx: CascabelContext) -> Iterable[Finding]:
    """Execute pragmas whose bound call does not invoke the interface."""
    for execution in ctx.program.executions:
        definitions = ctx.program.definitions_for(execution.interface)
        if not definitions:
            continue  # CAS001 covers unknown interfaces
        variant_functions = {d.function.name for d in definitions}
        if execution.call.name not in variant_functions:
            yield Finding(
                message=(
                    f"execute pragma for {execution.interface!r} binds to the"
                    f" call {execution.call.name!r} (line"
                    f" {execution.call.line}), which is not a variant of that"
                    f" interface ({sorted(variant_functions)}) — the pragma"
                    f" is dead"
                ),
                location=ctx.pragma_location(execution.pragma),
                subject=execution.interface,
                hint=(
                    "place the execute pragma directly above the variant"
                    " call it annotates"
                ),
            )


def check_unknown_distribution_parameter(
    ctx: CascabelContext,
) -> Iterable[Finding]:
    for execution in ctx.program.executions:
        definitions = ctx.program.definitions_for(execution.interface)
        if not definitions:
            continue
        params = {p.name for d in definitions for p in d.pragma.parameters}
        for dist in execution.pragma.distributions:
            if dist.name not in params:
                yield Finding(
                    message=(
                        f"execute of {execution.interface!r} distributes"
                        f" unknown parameter {dist.name!r}"
                        f" (parameters: {sorted(params)})"
                    ),
                    location=ctx.pragma_location(execution.pragma),
                    subject=execution.interface,
                    hint="distribution names must match task parameters",
                )


def check_duplicate_variant(ctx: CascabelContext) -> Iterable[Finding]:
    seen: dict[str, int] = {}
    for definition in ctx.program.definitions:
        name = definition.variant_name
        if name in seen:
            yield Finding(
                message=(
                    f"duplicate taskname {name!r} (first defined at line"
                    f" {seen[name]})"
                ),
                location=ctx.pragma_location(definition.pragma),
                subject=name,
                hint="tasknames must be unique across the translation unit",
            )
        else:
            seen[name] = definition.pragma.line


def check_signature_consistency(ctx: CascabelContext) -> Iterable[Finding]:
    for interface in ctx.program.interfaces():
        definitions = ctx.program.definitions_for(interface)
        reference = definitions[0].function
        for other in definitions[1:]:
            if (
                other.function.param_names != reference.param_names
                or other.function.return_type != reference.return_type
            ):
                yield Finding(
                    message=(
                        f"interface {interface!r}: variant"
                        f" {other.variant_name!r} signature"
                        f" ({other.function.signature}) differs from"
                        f" {definitions[0].variant_name!r}"
                        f" ({reference.signature})"
                    ),
                    location=ctx.pragma_location(other.pragma),
                    subject=interface,
                    hint=(
                        "all variants of one interface must share the"
                        " function signature"
                    ),
                )


def check_pragma_parameters(ctx: CascabelContext) -> Iterable[Finding]:
    for definition in ctx.program.definitions:
        declared = set(definition.function.param_names)
        for param in definition.pragma.parameters:
            if param.name not in declared:
                yield Finding(
                    message=(
                        f"task {definition.interface!r} variant"
                        f" {definition.variant_name!r}: pragma names"
                        f" parameter {param.name!r} but the function"
                        f" signature declares {sorted(declared)}"
                    ),
                    location=ctx.pragma_location(definition.pragma),
                    subject=definition.variant_name,
                    hint="pragma parameters must name function parameters",
                )


# ---------------------------------------------------------------------------
# CAS010 / CAS011 — static race detection over access modes
# ---------------------------------------------------------------------------
def _normalize_argument(text: str) -> str:
    return " ".join(text.split()).lstrip("&").strip()


def _argument_accesses(ctx: CascabelContext, execution: TaskExecution):
    """``(argument, parameter name, mode)`` per annotated call argument."""
    definitions = ctx.program.definitions_for(execution.interface)
    if not definitions:
        return []
    params = definitions[0].pragma.parameters
    out = []
    for param, argument in zip(params, execution.call.arguments):
        key = _normalize_argument(argument)
        if key:
            out.append((key, param.name, param.mode))
    return out


def _concurrent(a: TaskExecution, b: TaskExecution) -> bool:
    """Submissions to the same (non-wildcard) group are serialized by the
    runtime queue; everything else may overlap in time."""
    return a.execution_group != b.execution_group


def _race_findings(ctx: CascabelContext, *, write_write: bool):
    executions = ctx.program.executions
    for i, first in enumerate(executions):
        for second in executions[i + 1 :]:
            if not _concurrent(first, second):
                continue
            accesses = {key: mode for key, _n, mode in _argument_accesses(ctx, first)}
            for key, param, mode in _argument_accesses(ctx, second):
                other = accesses.get(key)
                if other is None:
                    continue
                both_write = other.writes and mode.writes
                if write_write != both_write:
                    continue
                if not both_write and not (other.writes or mode.writes):
                    continue  # read/read never conflicts
                kind = (
                    "both write"
                    if both_write
                    else "one writes while the other reads"
                )
                yield Finding(
                    message=(
                        f"argument {key!r} is shared by {first.interface!r}"
                        f" (group {first.execution_group or '<all>'!r}, line"
                        f" {first.pragma.line}) and {second.interface!r}"
                        f" (group {second.execution_group or '<all>'!r}, line"
                        f" {second.pragma.line}); the executions run in"
                        f" different execution groups and {kind} — a data"
                        f" race"
                    ),
                    location=ctx.pragma_location(second.pragma),
                    subject=key,
                    hint=(
                        "submit both executions to one execution group"
                        " (same-group tasks are serialized) or privatize"
                        " the buffer"
                    ),
                )


def check_write_write_races(ctx: CascabelContext) -> Iterable[Finding]:
    return _race_findings(ctx, write_write=True)


def check_read_write_races(ctx: CascabelContext) -> Iterable[Finding]:
    return _race_findings(ctx, write_write=False)


def _rule(rule_id, name, severity, summary, check):
    from repro.analysis.rules import Rule

    return Rule(
        id=rule_id,
        name=name,
        pack="cascabel",
        severity=severity,
        summary=summary,
        check=check,
    )


RULES = [
    _rule(
        "CAS000",
        "pragma-syntax",
        Severity.ERROR,
        "malformed #pragma cascabel annotation",
        check_syntax,
    ),
    _rule(
        "CAS001",
        "unknown-interface",
        Severity.ERROR,
        "execute pragma references an undefined task interface",
        check_unknown_interface,
    ),
    _rule(
        "CAS002",
        "use-before-definition",
        Severity.WARNING,
        "interface executed before its task definition registers it",
        check_use_before_definition,
    ),
    _rule(
        "CAS003",
        "unused-task",
        Severity.WARNING,
        "task interface is defined but never executed",
        check_unused_task,
    ),
    _rule(
        "CAS004",
        "dead-execute-pragma",
        Severity.ERROR,
        "execute pragma binds to a call that is not a variant of its interface",
        check_dead_execute,
    ),
    _rule(
        "CAS005",
        "unknown-distribution-parameter",
        Severity.ERROR,
        "distribution references a parameter the task does not declare",
        check_unknown_distribution_parameter,
    ),
    _rule(
        "CAS006",
        "duplicate-variant",
        Severity.ERROR,
        "taskname reused across the translation unit",
        check_duplicate_variant,
    ),
    _rule(
        "CAS007",
        "signature-mismatch",
        Severity.ERROR,
        "variants of one interface disagree on the function signature",
        check_signature_consistency,
    ),
    _rule(
        "CAS008",
        "parameter-not-in-signature",
        Severity.ERROR,
        "pragma parameter does not name a function parameter",
        check_pragma_parameters,
    ),
    _rule(
        "CAS010",
        "write-write-race",
        Severity.ERROR,
        "two concurrent executions write the same argument",
        check_write_write_races,
    ),
    _rule(
        "CAS011",
        "read-write-race",
        Severity.WARNING,
        "concurrent executions read and write the same argument",
        check_read_write_races,
    ),
]
