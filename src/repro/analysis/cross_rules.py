"""Cross-artifact lint rules (``XAR0xx``): program × descriptor(s).

These answer the questions the toolchain otherwise discovers late (or
never): can every variant run *somewhere* on the supplied targets, does
every interface stay translatable, can the compile plan actually derive
its toolchain flags from the descriptor, and do declared transfers have a
feasible interconnect route?  A context carries one program and one or
more target platforms — a single descriptor for CI-style gating, or the
whole shipped catalog for dead-variant detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.diagnostics import Finding, Severity, SourceLocation
from repro.errors import RepositoryError
from repro.model.platform import Platform
from repro.cascabel.compile_plan import _cuda_arch_flag
from repro.cascabel.program import AnnotatedProgram
from repro.cascabel.repository import TaskRepository, TaskVariant
from repro.cascabel.selection import eligible_variants

__all__ = ["CrossContext", "RULES"]


@dataclass
class CrossContext:
    """One annotated program against one or more target descriptors."""

    program: AnnotatedProgram
    targets: list[tuple[str, Platform]]  # (label, parsed platform)
    filename: Optional[str] = None
    expert_variants: bool = False
    _repository: Optional[TaskRepository] = field(default=None, repr=False)
    _repository_error: Optional[str] = field(default=None, repr=False)
    _eligibility: Optional[dict] = field(default=None, repr=False)

    def location(self) -> Optional[SourceLocation]:
        name = self.filename or self.program.filename
        return SourceLocation(file=name) if name else None

    def variant_location(self, variant_name: str) -> Optional[SourceLocation]:
        for definition in self.program.definitions:
            if definition.variant_name == variant_name:
                pragma = definition.pragma
                return SourceLocation(
                    file=self.filename or self.program.filename,
                    line=pragma.line,
                    column=getattr(pragma, "column", None),
                )
        return self.location()

    def pragma_location(self, pragma) -> SourceLocation:
        return SourceLocation(
            file=self.filename or self.program.filename,
            line=pragma.line,
            column=getattr(pragma, "column", None),
        )

    def repository(self) -> Optional[TaskRepository]:
        """Task repository of the program (None when registration fails —
        the Cascabel pack reports why)."""
        if self._repository is None and self._repository_error is None:
            repo = TaskRepository()
            try:
                repo.register_program(self.program)
                if self.expert_variants:
                    from repro.cascabel.driver import register_builtin_variants

                    register_builtin_variants(repo, self.program)
            except RepositoryError as exc:
                self._repository_error = str(exc)
                return None
            self._repository = repo
        return self._repository

    def eligibility(self) -> dict:
        """``{interface: {label: (eligible variants, pruned reasons)}}``."""
        if self._eligibility is not None:
            return self._eligibility
        table: dict[str, dict[str, tuple[list[TaskVariant], dict]]] = {}
        repo = self.repository()
        if repo is not None:
            for interface in repo.interfaces():
                variants = repo.variants(interface)
                table[interface] = {
                    label: eligible_variants(variants, platform)
                    for label, platform in self.targets
                }
        self._eligibility = table
        return table


def _target_list(ctx: CrossContext) -> str:
    return ", ".join(label for label, _ in ctx.targets)


# ---------------------------------------------------------------------------
# XAR001–XAR003 — variant satisfiability
# ---------------------------------------------------------------------------
def check_dead_variants(ctx: CrossContext) -> Iterable[Finding]:
    """Variants not eligible on *any* supplied target (dead code)."""
    for interface, per_target in sorted(ctx.eligibility().items()):
        reasons: dict[str, dict[str, str]] = {}
        alive: set[str] = set()
        for label, (eligible, pruned) in per_target.items():
            alive.update(v.name for v in eligible)
            for name, reason in pruned.items():
                reasons.setdefault(name, {})[label] = reason
        for name in sorted(set(reasons) - alive):
            detail = "; ".join(
                f"{label}: {reason}"
                for label, reason in sorted(reasons[name].items())
            )
            yield Finding(
                message=(
                    f"variant {name!r} of interface {interface!r} is dead:"
                    f" not eligible on any supplied target"
                    f" ({_target_list(ctx)}) — {detail}"
                ),
                location=ctx.variant_location(name),
                subject=name,
                hint=(
                    "drop the variant or add a descriptor providing its"
                    " target hardware"
                ),
            )


def check_unsatisfiable_interfaces(ctx: CrossContext) -> Iterable[Finding]:
    for interface, per_target in sorted(ctx.eligibility().items()):
        for label, (eligible, pruned) in sorted(per_target.items()):
            if eligible:
                continue
            yield Finding(
                message=(
                    f"interface {interface!r} has no eligible variant on"
                    f" target {label!r} (pruned: {dict(sorted(pruned.items()))})"
                ),
                location=ctx.location(),
                subject=interface,
                hint="provide an x86 fallback variant for the interface",
            )


def check_missing_fallback(ctx: CrossContext) -> Iterable[Finding]:
    for interface, per_target in sorted(ctx.eligibility().items()):
        for label, (eligible, _pruned) in sorted(per_target.items()):
            if not eligible or any(v.is_fallback for v in eligible):
                continue
            yield Finding(
                message=(
                    f"interface {interface!r} has no sequential fallback"
                    f" variant on target {label!r}; the paper requires at"
                    f" least one Master-executable implementation"
                ),
                location=ctx.location(),
                subject=interface,
                hint="add an x86/x86_64 variant of the interface",
            )


# ---------------------------------------------------------------------------
# XAR010 — compile-plan toolchain mismatches
# ---------------------------------------------------------------------------
def check_toolchain(ctx: CrossContext) -> Iterable[Finding]:
    """Eligible variants whose toolchain flags the descriptor cannot yield.

    Mirrors :mod:`repro.cascabel.compile_plan`: CUDA compilation derives
    ``-arch=sm_XX`` from the lowest ``COMPUTE_CAPABILITY``, and Cell
    builds switch to ``ppu-gcc``/``libspe2`` keyed on a ``cellsdk``
    runtime declaration.
    """
    for label, platform in ctx.targets:
        eligible_targets: set[str] = set()
        for _interface, per_target in ctx.eligibility().items():
            eligible, _pruned = per_target[label]
            for variant in eligible:
                eligible_targets.update(variant.targets)
        if "cuda" in eligible_targets and "gpu" in platform.architectures():
            if _cuda_arch_flag(platform) is None:
                yield Finding(
                    message=(
                        f"target {label!r} hosts CUDA variants but no PU"
                        f" declares COMPUTE_CAPABILITY — the compile plan"
                        f" cannot derive an nvcc -arch flag"
                    ),
                    location=ctx.location(),
                    subject=label,
                    hint=(
                        "add a cuda:COMPUTE_CAPABILITY property to the GPU"
                        " Workers"
                    ),
                )
        cell_targets = eligible_targets & {"cellsdk", "spe"}
        if cell_targets and "spe" in platform.architectures():
            runtimes = {
                pu.descriptor.get_str("RUNTIME") for pu in platform.walk()
            }
            if "cellsdk" not in runtimes:
                yield Finding(
                    message=(
                        f"target {label!r} hosts {sorted(cell_targets)}"
                        f" variants but no PU declares RUNTIME 'cellsdk' —"
                        f" the compile plan cannot select the Cell"
                        f" toolchain (ppu-gcc/libspe2)"
                    ),
                    location=ctx.location(),
                    subject=label,
                    hint="declare RUNTIME=cellsdk on the controlling PU",
                )


# ---------------------------------------------------------------------------
# XAR020 / XAR021 — transfer routes and execution groups
# ---------------------------------------------------------------------------
def check_transfer_routes(ctx: CrossContext) -> Iterable[Finding]:
    """Execution placements no Master can reach over declared interconnects.

    Skipped for descriptors that declare no interconnects at all (the
    control hierarchy then implies connectivity); otherwise every PU an
    execution may be placed on must be reachable from a Master, or the
    transfers the distributions imply have no route.
    """
    from repro.query.paths import InterconnectGraph

    for label, platform in ctx.targets:
        if not platform.interconnects():
            continue
        graph = InterconnectGraph(platform)
        master_ids = {pu.id for pu in platform.masters}
        reachable: set[str] = set(master_ids)
        for master_id in master_ids:
            reachable.update(graph.reachable(master_id))
        for execution in ctx.program.executions:
            members = _placement_candidates(execution, platform)
            for pu in members:
                if pu.id in reachable:
                    continue
                yield Finding(
                    message=(
                        f"execute of {execution.interface!r} (group"
                        f" {execution.execution_group or '<all>'!r}) may be"
                        f" placed on {pu.kind} {pu.id!r} of target {label!r},"
                        f" but no Master has an interconnect route to it —"
                        f" the implied data transfers are infeasible"
                    ),
                    location=ctx.pragma_location(execution.pragma),
                    subject=pu.id,
                    hint=(
                        f"declare an interconnect path from a Master to"
                        f" {pu.id!r} or shrink the execution group"
                    ),
                )


def _placement_candidates(execution, platform: Platform):
    group = execution.execution_group
    if not group:
        return platform.workers()
    members = platform.groups().get(group)
    return members if members is not None else []  # XAR021 reports unknowns


def check_execution_groups(ctx: CrossContext) -> Iterable[Finding]:
    for label, platform in ctx.targets:
        groups = set(platform.groups())
        for execution in ctx.program.executions:
            group = execution.execution_group
            if not group or group in groups:
                continue
            yield Finding(
                message=(
                    f"execute of {execution.interface!r} names execution"
                    f" group {group!r}, which no PU of target {label!r}"
                    f" declares (groups: {sorted(groups) or '(none)'})"
                ),
                location=ctx.pragma_location(execution.pragma),
                subject=group,
                hint=(
                    "add the LogicGroupAttribute to the descriptor or"
                    " reference an existing group"
                ),
            )


def _rule(rule_id, name, severity, summary, check):
    from repro.analysis.rules import Rule

    return Rule(
        id=rule_id,
        name=name,
        pack="cross",
        severity=severity,
        summary=summary,
        check=check,
    )


RULES = [
    _rule(
        "XAR001",
        "dead-variant",
        Severity.WARNING,
        "variant is not eligible on any supplied target descriptor",
        check_dead_variants,
    ),
    _rule(
        "XAR002",
        "unsatisfiable-interface",
        Severity.ERROR,
        "interface has zero eligible variants on a target",
        check_unsatisfiable_interfaces,
    ),
    _rule(
        "XAR003",
        "missing-fallback",
        Severity.ERROR,
        "no sequential fallback variant remains on a target",
        check_missing_fallback,
    ),
    _rule(
        "XAR010",
        "toolchain-mismatch",
        Severity.WARNING,
        "descriptor lacks the properties the compile plan derives flags from",
        check_toolchain,
    ),
    _rule(
        "XAR020",
        "unroutable-transfer",
        Severity.ERROR,
        "execution placement unreachable over declared interconnects",
        check_transfer_routes,
    ),
    _rule(
        "XAR021",
        "unknown-execution-group",
        Severity.ERROR,
        "execution group is not declared on the target descriptor",
        check_execution_groups,
    ),
]
