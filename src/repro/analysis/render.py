"""Render lint reports as text, JSON, or SARIF 2.1.0.

All three formats are projections of the same sorted diagnostic list, so
one run rendered twice always carries identical findings — the JSON and
SARIF outputs differ in envelope only.  JSON/SARIF are emitted with
sorted keys and stable ordering for byte-reproducibility.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.rules import RuleRegistry

__all__ = ["render_text", "render_json", "render_sarif", "FORMATS"]

FORMATS = ("text", "json", "sarif")

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVELS = {
    Severity.NOTE: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def render_text(reports: Iterable[LintReport]) -> str:
    lines = []
    total_findings = 0
    for report in reports:
        ordered = report.sorted()
        lines.append(f"== {ordered.artifact} ({ordered.kind})")
        if not ordered.diagnostics:
            lines.append("   clean")
        for diagnostic in ordered:
            total_findings += 1
            for row in diagnostic.format().splitlines():
                lines.append(f"   {row}")
        lines.append(f"   {ordered.summary()}")
    lines.append(f"total findings: {total_findings}")
    return "\n".join(lines) + "\n"


def render_json(reports: Iterable[LintReport]) -> str:
    reports = list(reports)
    payload = {
        "tool": "repro-lint",
        "version": "1.0",
        "ok": all(r.ok for r in reports),
        "reports": [r.to_payload() for r in reports],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_location(diagnostic: Diagnostic) -> list:
    location = diagnostic.location
    if location is None or not location.to_payload():
        return []
    physical: dict = {}
    if location.file is not None:
        physical["artifactLocation"] = {"uri": location.file}
    if location.line is not None:
        region = {"startLine": location.line}
        if location.column is not None:
            region["startColumn"] = location.column
        physical["region"] = region
    return [{"physicalLocation": physical}]


def render_sarif(
    reports: Iterable[LintReport], *, registry: Optional[RuleRegistry] = None
) -> str:
    """One SARIF run holding every report's results.

    Rule metadata (``tool.driver.rules``) is included for each rule that
    fired, so SARIF viewers can show names and summaries.
    """
    reports = list(reports)
    results = []
    fired: set[str] = set()
    for report in reports:
        for diagnostic in report.sorted():
            fired.add(diagnostic.rule)
            result = {
                "ruleId": diagnostic.rule,
                "level": _SARIF_LEVELS[diagnostic.severity],
                "message": {"text": diagnostic.message},
                "locations": _sarif_location(diagnostic),
                "properties": {"artifact": report.artifact, "pack": report.kind},
            }
            if diagnostic.subject is not None:
                result["properties"]["subject"] = diagnostic.subject
            if diagnostic.hint is not None:
                result["properties"]["hint"] = diagnostic.hint
            results.append(result)

    rules_meta = []
    if registry is not None:
        for rule_id in sorted(fired):
            if rule_id not in registry:
                continue
            rule = registry.rule(rule_id)
            rules_meta.append(
                {
                    "id": rule.id,
                    "name": rule.name,
                    "shortDescription": {"text": rule.summary},
                    "defaultConfiguration": {
                        "level": _SARIF_LEVELS[rule.severity]
                    },
                }
            )

    driver: dict = {"name": "repro-lint", "informationUri": "", "version": "1.0"}
    if rules_meta:
        driver["rules"] = rules_meta
    sarif = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
    return json.dumps(sarif, indent=2, sort_keys=True) + "\n"


def render(
    reports: Iterable[LintReport],
    fmt: str,
    *,
    registry: Optional[RuleRegistry] = None,
) -> str:
    if fmt == "text":
        return render_text(reports)
    if fmt == "json":
        return render_json(reports)
    if fmt == "sarif":
        return render_sarif(reports, registry=registry)
    raise ValueError(f"unknown format {fmt!r}; use {', '.join(FORMATS)}")
