"""Interference-hazard lint rules (``IFR0xx``).

The fourth rule pack.  It runs over one parsed platform (the same
:class:`~repro.analysis.pdl_rules.PdlContext` the PDL pack uses) and
checks the contention-domain declarations of
:mod:`repro.model.contention`: every shared channel the runtime would
contend on must be *explicit*, budgets must exist and be consistent,
and group membership must resolve.  The pack is what makes
co-location analysis trustworthy — a descriptor that lints clean here
gives the interference-aware transfer model everything it needs.

Severity philosophy: a missing or self-contradictory declaration is an
ERROR (strict publish and strict translate reject it); a declaration
that is merely *suspicious* (cross-domain route with no declared
crossing link, one-sided membership of a directed pair) warns; an
over-subscribed channel — more member link bandwidth than budget — is
a NOTE, because that is precisely the (legal, common) configuration
where co-located transfers slow each other and the interference report
becomes interesting.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.diagnostics import Finding, Severity
from repro.analysis.pdl_rules import PdlContext
from repro.errors import PathError
from repro.model.contention import (
    CONTENTION_DOMAIN,
    CONTENTION_MEMBERS,
    ContentionDomain,
    collect_contention_domains,
)
from repro.model.entities import ProcessingUnit

__all__ = ["RULES"]


def _domains(ctx: PdlContext) -> list[ContentionDomain]:
    return collect_contention_domains(ctx.platform)


def _fmt_gbs(bps: float) -> str:
    return f"{bps / 1e9:g} GB/s"


# ---------------------------------------------------------------------------
# IFR001 — undeclared shared channel
# ---------------------------------------------------------------------------
def _anchor(pu: ProcessingUnit) -> Optional[ProcessingUnit]:
    """The controller memory a PU stages operands from: its nearest
    ancestor owning a region (PDL010's anchor rule).  A PU with local
    memory of its own is *still* a client of the controller region —
    operands travel controller → local before compute."""
    for ancestor in pu.ancestors():
        if ancestor.memory_regions:
            return ancestor
    return None


def check_undeclared_shared_channel(ctx: PdlContext) -> Iterable[Finding]:
    """A memory region that ≥2 routable clients stage data from, with no
    CONTENTION_DOMAIN declaring the shared channel.

    Clients of a region are the expanded (quantity-counted) non-Master
    PUs anchored at its owner that also have an interconnect route to
    the owner — exactly the population whose transfers the runtime
    would serialize through that memory.  Documents without
    interconnects imply connectivity through the control hierarchy and
    are skipped, mirroring PDL010.
    """
    platform = ctx.platform
    if not platform.interconnects() or not platform.memory_regions():
        return
    from repro.query.paths import InterconnectGraph

    graph = InterconnectGraph(platform)

    def routable(a: str, b: str) -> bool:
        for src, dst in ((a, b), (b, a)):
            try:
                graph.shortest(src, dst)
                return True
            except PathError:
                continue
        return False

    clients_of: dict[str, list[str]] = {}
    counts: dict[str, int] = {}
    for pu in platform.walk():
        if pu.kind == "Master":
            continue
        home = _anchor(pu)
        if home is None:
            continue
        if not routable(pu.id, home.id):
            continue
        clients_of.setdefault(home.id, []).append(pu.id)
        counts[home.id] = counts.get(home.id, 0) + max(1, pu.quantity)

    for pu in platform.walk():
        if counts.get(pu.id, 0) < 2:
            continue
        for region in pu.memory_regions:
            if region.descriptor.get(CONTENTION_DOMAIN) is not None:
                continue
            clients = sorted(set(clients_of[pu.id]))
            yield Finding(
                message=(
                    f"memory region {region.id!r} on {pu.kind} {pu.id!r} is"
                    f" a shared channel ({counts[pu.id]} client PUs:"
                    f" {', '.join(clients)}) but declares no"
                    f" CONTENTION_DOMAIN — co-located transfers through it"
                    f" cannot be bounded"
                ),
                location=ctx.location,
                subject=region.id,
                hint=(
                    "add CONTENTION_DOMAIN and CONTENTION_BANDWIDTH to the"
                    " MRDescriptor naming the shared channel and its"
                    " aggregate budget"
                ),
            )


# ---------------------------------------------------------------------------
# IFR002 / IFR003 — budget presence and consistency
# ---------------------------------------------------------------------------
def check_missing_budget(ctx: PdlContext) -> Iterable[Finding]:
    """A domain none of whose members declares CONTENTION_BANDWIDTH."""
    for dom in _domains(ctx):
        if dom.budgets_bps():
            continue
        member_ids = [m.id for m in dom.members]
        yield Finding(
            message=(
                f"contention domain {dom.name!r} (members:"
                f" {', '.join(member_ids) or '(none)'}) declares no"
                f" CONTENTION_BANDWIDTH — the channel has no budget to"
                f" share"
            ),
            location=ctx.location,
            subject=dom.name,
            hint=(
                "declare CONTENTION_BANDWIDTH (a bandwidth quantity) on at"
                " least one member of the domain"
            ),
        )


def check_budget_conflict(ctx: PdlContext) -> Iterable[Finding]:
    """Members of one domain disagreeing on the channel budget."""
    for dom in _domains(ctx):
        budgets = dom.budgets_bps()
        if len(budgets) < 2:
            continue
        claims = "; ".join(
            f"{m.id}: {_fmt_gbs(m.declared_budget_bps)}"
            for m in dom.members
            if m.declared_budget_bps is not None
        )
        yield Finding(
            message=(
                f"contention domain {dom.name!r} has conflicting"
                f" CONTENTION_BANDWIDTH declarations — {claims}"
            ),
            location=ctx.location,
            subject=dom.name,
            hint="a channel has one aggregate budget; make the figures agree",
        )


# ---------------------------------------------------------------------------
# IFR004 / IFR008 — budget vs member bandwidth
# ---------------------------------------------------------------------------
def check_over_subscribed(ctx: PdlContext) -> Iterable[Finding]:
    """Member link bandwidth summing past the channel budget.

    This is the configuration where interference actually bites (all
    members active ⇒ each gets less than its own link rate), so it is a
    NOTE: worth surfacing in the interference report, not a defect.
    """
    for dom in _domains(ctx):
        budget = dom.budget_bps
        if budget is None:
            continue
        subscription = dom.link_subscription_bps()
        if subscription <= budget:
            continue
        links = ", ".join(
            f"{m.id} ({_fmt_gbs(m.bandwidth_bps)})"
            for m in dom.link_members()
            if m.bandwidth_bps is not None
        )
        yield Finding(
            message=(
                f"contention domain {dom.name!r} is over-subscribed:"
                f" member links {links} sum to {_fmt_gbs(subscription)}"
                f" against a {_fmt_gbs(budget)} budget — concurrent"
                f" transfers will share the channel"
            ),
            location=ctx.location,
            subject=dom.name,
            hint=(
                "expected for genuinely shared channels; run the"
                " interference report to quantify the co-location slowdown"
            ),
        )


def check_member_exceeds_budget(ctx: PdlContext) -> Iterable[Finding]:
    """A single member link faster than the whole channel budget."""
    for dom in _domains(ctx):
        budget = dom.budget_bps
        if budget is None:
            continue
        for member in dom.link_members():
            if member.bandwidth_bps is None:
                continue
            if member.bandwidth_bps <= budget:
                continue
            yield Finding(
                message=(
                    f"interconnect {member.id!r} declares"
                    f" {_fmt_gbs(member.bandwidth_bps)} but its contention"
                    f" domain {dom.name!r} budgets only {_fmt_gbs(budget)}"
                    f" — the link can never reach its own figure"
                ),
                location=ctx.location,
                subject=member.id,
                hint=(
                    "raise the domain's CONTENTION_BANDWIDTH or lower the"
                    " link's BANDWIDTH; one of the two figures is wrong"
                ),
            )


# ---------------------------------------------------------------------------
# IFR005 — dangling members
# ---------------------------------------------------------------------------
def check_dangling_members(ctx: PdlContext) -> Iterable[Finding]:
    """CONTENTION_MEMBERS ids that name no component in the document."""
    for dom in _domains(ctx):
        for declaring_id, missing in dom.dangling:
            yield Finding(
                message=(
                    f"contention domain {dom.name!r}: {CONTENTION_MEMBERS}"
                    f" on {declaring_id!r} names {missing!r}, which is"
                    f" neither an interconnect nor a memory region"
                ),
                location=ctx.location,
                subject=declaring_id,
                hint="remove the entry or fix the id it references",
            )


# ---------------------------------------------------------------------------
# IFR006 — undeclared cross-domain routes
# ---------------------------------------------------------------------------
def check_cross_domain_routes(ctx: PdlContext) -> Iterable[Finding]:
    """Two regions in different domains connected only by links no
    domain claims: traffic between the channels is unaccounted for."""
    platform = ctx.platform
    if not platform.interconnects():
        return
    domains = _domains(ctx)
    if len(domains) < 2:
        return
    region_domain: dict[str, tuple[str, str]] = {}  # region id → (domain, owner)
    link_domains: set[str] = set()
    for dom in domains:
        for member in dom.members:
            if member.kind == "memory":
                region_domain.setdefault(member.id, (dom.name, member.owner))
            else:
                link_domains.add(member.id)
    if len({name for name, _ in region_domain.values()}) < 2:
        return
    from repro.query.paths import InterconnectGraph

    graph = InterconnectGraph(platform)
    entries = sorted(region_domain.items())
    for i, (region_a, (dom_a, owner_a)) in enumerate(entries):
        for region_b, (dom_b, owner_b) in entries[i + 1:]:
            if dom_a == dom_b or owner_a == owner_b:
                continue
            try:
                route = graph.shortest(owner_a, owner_b)
            except PathError:
                continue
            if any(link.id in link_domains for link in route.links):
                continue
            hops = " -> ".join(link.id for link in route.links)
            yield Finding(
                message=(
                    f"route between {region_a!r} (domain {dom_a!r}) and"
                    f" {region_b!r} (domain {dom_b!r}) crosses only"
                    f" undeclared links ({hops}) — inter-domain traffic"
                    f" bypasses every declared channel"
                ),
                location=ctx.location,
                subject=region_a,
                hint=(
                    "enroll the crossing link(s) in one of the domains"
                    " (CONTENTION_DOMAIN on the link or CONTENTION_MEMBERS"
                    " on the region)"
                ),
            )


# ---------------------------------------------------------------------------
# IFR007 — asymmetric domain membership
# ---------------------------------------------------------------------------
def check_asymmetric_membership(ctx: PdlContext) -> Iterable[Finding]:
    """Directed link pairs (a→b plus b→a) on different sides of a domain
    boundary: the channel would throttle one direction only."""
    membership: dict[str, frozenset] = {}
    for dom in _domains(ctx):
        for member in dom.link_members():
            membership[member.id] = membership.get(
                member.id, frozenset()
            ) | {dom.name}
    links = [ic for _pu, ic in ctx.interconnects()]
    for ic in links:
        for other in links:
            if other.from_pu != ic.to_pu or other.to_pu != ic.from_pu:
                continue
            if ic.id >= other.id:
                continue  # report each directed pair once
            mine = membership.get(ic.id, frozenset())
            theirs = membership.get(other.id, frozenset())
            if mine == theirs:
                continue
            yield Finding(
                message=(
                    f"interconnects {ic.id!r} and {other.id!r} form a"
                    f" directed pair but belong to different contention"
                    f" domains ({sorted(mine) or 'none'} vs"
                    f" {sorted(theirs) or 'none'}) — only one direction"
                    f" would contend"
                ),
                location=ctx.location,
                subject=ic.id,
                hint="declare both directions of a channel in the same domain",
            )


def _rule(rule_id, name, severity, summary, check):
    from repro.analysis.rules import Rule

    return Rule(
        id=rule_id,
        name=name,
        pack="interference",
        severity=severity,
        summary=summary,
        check=check,
    )


RULES = [
    _rule(
        "IFR001",
        "undeclared-shared-channel",
        Severity.ERROR,
        "memory region with multiple clients but no contention domain",
        check_undeclared_shared_channel,
    ),
    _rule(
        "IFR002",
        "domain-missing-budget",
        Severity.ERROR,
        "contention domain with no CONTENTION_BANDWIDTH budget",
        check_missing_budget,
    ),
    _rule(
        "IFR003",
        "domain-budget-conflict",
        Severity.ERROR,
        "members of one domain declare different channel budgets",
        check_budget_conflict,
    ),
    _rule(
        "IFR004",
        "domain-over-subscribed",
        Severity.NOTE,
        "member link bandwidth sums past the channel budget",
        check_over_subscribed,
    ),
    _rule(
        "IFR005",
        "dangling-domain-member",
        Severity.ERROR,
        "CONTENTION_MEMBERS names a component that does not exist",
        check_dangling_members,
    ),
    _rule(
        "IFR006",
        "undeclared-cross-domain-route",
        Severity.WARNING,
        "route between domains crosses only undeclared links",
        check_cross_domain_routes,
    ),
    _rule(
        "IFR007",
        "asymmetric-domain-membership",
        Severity.WARNING,
        "directed link pair split across contention domains",
        check_asymmetric_membership,
    ),
    _rule(
        "IFR008",
        "member-exceeds-budget",
        Severity.ERROR,
        "a single member link is faster than its channel budget",
        check_member_exceeds_budget,
    ),
]
