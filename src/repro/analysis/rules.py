"""Rule registry: stable IDs, default severities, selection, overrides.

Rule IDs are part of the tool's public contract (CI configurations and
suppression lists reference them), so IDs are never reused and renaming a
rule keeps its ID.  Conventions::

    PDL0xx   descriptor-local rules      (pack "pdl")
    CAS0xx   program-local rules         (pack "cascabel")
    XAR0xx   cross-artifact rules        (pack "cross")
    IFR0xx   interference-hazard rules   (pack "interference")
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

from repro.analysis.diagnostics import Diagnostic, Finding, Severity

__all__ = ["Rule", "RuleRegistry", "LintConfig", "default_registry"]

_RULE_ID = re.compile(r"^[A-Z]{3}\d{3}$")


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, default severity, and its check function.

    ``check`` receives the pack-specific context object and yields
    :class:`~repro.analysis.diagnostics.Finding` instances; the engine
    stamps the rule ID and the (possibly overridden) severity.
    """

    id: str
    name: str  # kebab-case slug, e.g. "unit-dimension-conflict"
    pack: str  # "pdl" | "cascabel" | "cross"
    severity: Severity
    summary: str  # one line for --list-rules and SARIF metadata
    check: Callable[..., Iterable[Finding]] = field(compare=False, repr=False)

    def __post_init__(self):
        if not _RULE_ID.match(self.id):
            raise ValueError(f"rule id {self.id!r} is not of the form ABC123")


class RuleRegistry:
    """All known rules, addressable by stable ID."""

    def __init__(self):
        self._rules: dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    def register_all(self, rules: Iterable[Rule]) -> None:
        for rule in rules:
            self.register(rule)

    def rule(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(
                f"unknown rule {rule_id!r}; known: {sorted(self._rules)}"
            ) from None

    def rules(self, pack: Optional[str] = None) -> list[Rule]:
        out = [
            r
            for r in self._rules.values()
            if pack is None or r.pack == pack
        ]
        return sorted(out, key=lambda r: r.id)

    def ids(self) -> list[str]:
        return sorted(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)


def _normalize_patterns(patterns) -> Optional[frozenset]:
    if patterns is None:
        return None
    if isinstance(patterns, str):
        patterns = [patterns]
    return frozenset(str(p).strip() for p in patterns if str(p).strip())


def _matches(rule_id: str, patterns: frozenset) -> bool:
    """``PDL001`` matches itself and any prefix (``PDL``, ``PDL0``)."""
    return any(rule_id.startswith(pattern) for pattern in patterns)


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule selection and severity overrides.

    ``select``/``ignore`` accept exact IDs or prefixes (``CAS`` enables
    the whole Cascabel pack).  ``ignore`` wins over ``select``.
    """

    select: Optional[frozenset] = None  # None = all rules
    ignore: frozenset = frozenset()
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    fail_on: Severity = Severity.WARNING

    @classmethod
    def build(
        cls,
        *,
        select=None,
        ignore=None,
        severity_overrides: Optional[Mapping[str, str]] = None,
        fail_on="warning",
    ) -> "LintConfig":
        overrides = {
            str(rule_id): (
                sev if isinstance(sev, Severity) else Severity.parse(sev)
            )
            for rule_id, sev in (severity_overrides or {}).items()
        }
        return cls(
            select=_normalize_patterns(select),
            ignore=_normalize_patterns(ignore) or frozenset(),
            severity_overrides=overrides,
            fail_on=(
                fail_on
                if isinstance(fail_on, Severity)
                else Severity.parse(fail_on)
            ),
        )

    def enabled(self, rule: Rule) -> bool:
        if self.ignore and _matches(rule.id, self.ignore):
            return False
        if self.select is not None:
            return _matches(rule.id, self.select)
        return True

    def effective_severity(self, rule: Rule) -> Severity:
        for pattern, severity in self.severity_overrides.items():
            if rule.id == pattern or rule.id.startswith(pattern):
                return severity
        return rule.severity

    def stamp(self, rule: Rule, finding: Finding) -> Diagnostic:
        return Diagnostic(
            rule=rule.id,
            severity=self.effective_severity(rule),
            message=finding.message,
            location=finding.location,
            subject=finding.subject,
            hint=finding.hint,
        )


def default_registry() -> RuleRegistry:
    """A fresh registry holding every built-in rule pack."""
    # imported here, not at module top: the packs pull in model/cascabel/
    # query layers that must not become dependencies of the diagnostic core
    from repro.analysis import (
        cascabel_rules,
        cross_rules,
        interference_rules,
        pdl_rules,
    )

    registry = RuleRegistry()
    registry.register_all(pdl_rules.RULES)
    registry.register_all(cascabel_rules.RULES)
    registry.register_all(cross_rules.RULES)
    registry.register_all(interference_rules.RULES)
    return registry
