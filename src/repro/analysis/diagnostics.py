"""Structured lint findings: the data model every rule pack emits.

Deliberately dependency-light (stdlib only) so lower layers — e.g.
:mod:`repro.pdl.validator` — can import the payload shape without pulling
in the rule packs or their model/cascabel dependencies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "Severity",
    "SourceLocation",
    "Finding",
    "Diagnostic",
    "LintReport",
]


class Severity(enum.Enum):
    """Finding severity, ordered ``note < warning < error``."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls(str(text).strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {text!r};"
                f" use {', '.join(s.value for s in cls)}"
            ) from None

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank

    def __gt__(self, other: "Severity") -> bool:
        return self.rank > other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank


_SEVERITY_RANK = {Severity.NOTE: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class SourceLocation:
    """Where a finding points: file, 1-based line, 1-based column.

    PDL entities carry no line information after parsing, so descriptor
    findings typically have a file only; Cascabel findings carry the
    pragma's line/column from the lexer.
    """

    file: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None

    def to_payload(self) -> dict:
        payload: dict = {}
        if self.file is not None:
            payload["file"] = self.file
        if self.line is not None:
            payload["line"] = self.line
        if self.column is not None:
            payload["column"] = self.column
        return payload

    def __str__(self) -> str:
        parts = [self.file or "<unknown>"]
        if self.line is not None:
            parts.append(str(self.line))
            if self.column is not None:
                parts.append(str(self.column))
        return ":".join(parts)


@dataclass(frozen=True)
class Finding:
    """What a rule's check function yields — everything but the rule
    identity and severity, which the engine stamps on."""

    message: str
    location: Optional[SourceLocation] = None
    subject: Optional[str] = None  # entity id / interface / variant name
    hint: Optional[str] = None  # how to fix it


@dataclass(frozen=True)
class Diagnostic:
    """One finding, fully attributed: rule ID + severity + location."""

    rule: str  # stable ID, e.g. "PDL001"
    severity: Severity
    message: str
    location: Optional[SourceLocation] = None
    subject: Optional[str] = None
    hint: Optional[str] = None

    def to_payload(self) -> dict:
        payload = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.location is not None and self.location.to_payload():
            payload["location"] = self.location.to_payload()
        if self.subject is not None:
            payload["subject"] = self.subject
        if self.hint is not None:
            payload["hint"] = self.hint
        return payload

    def sort_key(self) -> tuple:
        loc = self.location or SourceLocation()
        return (
            loc.file or "",
            loc.line if loc.line is not None else 0,
            loc.column if loc.column is not None else 0,
            self.rule,
            self.subject or "",
            self.message,
        )

    def format(self) -> str:
        loc = f"{self.location}: " if self.location is not None else ""
        subject = f" [{self.subject}]" if self.subject else ""
        text = f"{loc}{self.severity.value}: {self.rule}{subject}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class LintReport:
    """All diagnostics of one linted artifact."""

    artifact: str  # file path, catalog name, or digest
    kind: str  # "pdl" | "cascabel" | "cross"
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def ok(self) -> bool:
        """Clean at the default gate: nothing at warning level or above."""
        return not self.at_least(Severity.WARNING)

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    def sorted(self) -> "LintReport":
        """Copy with diagnostics in canonical (location, rule) order, so
        renderings of the same findings are byte-identical."""
        return LintReport(
            artifact=self.artifact,
            kind=self.kind,
            diagnostics=sorted(self.diagnostics, key=Diagnostic.sort_key),
        )

    def to_payload(self) -> dict:
        ordered = sorted(self.diagnostics, key=Diagnostic.sort_key)
        return {
            "artifact": self.artifact,
            "kind": self.kind,
            "ok": self.ok,
            "counts": {
                "error": self.count(Severity.ERROR),
                "warning": self.count(Severity.WARNING),
                "note": self.count(Severity.NOTE),
            },
            "diagnostics": [d.to_payload() for d in ordered],
        }

    def fingerprint(self) -> str:
        """Stable sha256 over :meth:`to_payload` (the shared convention
        of every toolchain report object)."""
        from repro.obs.digest import fingerprint_payload

        return fingerprint_payload(self.to_payload())

    def summary(self) -> str:
        return (
            f"{self.artifact}: {self.count(Severity.ERROR)} error(s),"
            f" {self.count(Severity.WARNING)} warning(s),"
            f" {self.count(Severity.NOTE)} note(s)"
        )
