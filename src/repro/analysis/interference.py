"""Whole-platform interference report.

Ties the three interference layers together into one canonical report:
the *declared* contention domains (:mod:`repro.model.contention`), the
*predicted* co-location behavior (the fluid-sharing transfer model of
:mod:`repro.perf.transfer` with ``model_interference=True``), and the
*lint* verdict (the ``IFR`` pack).  The report answers the question the
PML interference-analysis follow-up poses: given this platform
description, which co-located transfers slow each other down, and by how
much?

The pairwise slowdown matrix is computed from first principles: for each
ordered pair of Worker entities ``(victim, aggressor)``, the aggressor's
operand fetch from the host anchor is scheduled at ``t=0`` and the
victim's identical fetch is scheduled concurrently; the entry is the
victim's duration divided by its uncontended duration.  On the Figure-5
GPU platform this reproduces the asymmetry the declarations encode: CPU
fetches crossing the ``ddr`` domain slow 2x under co-location while
PCIe-bound GPU fetches stay link-limited at 1.0x.

Reports follow the repo-wide convention: a deterministic
:meth:`~InterferenceReport.to_payload` and a sha256
:meth:`~InterferenceReport.fingerprint` over it.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.diagnostics import LintReport
from repro.errors import PathError, ReproError
from repro.model.contention import ContentionDomain, collect_contention_domains
from repro.model.platform import Platform
from repro.obs import spans as _obs

__all__ = [
    "DEFAULT_PROBE_BYTES",
    "InterferenceReport",
    "analyze_interference",
    "render_interference_text",
    "interference_main",
]

#: probe operand size for the slowdown matrix: 64 MiB, the scale of a
#: Figure-5 DGEMM tile set where transfer time dominates link latency
DEFAULT_PROBE_BYTES = 64 * 1024 * 1024


@dataclass
class InterferenceReport:
    """Contention domains, utilization, and co-location slowdowns."""

    platform_name: str
    digest: str
    nbytes: float
    domains: list[ContentionDomain] = field(default_factory=list)
    #: worker entity ids with a route from the host anchor, sorted
    actors: list[str] = field(default_factory=list)
    #: actor id → uncontended probe-transfer duration (seconds)
    solo_s: dict[str, float] = field(default_factory=dict)
    #: ``matrix[i][j]``: actor ``i``'s slowdown with actor ``j`` active
    matrix: list[list[float]] = field(default_factory=list)
    lint: Optional[LintReport] = None

    @property
    def ok(self) -> bool:
        """True when the IFR pack found nothing at warning or above."""
        return self.lint is None or self.lint.ok

    def max_slowdown(self) -> float:
        """Worst off-diagonal entry (1.0 when nothing interferes)."""
        worst = 1.0
        for i, row in enumerate(self.matrix):
            for j, value in enumerate(row):
                if i != j and value > worst:
                    worst = value
        return worst

    def utilization(self) -> list[dict]:
        """Per-domain budget vs. member-link demand.

        ``demand_gbs`` sums the member links' own BANDWIDTH figures —
        the load the channel sees when every member link is busy at
        once.  ``utilization`` caps the ratio at 1.0 (the channel
        cannot exceed itself); ``subscription_ratio`` in the domain
        payload keeps the uncapped figure for oversubscription checks.
        """
        rows = []
        for dom in self.domains:
            budget = dom.budget_bps
            links = dom.link_members()
            demand = dom.link_subscription_bps()
            rows.append(
                {
                    "name": dom.name,
                    "budget_gbs": (
                        None if budget is None else round(budget / 1e9, 6)
                    ),
                    "demand_gbs": round(demand / 1e9, 6),
                    "utilization": (
                        None
                        if budget is None or not budget
                        else round(min(1.0, demand / budget), 6)
                    ),
                    "fair_share_gbs": (
                        None
                        if budget is None or not links
                        else round(budget / len(links) / 1e9, 6)
                    ),
                }
            )
        return rows

    def to_payload(self) -> dict:
        payload: dict = {
            "platform": self.platform_name,
            "digest": self.digest,
            "probe_mb": round(self.nbytes / 1e6, 6),
            "domains": [dom.to_payload() for dom in self.domains],
            "utilization": self.utilization(),
            "actors": list(self.actors),
            "solo_s": {
                actor: round(self.solo_s[actor], 9) for actor in self.actors
            },
            "slowdown_matrix": [
                [round(value, 6) for value in row] for row in self.matrix
            ],
            "max_slowdown": round(self.max_slowdown(), 6),
        }
        if self.lint is not None:
            payload["lint"] = self.lint.to_payload()
        return payload

    def fingerprint(self) -> str:
        from repro.obs.digest import fingerprint_payload

        return fingerprint_payload(self.to_payload())


def analyze_interference(
    platform: Platform,
    *,
    nbytes: float = DEFAULT_PROBE_BYTES,
    filename: Optional[str] = None,
) -> InterferenceReport:
    """Build the :class:`InterferenceReport` for one platform.

    Runs the IFR lint pack, collects the declared contention domains,
    and computes the pairwise co-location slowdown matrix with the
    interference-aware transfer model.  Platforms without Masters (or
    without routable Workers) get an empty matrix but still carry the
    lint verdict and domain inventory.
    """
    from repro.analysis.engine import Linter
    from repro.pdl.catalog import content_digest
    from repro.pdl.writer import write_pdl
    from repro.perf.transfer import TransferModel

    with _obs.span("analysis.interference", platform=platform.name):
        lint = Linter().lint_interference(platform, filename=filename)
        domains = collect_contention_domains(platform)
        digest = content_digest(write_pdl(platform))
        report = InterferenceReport(
            platform_name=platform.name,
            digest=digest,
            nbytes=float(nbytes),
            domains=domains,
            lint=lint,
        )
        if not platform.masters:
            return report
        anchor = platform.masters[0].id
        model = TransferModel(platform, model_interference=True)

        actors = []
        for pu in platform.walk():
            if pu.kind != "Worker" or pu.id == anchor:
                continue
            try:
                model.route(anchor, pu.id)
            except PathError:
                continue
            actors.append(pu.id)
        actors.sort()
        report.actors = actors

        for actor in actors:
            model.reset()
            est = model.schedule(anchor, actor, nbytes, 0.0)
            report.solo_s[actor] = est.duration

        for victim in actors:
            row = []
            for aggressor in actors:
                if victim == aggressor:
                    row.append(1.0)
                    continue
                model.reset()
                model.schedule(anchor, aggressor, nbytes, 0.0)
                est = model.schedule(anchor, victim, nbytes, 0.0)
                solo = report.solo_s[victim]
                row.append(est.duration / solo if solo else 1.0)
            report.matrix.append(row)
        return report


# ---------------------------------------------------------------------------
# rendering + CLI (`repro lint interference ...`)
# ---------------------------------------------------------------------------
def render_interference_text(report: InterferenceReport) -> str:
    """Human-readable summary: domains, utilization, slowdown matrix."""
    lines = [f"== {report.platform_name} (interference)"]
    if not report.domains:
        lines.append("  no contention domains declared")
    for row in report.utilization():
        budget = "?" if row["budget_gbs"] is None else f"{row['budget_gbs']:g}"
        util = (
            "?"
            if row["utilization"] is None
            else f"{row['utilization'] * 100:.0f}%"
        )
        lines.append(
            f"  domain {row['name']}: budget {budget} GB/s,"
            f" link demand {row['demand_gbs']:g} GB/s ({util} utilized)"
        )
    if report.actors:
        width = max(len(actor) for actor in report.actors)
        header = " ".join(f"{actor:>{width}}" for actor in report.actors)
        lines.append(f"  slowdown (victim row x aggressor column), probe"
                     f" {report.nbytes / 1e6:g} MB:")
        lines.append(f"  {'':>{width}}  {header}")
        for actor, row in zip(report.actors, report.matrix):
            cells = " ".join(f"{value:>{width}.2f}" for value in row)
            lines.append(f"  {actor:>{width}}  {cells}")
        lines.append(f"  max slowdown: {report.max_slowdown():.2f}x")
    if report.lint is not None:
        if report.lint.diagnostics:
            for diag in report.lint.diagnostics:
                lines.append(
                    f"  {diag.rule} {diag.severity.value}: {diag.message}"
                )
        else:
            lines.append("  lint: clean")
    return "\n".join(lines) + "\n"


def _load_platform_ref(ref: str) -> Platform:
    import os

    from repro.pdl.catalog import load_platform
    from repro.pdl.parser import parse_pdl_file

    if os.path.exists(ref):
        return parse_pdl_file(ref, validate=False)
    return load_platform(ref, validate=False)


def interference_main(argv: Optional[list] = None) -> int:
    """``repro lint interference`` — whole-platform interference report."""
    parser = argparse.ArgumentParser(
        prog="repro lint interference",
        description=(
            "contention-domain inventory, per-domain utilization, and the"
            " pairwise co-location slowdown matrix for PDL platforms"
        ),
    )
    parser.add_argument(
        "platforms",
        nargs="*",
        help="descriptor files or shipped catalog names",
    )
    parser.add_argument(
        "--catalog",
        action="store_true",
        help="also report every shipped catalog descriptor",
    )
    parser.add_argument(
        "--nbytes",
        type=float,
        default=DEFAULT_PROBE_BYTES,
        help="probe transfer size in bytes (default: 64 MiB)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    args = parser.parse_args(argv)

    refs = list(args.platforms)
    if args.catalog:
        from repro.pdl.catalog import available_platforms

        refs.extend(available_platforms())
    if not refs:
        parser.print_usage(sys.stderr)
        print(
            "repro lint interference: nothing to analyze (pass platform"
            " refs or --catalog)",
            file=sys.stderr,
        )
        return 2

    reports = []
    for ref in refs:
        try:
            platform = _load_platform_ref(ref)
        except (OSError, ReproError) as exc:
            print(f"repro lint interference: {ref}: {exc}", file=sys.stderr)
            return 2
        reports.append(
            analyze_interference(platform, nbytes=args.nbytes, filename=ref)
        )

    if args.format == "json":
        document = {
            "tool": "repro-lint-interference",
            "ok": all(r.ok for r in reports),
            "reports": [r.to_payload() for r in reports],
        }
        sys.stdout.write(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
    else:
        for report in reports:
            sys.stdout.write(render_interference_text(report))

    return 0 if all(r.ok for r in reports) else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(interference_main())
