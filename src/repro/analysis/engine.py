"""The :class:`Linter` façade: run rule packs over artifacts.

One entry point per artifact kind — descriptors get the PDL pack plus
the interference pack, programs the Cascabel pack, program × platform
pairs the cross pack — plus path dispatch for the CLI.
Every entry point returns a :class:`~repro.analysis.diagnostics.LintReport`
with diagnostics in canonical (location, rule) order, so repeated runs
over the same input render byte-identically in every output format.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.analysis.cascabel_rules import CascabelContext, build_context
from repro.analysis.cross_rules import CrossContext
from repro.analysis.diagnostics import LintReport
from repro.analysis.pdl_rules import PdlContext
from repro.analysis.rules import LintConfig, RuleRegistry, default_registry
from repro.model.platform import Platform

__all__ = ["Linter", "lint_platform", "lint_program", "lint_cross"]

#: file suffixes the CLI dispatches on
_PDL_SUFFIXES = (".xml", ".pdl")
_PROGRAM_SUFFIXES = (".c", ".cc", ".cpp", ".cxx")


class Linter:
    """One configured lint run: registry + selection/severity config."""

    def __init__(
        self,
        registry: Optional[RuleRegistry] = None,
        config: Optional[LintConfig] = None,
    ):
        self.registry = registry if registry is not None else default_registry()
        self.config = config if config is not None else LintConfig()

    # -- pack runners --------------------------------------------------------
    def _run_pack(self, pack: str, context, report: LintReport) -> LintReport:
        for rule in self.registry.rules(pack):
            if not self.config.enabled(rule):
                continue
            for finding in rule.check(context):
                report.diagnostics.append(self.config.stamp(rule, finding))
        report.diagnostics.sort(key=lambda d: d.sort_key())
        return report

    def lint_platform(
        self, platform: Platform, *, filename: Optional[str] = None
    ) -> LintReport:
        """PDL + interference packs over one parsed platform.

        Both packs read the same context, so every descriptor entry
        point (CLI, registry publish, explore scoring) gets the
        interference hazards alongside the descriptor-local rules."""
        artifact = filename or platform.name
        report = LintReport(artifact=artifact, kind="pdl")
        ctx = PdlContext(platform=platform, filename=filename)
        self._run_pack("pdl", ctx, report)
        return self._run_pack("interference", ctx, report)

    def lint_interference(
        self, platform: Platform, *, filename: Optional[str] = None
    ) -> LintReport:
        """Interference pack alone (the translate hook and the
        interference report want the hazards without re-litigating the
        descriptor-local rules)."""
        artifact = filename or platform.name
        report = LintReport(artifact=artifact, kind="interference")
        ctx = PdlContext(platform=platform, filename=filename)
        return self._run_pack("interference", ctx, report)

    def lint_program(
        self,
        source: Union[str, CascabelContext],
        *,
        filename: str = "<string>",
    ) -> LintReport:
        """Cascabel pack over one annotated translation unit."""
        ctx = (
            source
            if isinstance(source, CascabelContext)
            else build_context(source, filename=filename)
        )
        report = LintReport(artifact=ctx.filename, kind="cascabel")
        return self._run_pack("cascabel", ctx, report)

    def lint_cross(
        self,
        source: Union[str, CascabelContext],
        targets: list[tuple[str, Platform]],
        *,
        filename: str = "<string>",
        expert_variants: bool = False,
    ) -> LintReport:
        """Cross pack: one program against one or more target platforms."""
        ctx = (
            source
            if isinstance(source, CascabelContext)
            else build_context(source, filename=filename)
        )
        cross = CrossContext(
            program=ctx.program,
            targets=list(targets),
            filename=ctx.filename,
            expert_variants=expert_variants,
        )
        labels = ",".join(label for label, _ in targets)
        report = LintReport(
            artifact=f"{ctx.filename} @ {labels or '(no targets)'}",
            kind="cross",
        )
        return self._run_pack("cross", cross, report)

    # -- path / source dispatch ----------------------------------------------
    def lint_path(
        self,
        path: Union[str, Path],
        *,
        targets: Optional[list[tuple[str, Platform]]] = None,
        expert_variants: bool = False,
    ) -> list[LintReport]:
        """Lint one file: descriptors get the PDL pack, programs get the
        Cascabel pack plus — when ``targets`` are supplied — the cross
        pack.  Raises ``ValueError`` for unknown suffixes."""
        path = Path(path)
        suffix = path.suffix.lower()
        text = path.read_text(encoding="utf-8")
        if suffix in _PDL_SUFFIXES:
            from repro.pdl.parser import parse_pdl

            platform = parse_pdl(text, validate=False, name=path.stem)
            return [self.lint_platform(platform, filename=str(path))]
        if suffix in _PROGRAM_SUFFIXES:
            ctx = build_context(text, filename=str(path))
            reports = [self.lint_program(ctx)]
            if targets:
                reports.append(
                    self.lint_cross(
                        ctx, targets, expert_variants=expert_variants
                    )
                )
            return reports
        raise ValueError(
            f"cannot lint {path}: unknown suffix {suffix!r}"
            f" (descriptors: {_PDL_SUFFIXES}, programs: {_PROGRAM_SUFFIXES})"
        )


# -- module-level conveniences ----------------------------------------------
def lint_platform(
    platform: Platform,
    *,
    filename: Optional[str] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    return Linter(config=config).lint_platform(platform, filename=filename)


def lint_program(
    source: str,
    *,
    filename: str = "<string>",
    config: Optional[LintConfig] = None,
) -> LintReport:
    return Linter(config=config).lint_program(source, filename=filename)


def lint_cross(
    source: str,
    targets: list[tuple[str, Platform]],
    *,
    filename: str = "<string>",
    config: Optional[LintConfig] = None,
    expert_variants: bool = False,
) -> LintReport:
    return Linter(config=config).lint_cross(
        source, targets, filename=filename, expert_variants=expert_variants
    )
