"""Platform registry service: a concurrent PDL store + remote selection API.

The paper's descriptors are built to be *shared* — "base descriptors for
common platforms may be provided a priori", with later toolchain stages
filling in ``unfixed`` properties.  This package is that sharing layer:
a content-addressed, versioned store of PDL documents
(:class:`DescriptorStore`) behind a stdlib-only asyncio JSON-over-HTTP
server (:class:`RegistryServer`), exposing the existing toolchain over
the wire — queries (:mod:`repro.query`), structural diffs
(:mod:`repro.pdl.diff`) and batched Cascabel variant pre-selection
(:mod:`repro.cascabel.selection`).

Quick start::

    from repro.service import DescriptorStore, RegistryClient, ServerThread

    with ServerThread() as url:              # seeds the shipped catalog
        client = RegistryClient(url)
        client.platforms()                   # tags -> digests
        client.preselect("xeon_x5550_2gpu", annotated_source)

See ``docs/registry-service.md`` for the wire protocol, caching and
overload semantics.
"""

from repro.service.cache import LRUCache
from repro.service.client import RegistryClient
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.server import RegistryServer, ServerThread, ServiceConfig
from repro.service.store import DescriptorStore, PublishResult

__all__ = [
    "DescriptorStore",
    "PublishResult",
    "LRUCache",
    "ServiceMetrics",
    "percentile",
    "ServiceConfig",
    "RegistryServer",
    "ServerThread",
    "RegistryClient",
]
