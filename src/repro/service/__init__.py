"""Platform registry service: a concurrent PDL store + remote selection API.

The paper's descriptors are built to be *shared* — "base descriptors for
common platforms may be provided a priori", with later toolchain stages
filling in ``unfixed`` properties.  This package is that sharing layer:
a content-addressed, versioned store of PDL documents
(:class:`DescriptorStore`) behind a stdlib-only asyncio JSON-over-HTTP
server (:class:`RegistryServer`), exposing the existing toolchain over
the wire — queries (:mod:`repro.query`), structural diffs
(:mod:`repro.pdl.diff`) and batched Cascabel variant pre-selection
(:mod:`repro.cascabel.selection`).

Since the sharded redesign the registry also scales *out*: a
consistent-hash :class:`ClusterMap` shards blobs by digest and tags by
name across independent :class:`RegistryServer` nodes, each optionally
trailed by oplog-fed read replicas (:class:`RegistryCluster` launches a
topology; :class:`ClusterClient`/:class:`AsyncClusterClient` route by
placement).  :class:`AsyncRegistryClient` is the primary client —
pooled, coalescing, immutable-digest caching — with
:class:`RegistryClient` as its blocking facade; both take a
:class:`RegistryEndpoint`.

Quick start::

    from repro.service import DescriptorStore, RegistryClient, ServerThread

    with ServerThread() as url:              # seeds the shipped catalog
        client = RegistryClient(url)
        client.platforms()                   # tags -> digests
        client.preselect("xeon_x5550_2gpu", annotated_source)

See ``docs/registry-service.md`` for the wire protocol, caching,
overload and cluster-consistency semantics.
"""

from repro.service.async_client import AsyncRegistryClient, RegistryEndpoint
from repro.service.cache import LRUCache, TTLCache
from repro.service.client import RegistryClient
from repro.service.cluster import (
    AsyncClusterClient,
    ClusterClient,
    ClusterMap,
    RegistryCluster,
    ShardSpec,
)
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.ring import HashRing
from repro.service.server import RegistryServer, ServerThread, ServiceConfig
from repro.service.store import DescriptorStore, PublishResult

__all__ = [
    "DescriptorStore",
    "PublishResult",
    "LRUCache",
    "TTLCache",
    "ServiceMetrics",
    "percentile",
    "ServiceConfig",
    "RegistryServer",
    "ServerThread",
    "RegistryClient",
    "RegistryEndpoint",
    "AsyncRegistryClient",
    "HashRing",
    "ShardSpec",
    "ClusterMap",
    "RegistryCluster",
    "AsyncClusterClient",
    "ClusterClient",
]
