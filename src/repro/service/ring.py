"""Consistent-hash ring with virtual nodes (the cluster's placement map).

Descriptors are content-addressed — a blob's digest *is* its identity —
so blob placement reduces to hashing the digest onto a ring of shards.
Tags (the only movable refs) hash by name onto the same ring, making
each tag's owning shard the serialization point for its moves.

The ring is fully deterministic: node positions are sha256 hashes of
``"{node}#{replica}"``, so every client and every server derives the
identical placement from the same member list — no coordination service,
no handshakes.  With ``vnodes`` virtual points per node, adding or
removing one node of N moves ~1/N of the key space (asserted by the
rebalancing test) instead of rehashing everything.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence

__all__ = ["HashRing"]


def _hash64(key: str) -> int:
    """Stable 64-bit position on the ring (sha256 prefix)."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Deterministic consistent-hash ring over named nodes."""

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: List[str] = []
        self._points: List[int] = []  # sorted vnode positions
        self._owners: List[str] = []  # owner of each position (parallel)
        for node in nodes:
            self.add_node(node)

    # -- membership ---------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        for replica in range(self.vnodes):
            point = _hash64(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        keep = [
            (p, o)
            for p, o in zip(self._points, self._owners)
            if o != node
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # -- placement ----------------------------------------------------------
    def node_for(self, key: str) -> str:
        """The node owning ``key`` (first vnode clockwise of its hash)."""
        if not self._points:
            raise ValueError("hash ring has no nodes")
        index = bisect.bisect(self._points, _hash64(key))
        if index == len(self._points):
            index = 0  # wrap around
        return self._owners[index]

    def assignments(self, keys: Sequence[str]) -> Dict[str, str]:
        """``{key: owning node}`` for a batch of keys."""
        return {key: self.node_for(key) for key in keys}

    def load(self, keys: Sequence[str]) -> Dict[str, int]:
        """Keys-per-node histogram (balance introspection)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __repr__(self) -> str:
        return f"HashRing(nodes={self._nodes}, vnodes={self.vnodes})"
