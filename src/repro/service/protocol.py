"""Wire protocol of the platform registry: versioned JSON envelopes, the
route table, and error mapping.

Every response body is JSON.  Failures use one structured shape::

    {"error": {"code": "pdl-error", "type": "PDLParseError",
               "message": "...", "status": 422}}

``error_payload`` maps library exceptions onto that shape (and an HTTP
status); ``raise_for_error`` is the client-side inverse, rehydrating the
closest :mod:`repro.errors` class so callers of
:class:`~repro.service.client.RegistryClient` catch the same exception
types as in-process callers of the toolchain.  A traceback never crosses
the wire: unexpected exceptions map to an opaque ``internal-error``.

Protocol versioning
-------------------
Requests and responses carry an explicit ``X-Repro-Protocol`` header.
Version negotiation happens on first contact: the server answers with
its own version on every response and rejects requests advertising a
version it cannot speak with a clear ``protocol-mismatch`` error
(:class:`~repro.errors.ProtocolMismatchError` client-side) instead of a
confusing payload error.  A request without the header is treated as
legacy version 1, which the current server still accepts.

Route table
-----------
:data:`ROUTES` is the single authority on paths: the server compiles its
dispatch patterns from it, and both the async client and the sync facade
build request paths through :func:`route_path` — no string-literal paths
scattered across modules.  Each route carries its metrics *label*
(``"GET /platforms/{ref}"``), whether it bypasses admission control
(``gated``) and whether it mutates state (``write`` — the set a read
replica refuses).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Optional
from urllib.parse import quote

from repro.errors import (
    CascabelError,
    LintError,
    PDLError,
    ProtocolMismatchError,
    QueryError,
    ReproError,
    RepositoryError,
    SelectionError,
    ServiceError,
    ServiceOverloadError,
    ServiceProtocolError,
    TuningError,
    UnknownPlatformError,
)

__all__ = [
    "JSON_CONTENT_TYPE",
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOLS",
    "PROTOCOL_HEADER",
    "STATUS_PHRASES",
    "Route",
    "ROUTES",
    "route",
    "route_path",
    "check_protocol",
    "dumps",
    "loads",
    "error_payload",
    "raise_for_error",
]

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: current protocol generation (2 = sharded/replicated registry: blob
#: puts, tag directory, oplog replication); 1 = the PR 2 wire format
PROTOCOL_VERSION = 2
#: versions this build can serve/speak
SUPPORTED_PROTOCOLS = (1, 2)
#: request *and* response header carrying the speaker's version
PROTOCOL_HEADER = "X-Repro-Protocol"

STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


# -- route table -------------------------------------------------------------
@dataclass(frozen=True)
class Route:
    """One wire endpoint, shared by server dispatch and client path
    building.  ``template`` uses ``{param}`` placeholders; ``gated``
    routes count against admission control; ``write`` routes mutate the
    store and are refused by read replicas."""

    name: str
    method: str
    template: str
    gated: bool = True
    write: bool = False

    @property
    def label(self) -> str:
        """The metrics/by-endpoint label (``"GET /platforms/{ref}"``)."""
        return f"{self.method} {self.template}"

    def pattern(self) -> re.Pattern:
        regex = re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", self.template)
        return re.compile(f"^{regex}$")

    def path(self, **params: str) -> str:
        path = self.template
        for key, value in params.items():
            path = path.replace("{" + key + "}", quote(str(value), safe=""))
        if "{" in path:
            raise ValueError(f"unfilled parameter in route {self.name}: {path}")
        return path


ROUTES: tuple = (
    Route("index", "GET", "/", gated=False),
    Route("health", "GET", "/healthz", gated=False),
    Route("metrics", "GET", "/metrics", gated=False),
    Route("list", "GET", "/platforms"),
    Route("publish", "PUT", "/platforms/{name}", write=True),
    Route("fetch", "GET", "/platforms/{ref}"),
    Route("delete_tag", "DELETE", "/platforms/{name}", write=True),
    Route("query", "GET", "/platforms/{ref}/query"),
    Route("resolve", "GET", "/tags/{name}"),
    Route("retag", "POST", "/tags", write=True),
    Route("lint", "POST", "/lint"),
    Route("diff", "POST", "/diff"),
    Route("preselect", "POST", "/preselect"),
    Route("blob_put", "PUT", "/blobs/{digest}", write=True),
    # replicas poll this even while the primary sheds load, so it is
    # exempt from admission control like the health/metrics plane
    Route("oplog", "GET", "/oplog", gated=False),
    Route("profiles_list", "GET", "/profiles"),
    Route("profile_put", "PUT", "/profiles/{ref}", write=True),
    Route("profile_get", "GET", "/profiles/{ref}"),
)

_ROUTES_BY_NAME = {r.name: r for r in ROUTES}


def route(route_name: str) -> Route:
    """Look up a route by name (raises ``KeyError`` on typos at import
    time rather than 404s at request time)."""
    return _ROUTES_BY_NAME[route_name]


def route_path(route_name: str, **params: str) -> str:
    """Build the request path of a named route with quoted parameters.

    (The first parameter is positional-only in spirit: route templates
    own ``name``/``ref``-style keywords.)
    """
    return _ROUTES_BY_NAME[route_name].path(**params)


def check_protocol(raw_version: Optional[str], *, side: str) -> int:
    """Validate a peer's advertised protocol version.

    ``raw_version`` is the :data:`PROTOCOL_HEADER` value (or ``None``
    when absent — a legacy version-1 peer).  Returns the negotiated
    version or raises :class:`ProtocolMismatchError` with a message that
    names both speakers' versions.  ``side`` ("server"/"client") only
    flavors the message.
    """
    if raw_version is None:
        version = 1
    else:
        try:
            version = int(str(raw_version).strip())
        except ValueError:
            raise ProtocolMismatchError(
                f"unparseable {PROTOCOL_HEADER} header {raw_version!r}"
            ) from None
    if version not in SUPPORTED_PROTOCOLS:
        peer = "client" if side == "server" else "server"
        raise ProtocolMismatchError(
            f"{peer} speaks registry protocol {version}, but this {side}"
            f" supports {list(SUPPORTED_PROTOCOLS)};"
            f" upgrade the {'client' if version < PROTOCOL_VERSION else side}"
        )
    return version


#: exception class → (HTTP status, stable error code).  Ordered most
#: specific first; the first isinstance match wins.
_ERROR_MAP: list = [
    (UnknownPlatformError, 404, "unknown-platform"),
    (ServiceOverloadError, 429, "overloaded"),
    (ProtocolMismatchError, 400, "protocol-mismatch"),
    (ServiceProtocolError, 400, "bad-request"),
    (ServiceError, 500, "service-error"),
    (LintError, 422, "lint-error"),
    (SelectionError, 422, "selection-error"),
    (RepositoryError, 422, "repository-error"),
    (CascabelError, 422, "cascabel-error"),
    (PDLError, 422, "pdl-error"),
    (QueryError, 422, "query-error"),
    (TuningError, 422, "tuning-error"),
    (ReproError, 422, "repro-error"),
]

#: error code → exception class for client-side rehydration
_CODE_MAP: dict = {
    "unknown-platform": UnknownPlatformError,
    "overloaded": ServiceOverloadError,
    "protocol-mismatch": ProtocolMismatchError,
    "bad-request": ServiceProtocolError,
    "service-error": ServiceError,
    "read-only-replica": ServiceError,
    "lint-error": LintError,
    "selection-error": SelectionError,
    "repository-error": RepositoryError,
    "cascabel-error": CascabelError,
    "pdl-error": PDLError,
    "query-error": QueryError,
    "tuning-error": TuningError,
    "repro-error": ReproError,
}


def dumps(payload) -> bytes:
    """Canonical wire encoding (compact separators, sorted keys)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def loads(body: bytes):
    """Decode a JSON body; raises :class:`ServiceProtocolError` on junk."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceProtocolError(f"request body is not valid JSON: {exc}") from exc


def error_payload(exc: Exception) -> tuple:
    """Map an exception to ``(http_status, structured error body)``.

    Anything outside the library hierarchy becomes an opaque 500 — the
    message is a generic string so internals (and tracebacks) never leak
    to clients.
    """
    for cls, status, code in _ERROR_MAP:
        if isinstance(exc, cls):
            error = {
                "code": code,
                "type": type(exc).__name__,
                "message": str(exc),
                "status": status,
            }
            if isinstance(exc, LintError) and exc.diagnostics:
                error["diagnostics"] = list(exc.diagnostics)
            return status, {"error": error}
    return 500, {
        "error": {
            "code": "internal-error",
            "type": "InternalError",
            "message": "internal server error",
            "status": 500,
        }
    }


def raise_for_error(
    status: int, payload, *, retry_after: Optional[float] = None
) -> None:
    """Client side: re-raise the library exception a failure body encodes."""
    if status < 400:
        return
    error = payload.get("error", {}) if isinstance(payload, dict) else {}
    code = error.get("code", "service-error")
    message = error.get("message", f"registry request failed with HTTP {status}")
    if status == 429 or code == "overloaded":
        raise ServiceOverloadError(message, retry_after=retry_after)
    cls = _CODE_MAP.get(code)
    if cls is None:
        cls = ServiceProtocolError if status < 500 else ServiceError
    if cls is LintError:
        raise LintError(message, diagnostics=error.get("diagnostics"))
    raise cls(message)
