"""Wire protocol of the platform registry: JSON envelopes + error mapping.

Every response body is JSON.  Failures use one structured shape::

    {"error": {"code": "pdl-error", "type": "PDLParseError",
               "message": "...", "status": 422}}

``error_payload`` maps library exceptions onto that shape (and an HTTP
status); ``raise_for_error`` is the client-side inverse, rehydrating the
closest :mod:`repro.errors` class so callers of
:class:`~repro.service.client.RegistryClient` catch the same exception
types as in-process callers of the toolchain.  A traceback never crosses
the wire: unexpected exceptions map to an opaque ``internal-error``.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.errors import (
    CascabelError,
    LintError,
    PDLError,
    QueryError,
    ReproError,
    RepositoryError,
    SelectionError,
    ServiceError,
    ServiceOverloadError,
    ServiceProtocolError,
    TuningError,
    UnknownPlatformError,
)

__all__ = [
    "JSON_CONTENT_TYPE",
    "STATUS_PHRASES",
    "dumps",
    "loads",
    "error_payload",
    "raise_for_error",
]

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: exception class → (HTTP status, stable error code).  Ordered most
#: specific first; the first isinstance match wins.
_ERROR_MAP: list[tuple[type, int, str]] = [
    (UnknownPlatformError, 404, "unknown-platform"),
    (ServiceOverloadError, 429, "overloaded"),
    (ServiceProtocolError, 400, "bad-request"),
    (ServiceError, 500, "service-error"),
    (LintError, 422, "lint-error"),
    (SelectionError, 422, "selection-error"),
    (RepositoryError, 422, "repository-error"),
    (CascabelError, 422, "cascabel-error"),
    (PDLError, 422, "pdl-error"),
    (QueryError, 422, "query-error"),
    (TuningError, 422, "tuning-error"),
    (ReproError, 422, "repro-error"),
]

#: error code → exception class for client-side rehydration
_CODE_MAP: dict[str, type] = {
    "unknown-platform": UnknownPlatformError,
    "overloaded": ServiceOverloadError,
    "bad-request": ServiceProtocolError,
    "service-error": ServiceError,
    "lint-error": LintError,
    "selection-error": SelectionError,
    "repository-error": RepositoryError,
    "cascabel-error": CascabelError,
    "pdl-error": PDLError,
    "query-error": QueryError,
    "tuning-error": TuningError,
    "repro-error": ReproError,
}


def dumps(payload) -> bytes:
    """Canonical wire encoding (compact separators, sorted keys)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def loads(body: bytes):
    """Decode a JSON body; raises :class:`ServiceProtocolError` on junk."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceProtocolError(f"request body is not valid JSON: {exc}") from exc


def error_payload(exc: Exception) -> tuple[int, dict]:
    """Map an exception to ``(http_status, structured error body)``.

    Anything outside the library hierarchy becomes an opaque 500 — the
    message is a generic string so internals (and tracebacks) never leak
    to clients.
    """
    for cls, status, code in _ERROR_MAP:
        if isinstance(exc, cls):
            error = {
                "code": code,
                "type": type(exc).__name__,
                "message": str(exc),
                "status": status,
            }
            if isinstance(exc, LintError) and exc.diagnostics:
                error["diagnostics"] = list(exc.diagnostics)
            return status, {"error": error}
    return 500, {
        "error": {
            "code": "internal-error",
            "type": "InternalError",
            "message": "internal server error",
            "status": 500,
        }
    }


def raise_for_error(
    status: int, payload, *, retry_after: Optional[float] = None
) -> None:
    """Client side: re-raise the library exception a failure body encodes."""
    if status < 400:
        return
    error = payload.get("error", {}) if isinstance(payload, dict) else {}
    code = error.get("code", "service-error")
    message = error.get("message", f"registry request failed with HTTP {status}")
    if status == 429 or code == "overloaded":
        raise ServiceOverloadError(message, retry_after=retry_after)
    cls = _CODE_MAP.get(code)
    if cls is None:
        cls = ServiceProtocolError if status < 500 else ServiceError
    if cls is LintError:
        raise LintError(message, diagnostics=error.get("diagnostics"))
    raise cls(message)
