"""Blocking client for the platform registry service.

Thin ``http.client`` wrapper that speaks the JSON protocol of
:mod:`repro.service.server` and rehydrates structured errors back into
:mod:`repro.errors` exceptions, so remote callers handle failures
exactly like in-process toolchain callers.

Overload handling mirrors the runtime's fault idiom: on ``429`` the
client honours the server's ``Retry-After`` (bounded by its own
:class:`~repro.runtime.faults.FaultPolicy` backoff curve) and retries up
to ``policy.max_retries`` times before surfacing
:class:`~repro.errors.ServiceOverloadError`.
"""

from __future__ import annotations

import http.client
import time
from typing import Optional, Union
from urllib.parse import quote, urlencode, urlsplit

from repro.errors import ServiceError, ServiceOverloadError
from repro.model.platform import Platform
from repro.obs import spans as _obs
from repro.pdl.catalog import parse_cached
from repro.pdl.writer import write_pdl
from repro.runtime.faults import FaultPolicy
from repro.service import protocol

__all__ = ["RegistryClient"]


def _default_retry_policy() -> FaultPolicy:
    return FaultPolicy(
        max_retries=3,
        backoff_base_s=0.05,
        backoff_factor=2.0,
        backoff_cap_s=1.0,
        watchdog_s=None,
    )


class RegistryClient:
    """Synchronous registry client bound to one base URL."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        retry_policy: Optional[FaultPolicy] = None,
    ):
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ServiceError(f"unsupported registry scheme {split.scheme!r}")
        if not split.hostname:
            raise ServiceError(f"invalid registry URL {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        #: None disables retry entirely (each 429 raises immediately)
        self.retry_policy = (
            _default_retry_policy() if retry_policy is None else retry_policy
        )

    # -- low-level ----------------------------------------------------------
    def _once(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        trace_id: Optional[str] = None,
    ) -> tuple:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Accept": "application/json", "Connection": "close"}
            if trace_id is not None:
                headers["X-Repro-Trace-Id"] = trace_id
            if body is not None:
                headers["Content-Type"] = (
                    "application/json"
                    if body[:1] in (b"{", b"[")
                    else "application/xml"
                )
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            retry_after = response.getheader("Retry-After")
            return response.status, raw, retry_after
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                f"registry at {self.host}:{self.port} unreachable: {exc}"
            ) from exc
        finally:
            conn.close()

    def request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[bytes] = None,
        params: Optional[dict] = None,
    ) -> dict:
        """One JSON round trip with 429-aware retry; raises rehydrated
        library exceptions on error responses.

        When a tracer is active the round trip runs under a
        ``registry.client.request`` span whose trace id travels in the
        ``X-Repro-Trace-Id`` header — the server opens its request span
        under the same id and echoes the header back, so one trace shows
        both halves of the trip.
        """
        tracer = _obs.get_tracer()
        if tracer is None:
            return self._request_impl(method, path, body=body, params=params)
        with tracer.span(
            "registry.client.request", method=method, path=path
        ) as span_:
            payload = self._request_impl(
                method, path, body=body, params=params, trace_id=span_.trace_id
            )
            return payload

    def _request_impl(
        self,
        method: str,
        path: str,
        *,
        body: Optional[bytes] = None,
        params: Optional[dict] = None,
        trace_id: Optional[str] = None,
    ) -> dict:
        if params:
            path = f"{path}?{urlencode(params)}"
        attempt = 0
        while True:
            status, raw, retry_after_header = self._once(
                method, path, body, trace_id
            )
            try:
                payload = protocol.loads(raw) if raw else {}
            except ServiceError:
                raise ServiceError(
                    f"registry returned non-JSON body for {method} {path}"
                    f" (HTTP {status})"
                ) from None
            if status != 429:
                protocol.raise_for_error(status, payload)
                return payload
            retry_after = None
            if retry_after_header is not None:
                try:
                    retry_after = float(retry_after_header)
                except ValueError:
                    retry_after = None
            policy = self.retry_policy
            if policy is None or attempt >= policy.max_retries:
                protocol.raise_for_error(status, payload, retry_after=retry_after)
            attempt += 1
            delay = policy.backoff(attempt)
            if retry_after is not None:
                delay = max(delay, min(retry_after, policy.backoff_cap_s))
            time.sleep(delay)

    # -- registry operations -------------------------------------------------
    def health(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def info(self) -> dict:
        return self.request("GET", "/")

    def platforms(self) -> list[dict]:
        return self.request("GET", "/platforms")["platforms"]

    def publish(
        self,
        name: str,
        descriptor: Union[str, bytes, Platform],
        *,
        strict_lint: bool = False,
    ) -> dict:
        """Publish XML text or an in-memory :class:`Platform` under ``name``.

        With ``strict_lint`` the registry lints the descriptor first and
        rejects error-severity findings with
        :class:`~repro.errors.LintError` (the finding payloads ride along
        on the exception's ``diagnostics``).
        """
        if isinstance(descriptor, Platform):
            descriptor = write_pdl(descriptor)
        if isinstance(descriptor, str):
            descriptor = descriptor.encode("utf-8")
        return self.request(
            "PUT",
            f"/platforms/{quote(name, safe='')}",
            body=descriptor,
            params={"strict": "1"} if strict_lint else None,
        )

    def fetch(self, ref: str) -> dict:
        """``{"ref", "digest", "name", "xml"}`` of a stored version."""
        return self.request("GET", f"/platforms/{quote(ref, safe='')}")

    def platform(self, ref: str) -> Platform:
        """Fetch and parse a descriptor (client-side digest cache applies)."""
        record = self.fetch(ref)
        return parse_cached(
            record["xml"], digest=record["digest"], name=record["name"]
        )

    def delete_tag(self, name: str) -> dict:
        return self.request("DELETE", f"/platforms/{quote(name, safe='')}")

    def retag(self, name: str, ref: str) -> dict:
        return self.request(
            "POST", "/tags", body=protocol.dumps({"name": name, "ref": ref})
        )

    def query(self, ref: str, selector: Optional[str] = None) -> dict:
        params = {"selector": selector} if selector is not None else None
        return self.request(
            "GET", f"/platforms/{quote(ref, safe='')}/query", params=params
        )

    def lint(self, ref: str) -> dict:
        """Lint a stored version; returns the ``LintReport`` payload plus
        the resolved digest (findings never raise — inspect ``ok``)."""
        return self.request("POST", "/lint", body=protocol.dumps({"ref": ref}))

    def diff(self, old_ref: str, new_ref: str) -> dict:
        return self.request(
            "POST", "/diff", body=protocol.dumps({"old": old_ref, "new": new_ref})
        )

    def preselect(
        self,
        platform_ref: str,
        source: str,
        *,
        expert_variants: bool = False,
        require_fallback: bool = True,
    ) -> dict:
        """Pre-select one program; returns ``{"cached", "report"}``."""
        return self.preselect_batch(
            platform_ref,
            [
                {
                    "source": source,
                    "expert_variants": expert_variants,
                    "require_fallback": require_fallback,
                }
            ],
        )[0]

    def preselect_batch(self, platform_ref: str, programs: list) -> list[dict]:
        """Batched pre-selection: one round trip, one result per program."""
        payload = self.request(
            "POST",
            "/preselect",
            body=protocol.dumps(
                {"platform": platform_ref, "programs": programs}
            ),
        )
        return payload["results"]

    # -- tuning profiles -----------------------------------------------------
    def profiles(self) -> list[dict]:
        """Summaries of every tuning profile stored on the registry."""
        return self.request("GET", "/profiles")["profiles"]

    def publish_profile(self, ref: str, profile) -> dict:
        """Attach a tuning profile to a stored descriptor version.

        ``profile`` is either a :class:`~repro.tune.database.TuningDatabase`
        or its wire payload (``TuningDatabase.to_payload()``); it must
        contain samples for the digest ``ref`` resolves to.
        """
        if hasattr(profile, "to_payload"):
            profile = profile.to_payload()
        return self.request(
            "PUT",
            f"/profiles/{quote(ref, safe='')}",
            body=protocol.dumps(profile),
        )

    def fetch_profile(self, ref: str) -> dict:
        """``{"digest", "profile"}`` — the stored tuning payload of ``ref``."""
        return self.request("GET", f"/profiles/{quote(ref, safe='')}")

    def __repr__(self) -> str:
        return f"RegistryClient(http://{self.host}:{self.port})"
