"""Blocking client for the platform registry service.

Since the sharded-registry redesign this is a **thin sync facade** over
:class:`~repro.service.async_client.AsyncRegistryClient`: every call is
submitted to one shared background event loop, so blocking callers get
the async client's connection pooling, request coalescing and
immutable-digest caching for free.  The caller's contextvars travel into
the loop, so traced calls still produce one client span under the
caller's active span.

Construction takes a base URL *or* a
:class:`~repro.service.async_client.RegistryEndpoint` — the unified
entry-point object shared with the async and cluster clients and with
``Session(registry=...)``.  The old keyword sprawl
(``RegistryClient(url, timeout=…, retry_policy=…)``) still works but
emits :class:`DeprecationWarning`; note that ``retry_policy=None`` now
*disables* retry (each 429 raises immediately), which is what the
keyword always documented.

Overload handling mirrors the runtime's fault idiom: on ``429`` the
client honours the server's ``Retry-After`` (bounded by its own
:class:`~repro.runtime.faults.FaultPolicy` backoff curve) and retries up
to ``policy.max_retries`` times before surfacing
:class:`~repro.errors.ServiceOverloadError`.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

from repro.model.platform import Platform
from repro.runtime.faults import FaultPolicy
from repro.service.async_client import (
    LOOP_RUNNER,
    AsyncRegistryClient,
    RegistryEndpoint,
    default_retry_policy,
)

__all__ = ["RegistryClient"]

# backwards-compatible alias: the default policy moved with the client core
_default_retry_policy = default_retry_policy

_UNSET = object()


class RegistryClient:
    """Synchronous registry client bound to one endpoint."""

    def __init__(
        self,
        endpoint: Union[str, RegistryEndpoint] = "127.0.0.1:8787",
        *,
        timeout=_UNSET,
        retry_policy=_UNSET,
    ):
        overrides = {}
        if timeout is not _UNSET:
            warnings.warn(
                "RegistryClient(timeout=...) is deprecated; pass"
                " RegistryEndpoint(host, port, timeout=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            overrides["timeout"] = timeout
        if retry_policy is not _UNSET:
            warnings.warn(
                "RegistryClient(retry_policy=...) is deprecated; pass"
                " RegistryEndpoint(host, port, retry_policy=...) instead"
                " (None disables retry, as always documented)",
                DeprecationWarning,
                stacklevel=2,
            )
            overrides["retry_policy"] = retry_policy
        self.endpoint = RegistryEndpoint.parse(endpoint, **overrides)
        self._async = AsyncRegistryClient(self.endpoint)

    # endpoint attributes kept as properties for source compatibility
    @property
    def host(self) -> str:
        return self.endpoint.host

    @property
    def port(self) -> int:
        return self.endpoint.port

    @property
    def timeout(self) -> float:
        return self.endpoint.timeout

    @property
    def retry_policy(self) -> Optional[FaultPolicy]:
        return self.endpoint.retry_policy

    # -- low-level ----------------------------------------------------------
    def _call(self, coro):
        """Run one client coroutine on the shared loop, propagating the
        caller's context (and with it any active span)."""
        return LOOP_RUNNER.submit(coro)

    def request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[bytes] = None,
        params: Optional[dict] = None,
    ) -> dict:
        """One JSON round trip with 429-aware retry; raises rehydrated
        library exceptions on error responses.

        When a tracer is active the round trip runs under a
        ``registry.client.request`` span whose trace id travels in the
        ``X-Repro-Trace-Id`` header — the server opens its request span
        under the same id and echoes the header back, so one trace shows
        both halves of the trip.
        """
        return self._call(
            self._async.request(method, path, body=body, params=params)
        )

    # -- registry operations -------------------------------------------------
    def health(self) -> dict:
        return self._call(self._async.health())

    def metrics(self) -> dict:
        return self._call(self._async.metrics())

    def info(self) -> dict:
        return self._call(self._async.info())

    def platforms(self) -> list[dict]:
        return self._call(self._async.platforms())

    def publish(
        self,
        name: str,
        descriptor: Union[str, bytes, Platform],
        *,
        strict_lint: bool = False,
    ) -> dict:
        """Publish XML text or an in-memory :class:`Platform` under ``name``.

        With ``strict_lint`` the registry lints the descriptor first and
        rejects error-severity findings with
        :class:`~repro.errors.LintError` (the finding payloads ride along
        on the exception's ``diagnostics``).
        """
        return self._call(
            self._async.publish(name, descriptor, strict_lint=strict_lint)
        )

    def put_blob(
        self, xml_text: Union[str, bytes], *, strict_lint: bool = False
    ) -> dict:
        """Content-addressed tagless write (``PUT /blobs/{digest}``)."""
        return self._call(self._async.put_blob(xml_text, strict_lint=strict_lint))

    def fetch(self, ref: str) -> dict:
        """``{"ref", "digest", "name", "xml"}`` of a stored version.

        Full-digest refs are served from the client's immutable cache
        once seen — no revalidation, ever.  Tag refs revalidate unless
        the endpoint sets a ``tag_ttl_s`` staleness window.
        """
        return self._call(self._async.fetch(ref))

    def platform(self, ref: str) -> Platform:
        """Fetch and parse a descriptor (client-side digest cache applies)."""
        return self._call(self._async.platform(ref))

    def resolve(self, ref: str) -> str:
        """Tag/prefix → digest (one tiny round trip, TTL-cached)."""
        return self._call(self._async.resolve(ref))

    def delete_tag(self, name: str) -> dict:
        return self._call(self._async.delete_tag(name))

    def retag(self, name: str, ref: str) -> dict:
        return self._call(self._async.retag(name, ref))

    def query(self, ref: str, selector: Optional[str] = None) -> dict:
        return self._call(self._async.query(ref, selector))

    def lint(self, ref: str) -> dict:
        """Lint a stored version; returns the ``LintReport`` payload plus
        the resolved digest (findings never raise — inspect ``ok``)."""
        return self._call(self._async.lint(ref))

    def diff(self, old_ref: str, new_ref: str) -> dict:
        return self._call(self._async.diff(old_ref, new_ref))

    def preselect(
        self,
        platform_ref: str,
        source: str,
        *,
        expert_variants: bool = False,
        require_fallback: bool = True,
    ) -> dict:
        """Pre-select one program; returns ``{"cached", "report"}``."""
        return self._call(
            self._async.preselect(
                platform_ref,
                source,
                expert_variants=expert_variants,
                require_fallback=require_fallback,
            )
        )

    def preselect_batch(self, platform_ref: str, programs: list) -> list[dict]:
        """Batched pre-selection: one round trip, one result per program."""
        return self._call(self._async.preselect_batch(platform_ref, programs))

    # -- tuning profiles -----------------------------------------------------
    def profiles(self) -> list[dict]:
        """Summaries of every tuning profile stored on the registry."""
        return self._call(self._async.profiles())

    def publish_profile(self, ref: str, profile) -> dict:
        """Attach a tuning profile to a stored descriptor version.

        ``profile`` is either a :class:`~repro.tune.database.TuningDatabase`
        or its wire payload (``TuningDatabase.to_payload()``); it must
        contain samples for the digest ``ref`` resolves to.
        """
        return self._call(self._async.publish_profile(ref, profile))

    def fetch_profile(self, ref: str) -> dict:
        """``{"digest", "profile"}`` — the stored tuning payload of ``ref``."""
        return self._call(self._async.fetch_profile(ref))

    # -- lifecycle -----------------------------------------------------------
    def cache_stats(self) -> dict:
        """Pool/cache/coalescing counters of the underlying async client."""
        return self._async.cache_stats()

    def close(self) -> None:
        """Release pooled connections (idempotent; clients are otherwise
        safe to abandon — the pool holds only daemon-loop resources)."""
        self._call(self._async.aclose())

    def __repr__(self) -> str:
        return f"RegistryClient({self.endpoint.base_url})"
