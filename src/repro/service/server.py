"""Asyncio JSON-over-HTTP server for the platform registry.

Stdlib-only: a deliberately small HTTP/1.1 implementation over
``asyncio.start_server`` streams — request line, headers,
``Content-Length`` bodies, keep-alive.  The event loop only does I/O;
store work (XML parsing, selection, diffing) runs on a small thread pool
so one expensive parse cannot stall every connection.

Endpoints
---------
===========================================  ===========================================
``GET  /``                                   service banner + endpoint list
``GET  /healthz``                            liveness (bypasses admission control)
``GET  /metrics``                            :class:`ServiceMetrics` snapshot (bypasses)
``GET  /platforms``                          tags → digests
``PUT  /platforms/{name}``                   publish XML body (201 new blob, 200 known)
``GET  /platforms/{ref}``                    canonical XML + digest (tag/digest/prefix)
``DELETE /platforms/{name}``                 drop a tag (blob stays)
``GET  /platforms/{ref}/query?selector=…``   delegate to :mod:`repro.query`
``POST /tags``                               move a tag: ``{"name", "ref"}``
``POST /lint``                               lint a stored version: ``{"ref": ...}``
``POST /diff``                               ``{"old", "new"}`` → structural diff
``POST /preselect``                          batched Cascabel pre-selection
``GET  /tags/{name}``                        resolve a tag/prefix to its digest
``PUT  /blobs/{digest}``                     content-addressed tagless write (cluster path)
``GET  /oplog?since=N``                      replication pull (bypasses admission)
``GET  /profiles``                           stored tuning profiles (digest summaries)
``PUT  /profiles/{ref}``                     attach a tuning-database payload to a digest
``GET  /profiles/{ref}``                     fetch the tuning profile of a digest
===========================================  ===========================================

The route table itself lives in :data:`repro.service.protocol.ROUTES`;
dispatch patterns, metrics labels, admission exemptions and the
write-set a replica refuses are all derived from it, so server and
clients can never disagree about paths.

Replication
-----------
A server started with ``ServiceConfig(replica_of=primary_url)`` is a
**read replica**: it refuses every write route with ``403
read-only-replica`` and runs a background task that pulls the primary's
ordered oplog (``GET /oplog``) every ``replication_interval_s`` and
applies it through :meth:`DescriptorStore.apply_ops`.  Because blob ops
are content-verified on apply and tag ops replay in publication order, a
replica can serve a *stale* tag for one poll interval but never a wrong
``(digest, xml)`` pair.

Backpressure
------------
Admission control bounds the number of queued + in-flight requests
(``ServiceConfig.max_queue``).  Beyond the bound the server answers
``429`` immediately with a ``Retry-After`` computed from the
:class:`~repro.runtime.faults.FaultPolicy` backoff curve — consecutive
rejections on one connection back off exponentially, mirroring the
runtime's retry idiom.  ``/healthz`` and ``/metrics`` are exempt so the
service stays observable while shedding load.
"""

from __future__ import annotations

import asyncio
import contextvars
import re
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ProtocolMismatchError, ServiceProtocolError
from repro.obs import spans as _obs
from repro.runtime.faults import FaultPolicy
from repro.service import protocol
from repro.service.admission import CapacityGate, default_overload_policy
from repro.service.metrics import ServiceMetrics
from repro.service.store import DescriptorStore

__all__ = ["ServiceConfig", "RegistryServer", "ServerThread"]

_MAX_LINE = 16 * 1024
_MAX_HEADERS = 100

_SERVER_NAME = "repro-registry/1.0"

# backwards-compatible alias: the policy now lives in repro.service.admission
_default_overload_policy = default_overload_policy


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one registry server instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from the server
    max_queue: int = 64
    executor_threads: int = 4
    max_body_bytes: int = 8 * 1024 * 1024
    idle_timeout_s: float = 30.0
    overload_policy: FaultPolicy = field(default_factory=_default_overload_policy)
    #: base URL of the primary this node replicates; None = primary
    replica_of: Optional[str] = None
    #: oplog poll period of a replica (bounds tag staleness)
    replication_interval_s: float = 0.05


@dataclass(frozen=True)
class _Request:
    method: str
    path: str
    query: dict
    headers: dict
    body: bytes


@dataclass
class _Response:
    status: int
    payload: dict
    headers: dict = field(default_factory=dict)


class RegistryServer:
    """The registry's asyncio front end over one :class:`DescriptorStore`."""

    def __init__(
        self,
        store: Optional[DescriptorStore] = None,
        *,
        config: Optional[ServiceConfig] = None,
        seed_catalog: Optional[bool] = None,
    ):
        self.config = config or ServiceConfig()
        if store is None:
            if self.config.replica_of is not None:
                # replicas hold a tag directory (tags may point at blobs
                # owned by other shards) and never self-seed: content
                # arrives exclusively through the oplog
                store = DescriptorStore(tag_directory=True)
            else:
                store = DescriptorStore()
                if seed_catalog is None:
                    seed_catalog = True
        self.store = store
        if seed_catalog:
            self.store.seed_catalog()
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._routes = self._build_routes()
        self._gate = CapacityGate(
            self.config.max_queue, policy=self.config.overload_policy
        )
        self._repl_task: Optional[asyncio.Task] = None
        self.replication = {"pulls": 0, "ops_applied": 0, "errors": 0}

    @property
    def is_replica(self) -> bool:
        return self.config.replica_of is not None

    # -- lifecycle ----------------------------------------------------------
    @property
    def metrics(self) -> ServiceMetrics:
        return self.store.metrics

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def start(self) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="registry-worker",
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self.is_replica:
            self._repl_task = asyncio.ensure_future(self._replicate_forever())

    async def stop(self) -> None:
        if self._repl_task is not None:
            self._repl_task.cancel()
            try:
                await self._repl_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._repl_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    # -- replication (replicas only) -----------------------------------------
    async def _replicate_forever(self) -> None:
        """Pull the primary's oplog on a fixed cadence, forever.

        A primary outage only pauses convergence: the replica keeps
        serving whatever it already holds and resumes from its applied
        sequence number once the primary answers again.
        """
        from repro.service.async_client import AsyncRegistryClient, RegistryEndpoint

        endpoint = RegistryEndpoint.parse(
            self.config.replica_of, retry_policy=None, cache_size=0
        )
        upstream = AsyncRegistryClient(endpoint)
        try:
            while True:
                try:
                    await self.replicate_once(upstream)
                except Exception:  # noqa: BLE001 — primary down/overloaded
                    self.replication["errors"] += 1
                await asyncio.sleep(self.config.replication_interval_s)
        finally:
            await upstream.aclose()

    async def replicate_once(self, upstream) -> int:
        """One oplog pull+apply; returns the number of ops applied.

        Exposed separately so tests can drive replication deterministically
        instead of sleeping for poll intervals.
        """
        applied_total = 0
        while True:
            payload = await upstream.oplog(since=self.store.applied_seq)
            ops = payload.get("ops", [])
            if not ops:
                break
            applied_total += self.store.apply_ops(ops)
            self.replication["pulls"] += 1
            if self.store.applied_seq >= payload.get("head", 0):
                break
        self.replication["ops_applied"] += applied_total
        return applied_total

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling ------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        consecutive_overloads = 0
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                    break
                except ServiceProtocolError as exc:
                    status, payload = protocol.error_payload(exc)
                    await self._write_response(
                        writer, _Response(status, payload), close=True
                    )
                    break
                if request is None:
                    break
                started = time.perf_counter()
                endpoint, response = await self._dispatch(
                    request, consecutive_overloads
                )
                consecutive_overloads = (
                    consecutive_overloads + 1 if response.status == 429 else 0
                )
                self.metrics.observe_request(
                    endpoint, response.status, time.perf_counter() - started
                )
                close = request.headers.get("connection", "").lower() == "close"
                await self._write_response(writer, response, close=close)
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels handlers parked on idle keep-alive
            # connections; finish normally so the StreamReaderProtocol
            # done-callback (which calls task.exception()) stays quiet.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader) -> Optional[_Request]:
        line = await asyncio.wait_for(
            reader.readline(), timeout=self.config.idle_timeout_s
        )
        if not line:
            return None
        if len(line) > _MAX_LINE:
            raise ServiceProtocolError("request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ServiceProtocolError(f"malformed request line: {line[:80]!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(raw) > _MAX_LINE:
                raise ServiceProtocolError("header line too long")
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise ServiceProtocolError(f"malformed header: {raw[:80]!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ServiceProtocolError("too many headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ServiceProtocolError("invalid Content-Length") from None
        if length < 0 or length > self.config.max_body_bytes:
            raise ServiceProtocolError(
                f"body of {length} bytes exceeds limit"
                f" {self.config.max_body_bytes}"
            )
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = dict(parse_qsl(split.query, keep_blank_values=True))
        return _Request(
            method=method.upper(),
            path=unquote(split.path) or "/",
            query=query,
            headers=headers,
            body=body,
        )

    async def _write_response(
        self, writer, response: _Response, *, close: bool
    ) -> None:
        body = protocol.dumps(response.payload)
        phrase = protocol.STATUS_PHRASES.get(response.status, "Unknown")
        headers = {
            "Server": _SERVER_NAME,
            "Content-Type": protocol.JSON_CONTENT_TYPE,
            "Content-Length": str(len(body)),
            "Connection": "close" if close else "keep-alive",
            protocol.PROTOCOL_HEADER: str(protocol.PROTOCOL_VERSION),
            **response.headers,
        }
        head = f"HTTP/1.1 {response.status} {phrase}\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        )
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()

    # -- routing / dispatch --------------------------------------------------
    def _build_routes(self) -> list[tuple[str, re.Pattern, str, Callable, bool]]:
        """Compile dispatch entries from the shared protocol route table.

        Every :data:`repro.service.protocol.ROUTES` entry must have a
        matching ``_ep_<name>`` handler — a missing one fails loudly at
        construction, not with a 404 in production.
        """
        routes = []
        for route in protocol.ROUTES:
            handler = getattr(self, f"_ep_{route.name}")
            routes.append(
                (route.method, route.pattern(), route.label, handler, route.write)
            )
        return routes

    #: endpoints that must answer even when the service sheds load
    #: (health/metrics plane + the replication pull)
    _UNGATED = frozenset(r.label for r in protocol.ROUTES if not r.gated)

    #: request header carrying the caller's trace id (lower-cased by the
    #: reader); echoed back on every response so client and server spans
    #: of one round trip share a trace
    _TRACE_HEADER = "x-repro-trace-id"

    async def _dispatch(
        self, request: _Request, consecutive_overloads: int
    ) -> tuple[str, _Response]:
        handler = None
        endpoint = f"{request.method} {request.path}"
        trace_id = request.headers.get(self._TRACE_HEADER) or None
        try:
            protocol.check_protocol(
                request.headers.get(protocol.PROTOCOL_HEADER.lower()), side="server"
            )
        except ProtocolMismatchError as exc:
            status, payload = protocol.error_payload(exc)
            return endpoint, self._echo_trace(trace_id, _Response(status, payload))
        path_matched = False
        is_write = False
        for method, pattern, label, fn, write in self._routes:
            match = pattern.match(request.path)
            if match is None:
                continue
            path_matched = True
            if method == request.method:
                handler, endpoint, params = fn, label, match.groupdict()
                is_write = write
                break
        if handler is not None and is_write and self.is_replica:
            return endpoint, self._echo_trace(
                trace_id,
                _Response(
                    403,
                    {
                        "error": {
                            "code": "read-only-replica",
                            "type": "ServiceError",
                            "message": (
                                f"{endpoint} mutates the store, but this node is"
                                f" a read replica of {self.config.replica_of};"
                                f" send writes to the primary"
                            ),
                            "status": 403,
                        }
                    },
                ),
            )
        if handler is None:
            status = 405 if path_matched else 404
            code = "method-not-allowed" if path_matched else "not-found"
            return endpoint, self._echo_trace(
                trace_id,
                _Response(
                    status,
                    {
                        "error": {
                            "code": code,
                            "type": "RoutingError",
                            "message": f"no route for {request.method} {request.path}",
                            "status": status,
                        }
                    },
                ),
            )
        if endpoint not in self._UNGATED:
            decision = self._gate.check(
                self.metrics.queue_depth, consecutive=consecutive_overloads
            )
            if not decision:
                retry_after = decision.retry_after_s
                return endpoint, self._echo_trace(
                    trace_id,
                    _Response(
                        429,
                        {
                            "error": {
                                "code": "overloaded",
                                "type": "ServiceOverloadError",
                                "message": (
                                    f"request queue full"
                                    f" ({self.config.max_queue} in flight);"
                                    f" retry after {retry_after:.3f}s"
                                ),
                                "status": 429,
                            }
                        },
                        headers={"Retry-After": f"{retry_after:.3f}"},
                    ),
                )
        self.metrics.enter_queue()
        try:
            tracer = _obs.get_tracer()
            if tracer is None:
                response = await self._execute(handler, request, params)
            else:
                with tracer.span(
                    "registry.server.request",
                    trace_id=trace_id,
                    endpoint=endpoint,
                    method=request.method,
                    path=request.path,
                ) as span_:
                    response = await self._execute(handler, request, params)
                    span_.set(status=response.status)
                    if trace_id is None:
                        trace_id = span_.trace_id
        finally:
            self.metrics.exit_queue()
        return endpoint, self._echo_trace(trace_id, response)

    async def _execute(
        self, handler: Callable, request: _Request, params: dict
    ) -> _Response:
        """Run one handler on the worker pool, carrying the caller's
        context (and with it the current span) into the thread so
        store-level spans attach under the request span."""
        loop = asyncio.get_running_loop()
        ctx = contextvars.copy_context()
        return await loop.run_in_executor(
            self._executor, ctx.run, self._run_handler, handler, request, params
        )

    @staticmethod
    def _echo_trace(trace_id: Optional[str], response: _Response) -> _Response:
        if trace_id:
            response.headers.setdefault("X-Repro-Trace-Id", trace_id)
        return response

    def _run_handler(
        self, handler: Callable, request: _Request, params: dict
    ) -> _Response:
        try:
            return handler(request, **params)
        except Exception as exc:  # noqa: BLE001 — mapped, never leaked
            status, payload = protocol.error_payload(exc)
            return _Response(status, payload)

    # -- endpoint handlers (run on the worker pool) ---------------------------
    def _ep_index(self, request: _Request) -> _Response:
        return _Response(
            200,
            {
                "service": "repro platform registry",
                "version": "1.0",
                "endpoints": sorted(label for _, _, label, _, _ in self._routes),
                "store": self.store.stats(),
            },
        )

    def _ep_health(self, request: _Request) -> _Response:
        return _Response(200, {"status": "ok"})

    def _ep_metrics(self, request: _Request) -> _Response:
        payload = self.metrics.snapshot()
        payload["store"] = self.store.stats()
        if self.is_replica:
            payload["replication"] = {
                "replica_of": self.config.replica_of,
                "applied_seq": self.store.applied_seq,
                **self.replication,
            }
        return _Response(200, payload)

    def _ep_list(self, request: _Request) -> _Response:
        tags = self.store.tags()
        return _Response(
            200,
            {
                "platforms": [
                    {"name": name, "digest": digest}
                    for name, digest in tags.items()
                ],
                "digests": self.store.digests(),
            },
        )

    def _ep_publish(self, request: _Request, name: str) -> _Response:
        if not request.body:
            raise ServiceProtocolError(
                "PUT /platforms/{name} requires a PDL XML body"
            )
        strict = request.query.get("strict", "").lower() in ("1", "true", "yes")
        result = self.store.publish(name, request.body, strict_lint=strict)
        return _Response(201 if result.created else 200, result.to_payload())

    def _ep_fetch(self, request: _Request, ref: str) -> _Response:
        digest = self.store.resolve(ref)
        return _Response(
            200,
            {
                "ref": ref,
                "digest": digest,
                "name": self.store.name_of(digest),
                "xml": self.store.xml(digest),
            },
        )

    def _ep_delete_tag(self, request: _Request, name: str) -> _Response:
        digest = self.store.delete_tag(name)
        return _Response(200, {"name": name, "digest": digest, "deleted": True})

    def _ep_resolve(self, request: _Request, name: str) -> _Response:
        """Tag/prefix → digest without shipping the blob (the cluster
        client's cross-shard hop)."""
        return _Response(200, {"name": name, "digest": self.store.resolve(name)})

    def _ep_blob_put(self, request: _Request, digest: str) -> _Response:
        if not request.body:
            raise ServiceProtocolError(
                "PUT /blobs/{digest} requires a PDL XML body"
            )
        strict = request.query.get("strict", "").lower() in ("1", "true", "yes")
        stored_digest, created = self.store.put_blob(
            request.body.decode("utf-8"), expect_digest=digest, strict_lint=strict
        )
        return _Response(
            201 if created else 200,
            {"digest": stored_digest, "created": created},
        )

    def _ep_oplog(self, request: _Request) -> _Response:
        try:
            since = int(request.query.get("since", "0"))
            limit = int(request.query.get("limit", "1000"))
        except ValueError:
            raise ServiceProtocolError(
                "GET /oplog expects integer 'since'/'limit' parameters"
            ) from None
        ops, head = self.store.ops_since(since, limit=limit)
        return _Response(200, {"since": since, "head": head, "ops": ops})

    def _ep_query(self, request: _Request, ref: str) -> _Response:
        return _Response(
            200, self.store.query(ref, request.query.get("selector"))
        )

    def _ep_retag(self, request: _Request) -> _Response:
        body = protocol.loads(request.body)
        if not isinstance(body, dict) or "name" not in body or "ref" not in body:
            raise ServiceProtocolError(
                'POST /tags expects {"name": ..., "ref": ...}'
            )
        result = self.store.retag(str(body["name"]), str(body["ref"]))
        return _Response(200, result.to_payload())

    def _ep_lint(self, request: _Request) -> _Response:
        body = protocol.loads(request.body)
        if not isinstance(body, dict) or "ref" not in body:
            raise ServiceProtocolError('POST /lint expects {"ref": ...}')
        return _Response(200, self.store.lint(str(body["ref"])))

    def _ep_diff(self, request: _Request) -> _Response:
        body = protocol.loads(request.body)
        if not isinstance(body, dict) or "old" not in body or "new" not in body:
            raise ServiceProtocolError('POST /diff expects {"old": ..., "new": ...}')
        return _Response(200, self.store.diff(str(body["old"]), str(body["new"])))

    def _ep_preselect(self, request: _Request) -> _Response:
        body = protocol.loads(request.body)
        if not isinstance(body, dict) or "platform" not in body:
            raise ServiceProtocolError(
                'POST /preselect expects {"platform": ..., "programs": [...]}'
            )
        if "programs" in body:
            programs = body["programs"]
        elif "program" in body:
            programs = [body["program"]]
        else:
            raise ServiceProtocolError(
                'POST /preselect requires "program" or "programs"'
            )
        if not isinstance(programs, list) or not programs:
            raise ServiceProtocolError('"programs" must be a non-empty list')
        ref = str(body["platform"])
        reports = []
        for entry in programs:
            if isinstance(entry, str):
                entry = {"source": entry}
            if not isinstance(entry, dict) or "source" not in entry:
                raise ServiceProtocolError(
                    'each program entry needs a "source" field'
                )
            payload, cached = self.store.preselect(
                ref,
                str(entry["source"]),
                expert_variants=bool(entry.get("expert_variants", False)),
                require_fallback=bool(entry.get("require_fallback", True)),
            )
            reports.append({"cached": cached, "report": payload})
        return _Response(200, {"platform": ref, "results": reports})

    def _ep_profiles_list(self, request: _Request) -> _Response:
        return _Response(200, {"profiles": self.store.profiles()})

    def _ep_profile_put(self, request: _Request, ref: str) -> _Response:
        body = protocol.loads(request.body)
        if not isinstance(body, dict):
            raise ServiceProtocolError(
                "PUT /profiles/{ref} expects a tuning-database JSON payload"
            )
        result = self.store.put_profile(ref, body)
        return _Response(201 if result["created"] else 200, result)

    def _ep_profile_get(self, request: _Request, ref: str) -> _Response:
        return _Response(200, self.store.get_profile(ref))


class ServerThread:
    """Run a :class:`RegistryServer` on a background thread (blocking
    callers: tests, the CLI, :class:`~repro.service.client.RegistryClient`
    examples).  Usable as a context manager::

        with ServerThread(seed_catalog=True) as url:
            client = RegistryClient(url)
    """

    def __init__(
        self,
        store: Optional[DescriptorStore] = None,
        *,
        config: Optional[ServiceConfig] = None,
        seed_catalog: Optional[bool] = None,
    ):
        self._store = store
        self._config = config
        self._seed = seed_catalog
        self._thread = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = None
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[RegistryServer] = None
        self.base_url: Optional[str] = None

    def start(self) -> str:
        import threading

        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="registry-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.base_url is None:
            raise RuntimeError("registry server failed to start in time")
        return self.base_url

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.server = RegistryServer(
                self._store, config=self._config, seed_catalog=self._seed
            )
            await self.server.start()
            self.base_url = self.server.base_url
        except BaseException as exc:  # startup failed: surface in start()
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await self.server.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
