"""``repro-registry`` command line interface.

Subcommands::

    repro-registry serve [--host H] [--port P] [--no-seed] [--max-queue N]
    repro-registry list --url URL
    repro-registry publish <name> <file.xml> --url URL
    repro-registry fetch <ref> --url URL [-o out.xml]
    repro-registry preselect <platform-ref> <program.c> --url URL
    repro-registry diff <old-ref> <new-ref> --url URL
    repro-registry metrics --url URL
    repro-registry cluster serve --shards N --replicas R --map-file F
    repro-registry cluster status --map-file F

``serve`` runs the asyncio server in the foreground (seeded with the
shipped catalog unless ``--no-seed``); every other single-node
subcommand is a thin :class:`~repro.service.client.RegistryClient` call
against ``--url``.

``cluster serve`` launches an N-shard × R-replica topology (every node a
full registry server with its own store and port), writes the
:class:`~repro.service.cluster.ClusterMap` to ``--map-file`` and serves
until interrupted (or ``--run-seconds``); ``cluster status`` reads a map
file and reports per-shard blob/tag counts and replication lag.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.errors import ReproError

__all__ = ["main", "build_arg_parser"]

_DEFAULT_URL = "http://127.0.0.1:8787"


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-registry",
        description="Platform registry service: PDL store + remote selection API",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the registry server (foreground)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787)
    serve.add_argument(
        "--no-seed",
        action="store_true",
        help="do not pre-publish the shipped descriptor catalog",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="max queued+in-flight requests before 429 (default 64)",
    )
    serve.add_argument(
        "--threads", type=int, default=4, help="store worker threads (default 4)"
    )

    def client_parser(name: str, help_text: str):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--url", default=_DEFAULT_URL, help="registry base URL")
        return p

    client_parser("list", "list stored platforms (tags and digests)")

    publish = client_parser("publish", "publish a descriptor file under a tag")
    publish.add_argument("name", help="tag to publish under")
    publish.add_argument("file", help="PDL XML file")

    fetch = client_parser("fetch", "fetch a stored descriptor")
    fetch.add_argument("ref", help="tag, digest, or digest prefix")
    fetch.add_argument("-o", "--output", help="write XML here instead of stdout")

    preselect = client_parser(
        "preselect", "run Cascabel variant pre-selection remotely"
    )
    preselect.add_argument("platform", help="target platform ref")
    preselect.add_argument("program", help="annotated C/C++ translation unit")
    preselect.add_argument(
        "--expert-variants",
        action="store_true",
        help="also register the builtin expert variants (CUBLAS/SPE)",
    )
    preselect.add_argument(
        "--no-require-fallback",
        action="store_true",
        help="do not demand a sequential fallback per interface",
    )

    diff = client_parser("diff", "structural diff of two stored versions")
    diff.add_argument("old")
    diff.add_argument("new")

    client_parser("metrics", "print the service metrics snapshot")

    cluster = sub.add_parser(
        "cluster", help="sharded/replicated registry topologies"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    cserve = cluster_sub.add_parser(
        "serve", help="launch an N-shard x R-replica topology (foreground)"
    )
    cserve.add_argument("--shards", type=int, default=4)
    cserve.add_argument("--replicas", type=int, default=0)
    cserve.add_argument("--host", default="127.0.0.1")
    cserve.add_argument(
        "--map-file",
        required=True,
        help="write the cluster map (JSON) here for clients",
    )
    cserve.add_argument(
        "--no-seed",
        action="store_true",
        help="do not publish the shipped catalog through the cluster",
    )
    cserve.add_argument(
        "--run-seconds",
        type=float,
        default=None,
        help="serve for a fixed duration then exit (default: until Ctrl-C)",
    )

    cstatus = cluster_sub.add_parser(
        "status", help="report shard sizes and replication lag"
    )
    cstatus.add_argument("--map-file", required=True, help="cluster map JSON")
    return parser


def _serve(args) -> int:
    # imported lazily so client subcommands stay cheap
    from repro.service.server import RegistryServer, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        executor_threads=args.threads,
    )
    server = RegistryServer(config=config, seed_catalog=not args.no_seed)

    async def run() -> None:
        await server.start()
        print(
            f"repro-registry serving on {server.base_url}"
            f" ({len(server.store.tags())} platforms seeded)",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("registry stopped", file=sys.stderr)
    return 0


def _cluster_serve(args) -> int:
    import time

    from repro.service.cluster import RegistryCluster

    cluster = RegistryCluster(
        shards=args.shards,
        replicas=args.replicas,
        host=args.host,
        seed_catalog=not args.no_seed,
    )
    cluster_map = cluster.start()
    try:
        cluster_map.save(args.map_file)
        print(
            f"repro-registry cluster serving {args.shards} shard(s)"
            f" x {args.replicas} replica(s); map written to {args.map_file}",
            flush=True,
        )
        for spec in cluster_map.shards:
            extra = f" (+{len(spec.replicas)} replicas)" if spec.replicas else ""
            print(f"  {spec.shard_id}: {spec.primary}{extra}", flush=True)
        try:
            if args.run_seconds is not None:
                time.sleep(args.run_seconds)
            else:
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            print("cluster stopped", file=sys.stderr)
    finally:
        cluster.stop()
    return 0


def _cluster_status(args) -> int:
    from repro.service.cluster import ClusterClient

    client = ClusterClient(args.map_file)
    try:
        status = client.status()
    finally:
        client.close()
    for shard in status["shards"]:
        print(
            f"{shard['id']}: {shard['primary']}"
            f"  blobs={shard['blobs']} tags={shard['tags']}"
            f" oplog_head={shard['oplog_head']}"
        )
        for replica in shard["replicas"]:
            print(
                f"  replica {replica['url']}"
                f"  applied_seq={replica['applied_seq']} lag={replica['lag']}"
            )
    print(f"converged: {status['converged']}")
    return 0


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)

    if args.command == "serve":
        return _serve(args)

    if args.command == "cluster":
        try:
            if args.cluster_command == "serve":
                return _cluster_serve(args)
            if args.cluster_command == "status":
                return _cluster_status(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        raise AssertionError(
            f"unhandled cluster command {args.cluster_command!r}"
        )

    from repro.service.client import RegistryClient

    client = RegistryClient(args.url)
    try:
        if args.command == "list":
            for entry in client.platforms():
                print(f"{entry['digest'][:12]}  {entry['name']}")
            return 0

        if args.command == "publish":
            with open(args.file, "r", encoding="utf-8") as handle:
                result = client.publish(args.name, handle.read())
            state = "new version" if result["created"] else "already stored"
            moved = ", tag moved" if result["moved"] else ""
            print(f"{result['digest'][:12]}  {result['name']} ({state}{moved})")
            return 0

        if args.command == "fetch":
            record = client.fetch(args.ref)
            if args.output:
                with open(args.output, "w", encoding="utf-8") as handle:
                    handle.write(record["xml"])
                print(f"wrote {record['digest'][:12]} to {args.output}")
            else:
                print(record["xml"], end="")
            return 0

        if args.command == "preselect":
            with open(args.program, "r", encoding="utf-8") as handle:
                source = handle.read()
            result = client.preselect(
                args.platform,
                source,
                expert_variants=args.expert_variants,
                require_fallback=not args.no_require_fallback,
            )
            report = result["report"]
            origin = "cache" if result["cached"] else "computed"
            print(
                f"selection for {report['platform']!r}"
                f" [{report['digest'][:12]}] ({origin}):"
            )
            for interface, variants in report["selected"].items():
                names = ", ".join(
                    f"{v['name']}({'/'.join(v['targets'])})" for v in variants
                )
                print(f"  {interface}: {names}")
            for name, reason in report["pruned"].items():
                print(f"  pruned {name}: {reason}")
            return 0

        if args.command == "diff":
            payload = client.diff(args.old, args.new)
            if payload["identical"]:
                print("no differences")
            for change in payload["changes"]:
                detail = f": {change['detail']}" if change["detail"] else ""
                print(f"[{change['kind']}] {change['subject']}{detail}")
            return 0

        if args.command == "metrics":
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
            return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
