"""Content-addressed store of PDL descriptors (the registry's heart).

Versioning model
----------------
A descriptor's immutable identity is the sha256 digest of its *canonical*
serialization (parse → :func:`repro.pdl.writer.write_pdl`), so two
documents that differ only in formatting or attribute order share one
version id.  Human-facing *names* are movable tags onto digests, exactly
like git refs: ``publish("gpubox", xml)`` stores the blob under its
digest and points the ``gpubox`` tag at it; re-publishing different
content moves the tag while the old version stays fetchable by digest.

Hot paths
---------
* parsed :class:`~repro.model.platform.Platform` objects are kept in a
  digest-keyed LRU (shared with :mod:`repro.pdl.catalog`'s module cache,
  so catalog loads and registry fetches never parse the same bytes
  twice), and
* pre-selection results are memoized under
  ``(platform digest, program digest, options)``.  Keys embed the
  *digest*, never the tag, so a tag move can't serve a stale result; the
  move additionally evicts memo entries of the orphaned digest.

All operations are thread-safe; the store is shared by the asyncio
server's worker threads and any in-process callers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import UnknownPlatformError
from repro.model.platform import Platform
from repro.pdl.catalog import (
    available_platforms,
    content_digest,
    parse_cached,
    platform_path,
)
from repro.pdl.diff import diff_platforms
from repro.pdl.writer import write_pdl
from repro.query.api import PlatformQuery
from repro.cascabel.frontend import parse_program
from repro.cascabel.repository import TaskRepository
from repro.cascabel.selection import preselect
from repro.service.cache import LRUCache
from repro.service.metrics import ServiceMetrics

__all__ = ["PublishResult", "DescriptorStore"]

#: minimum length of a digest prefix accepted by :meth:`DescriptorStore.resolve`
_MIN_PREFIX = 8


@dataclass(frozen=True)
class PublishResult:
    """Outcome of one publish/retag operation."""

    name: str
    digest: str
    created: bool  # a new blob was stored
    moved: bool  # the tag previously pointed at a different digest

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "digest": self.digest,
            "created": self.created,
            "moved": self.moved,
        }


class DescriptorStore:
    """Concurrent content-addressed PDL store with memoized toolchain ops."""

    def __init__(
        self,
        *,
        platform_cache_size: int = 64,
        preselect_cache_size: int = 256,
        metrics: Optional[ServiceMetrics] = None,
    ):
        self.metrics = metrics or ServiceMetrics()
        self._lock = threading.RLock()
        self._blobs: dict[str, str] = {}  # digest -> canonical XML
        self._tags: dict[str, str] = {}  # name -> digest
        self._platforms = LRUCache(platform_cache_size)  # digest -> master copy
        self._preselect = LRUCache(preselect_cache_size)
        #: platform digest -> tuning profile payload (TuningDatabase wire
        #: format restricted to that one platform)
        self._profiles: dict[str, dict] = {}

    # -- publishing ---------------------------------------------------------
    def publish(
        self, name: str, xml_text: Union[str, bytes], *, strict_lint: bool = False
    ) -> PublishResult:
        """Store a descriptor under ``name``.

        The document is parsed (and validated — malformed XML raises
        :class:`~repro.errors.PDLError` before anything is stored),
        canonicalized, and content-addressed.  Publishing identical
        content twice is idempotent.

        With ``strict_lint`` the PDL and interference (IFR) rule packs
        run before anything is stored, and error-severity findings
        reject the publish with :class:`~repro.errors.LintError` — a
        descriptor whose shared channels are undeclared never enters
        the registry.
        """
        if isinstance(xml_text, bytes):
            xml_text = xml_text.decode("utf-8")
        platform = parse_cached(xml_text, name=name)
        if strict_lint:
            from repro.analysis.diagnostics import Severity

            report = self._lint_platform(platform, name)
            errors = report.at_least(Severity.ERROR)
            if errors:
                from repro.errors import LintError

                raise LintError(
                    f"strict lint rejected {name!r}:"
                    f" {len(errors)} error-severity finding(s)",
                    diagnostics=[d.to_payload() for d in errors],
                )
        canonical = write_pdl(platform)
        digest = content_digest(canonical)
        with self._lock:
            created = digest not in self._blobs
            if created:
                self._blobs[digest] = canonical
            previous = self._tags.get(name)
            moved = previous is not None and previous != digest
            self._tags[name] = digest
        # warm the parse cache with the already-parsed document
        if digest not in self._platforms:
            self._platforms.put(digest, platform.copy())
        if moved:
            self._invalidate_preselect(previous)
        return PublishResult(name=name, digest=digest, created=created, moved=moved)

    def retag(self, name: str, ref: str) -> PublishResult:
        """Point tag ``name`` at an existing version (tag or digest ref)."""
        digest = self.resolve(ref)
        with self._lock:
            previous = self._tags.get(name)
            moved = previous is not None and previous != digest
            self._tags[name] = digest
        if moved:
            self._invalidate_preselect(previous)
        return PublishResult(name=name, digest=digest, created=False, moved=moved)

    def delete_tag(self, name: str) -> str:
        """Remove a tag (the blob stays fetchable by digest); returns the
        digest the tag pointed at."""
        with self._lock:
            try:
                digest = self._tags.pop(name)
            except KeyError:
                raise UnknownPlatformError(f"unknown platform tag {name!r}") from None
        self._invalidate_preselect(digest)
        return digest

    def seed_catalog(self) -> list[PublishResult]:
        """Publish every shipped catalog descriptor (the paper's a-priori
        "base descriptors for common platforms")."""
        results = []
        for name in available_platforms():
            with open(platform_path(name), "r", encoding="utf-8") as handle:
                results.append(self.publish(name, handle.read()))
        return results

    def _invalidate_preselect(self, digest: Optional[str]) -> None:
        if digest is None:
            return
        with self._lock:
            referenced = digest in self._tags.values()
        if not referenced:
            self._preselect.evict_where(lambda key: key[0] == digest)

    # -- resolution / fetch -------------------------------------------------
    def resolve(self, ref: str) -> str:
        """Resolve a tag name, full digest, or unique digest prefix."""
        with self._lock:
            if ref in self._tags:
                return self._tags[ref]
            if ref in self._blobs:
                return ref
            if len(ref) >= _MIN_PREFIX:
                matches = [d for d in self._blobs if d.startswith(ref)]
                if len(matches) == 1:
                    return matches[0]
                if len(matches) > 1:
                    raise UnknownPlatformError(
                        f"ambiguous digest prefix {ref!r} ({len(matches)} matches)"
                    )
            known = sorted(self._tags)
        raise UnknownPlatformError(
            f"unknown platform {ref!r}; known tags: {known}"
        )

    def xml(self, ref: str) -> str:
        """Canonical XML of a stored version."""
        digest = self.resolve(ref)
        with self._lock:
            return self._blobs[digest]

    def platform(self, ref: str) -> Platform:
        """Parsed :class:`Platform` for a stored version (LRU-cached).

        Returns an independent copy; mutating it cannot corrupt the
        cache or other callers.
        """
        digest = self.resolve(ref)
        master = self._platforms.get(digest)
        hit = master is not None
        self.metrics.record_platform_cache(hit)
        if not hit:
            with self._lock:
                text = self._blobs[digest]
            master = parse_cached(text, digest=digest)
            self._platforms.put(digest, master.copy())
        return master.copy()

    def tags(self) -> dict[str, str]:
        with self._lock:
            return dict(sorted(self._tags.items()))

    def digests(self) -> list[str]:
        with self._lock:
            return sorted(self._blobs)

    def name_of(self, digest: str) -> Optional[str]:
        """Some tag currently pointing at ``digest`` (alphabetical first)."""
        with self._lock:
            names = sorted(n for n, d in self._tags.items() if d == digest)
        return names[0] if names else None

    # -- toolchain delegation -----------------------------------------------
    def query(self, ref: str, selector: Optional[str] = None) -> dict:
        """Evaluate a selector via :class:`repro.query.PlatformQuery`, or
        summarize the platform when no selector is given."""
        platform = self.platform(ref)
        q = PlatformQuery(platform)
        if selector is None:
            return {
                "platform": platform.name,
                "digest": self.resolve(ref),
                "architectures": sorted(platform.architectures()),
                "total_pus": platform.total_pu_count(),
                "masters": [pu.id for pu in platform.masters],
                "workers": [pu.id for pu in platform.workers()],
            }
        matched = q.select(selector)
        return {
            "platform": platform.name,
            "selector": selector,
            "matches": [
                {
                    "id": pu.id,
                    "kind": pu.kind,
                    "architecture": pu.architecture,
                    "quantity": pu.quantity,
                }
                for pu in matched
            ],
        }

    def diff(self, old_ref: str, new_ref: str) -> dict:
        """Structural diff of two stored versions."""
        old_digest, new_digest = self.resolve(old_ref), self.resolve(new_ref)
        diff = diff_platforms(self.platform(old_digest), self.platform(new_digest))
        return {
            "old": {"ref": old_ref, "digest": old_digest, "name": diff.old_name},
            "new": {"ref": new_ref, "digest": new_digest, "name": diff.new_name},
            "identical": diff.identical,
            "changes": [
                {"kind": c.kind.value, "subject": c.subject, "detail": c.detail}
                for c in diff.changes
            ],
        }

    def preselect(
        self,
        ref: str,
        program_source: str,
        *,
        expert_variants: bool = False,
        require_fallback: bool = True,
    ) -> tuple[dict, bool]:
        """Cascabel variant pre-selection against a stored descriptor.

        Returns ``(payload, cached)``.  Results are memoized under the
        resolved *digest* (never the tag), so identical requests are
        served from memory and a tag move naturally changes the key.
        Raises :class:`~repro.errors.CascabelError` subclasses on bad
        programs or unsatisfiable selections.
        """
        digest = self.resolve(ref)
        key = (
            digest,
            content_digest(program_source),
            bool(expert_variants),
            bool(require_fallback),
        )
        cached = self._preselect.get(key)
        hit = cached is not None
        self.metrics.record_preselect_cache(hit)
        if hit:
            return cached, True
        program = parse_program(program_source)
        repository = TaskRepository()
        repository.register_program(program)
        if expert_variants:
            from repro.cascabel.driver import register_builtin_variants

            register_builtin_variants(repository, program)
        platform = self.platform(digest)
        report = preselect(
            repository, program, platform, require_fallback=require_fallback
        )
        payload = report.to_payload()
        payload["digest"] = digest
        payload["fingerprint"] = report.fingerprint()
        self._preselect.put(key, payload)
        return payload, False

    # -- static analysis -----------------------------------------------------
    @staticmethod
    def _lint_platform(platform: Platform, filename: str):
        from repro.analysis.engine import Linter

        return Linter().lint_platform(platform, filename=filename)

    def lint(self, ref: str) -> dict:
        """Run the PDL + interference rule packs against a stored version.

        Returns the :class:`~repro.analysis.diagnostics.LintReport`
        payload plus the resolved digest; never raises on findings (the
        caller decides what severity gates).
        """
        digest = self.resolve(ref)
        report = self._lint_platform(self.platform(digest), self.name_of(digest) or ref)
        payload = report.to_payload()
        payload["digest"] = digest
        return payload

    # -- tuning profiles -----------------------------------------------------
    def put_profile(self, ref: str, payload: dict) -> dict:
        """Attach a tuning profile to a stored descriptor version.

        ``payload`` is the :class:`~repro.tune.database.TuningDatabase`
        wire format; it must contain a profile for the digest ``ref``
        resolves to (profiles are keyed by content digest, so a profile
        can never silently apply to a different descriptor revision).
        The payload is validated by round-tripping it through the
        database parser before anything is stored.
        """
        from repro.errors import TuningError
        from repro.tune.database import TuningDatabase

        digest = self.resolve(ref)
        database = TuningDatabase.from_payload(payload)
        if digest not in database.platforms():
            raise TuningError(
                f"profile payload has no samples for digest {digest[:12]!r}"
                f" (profiles inside: {[d[:12] for d in database.platforms()]})"
            )
        normalized = database.to_payload(digest)
        with self._lock:
            created = digest not in self._profiles
            self._profiles[digest] = normalized
        return {
            "digest": digest,
            "samples": database.sample_count(digest),
            "created": created,
        }

    def get_profile(self, ref: str) -> dict:
        """Tuning profile payload of a stored descriptor version."""
        digest = self.resolve(ref)
        with self._lock:
            payload = self._profiles.get(digest)
        if payload is None:
            raise UnknownPlatformError(
                f"no tuning profile stored for {ref!r} ({digest[:12]})"
            )
        return {"digest": digest, "profile": payload}

    def profiles(self) -> list[dict]:
        """Summaries of every stored profile (sorted by digest)."""
        with self._lock:
            stored = dict(self._profiles)
        out = []
        for digest in sorted(stored):
            entry = stored[digest]["platforms"][digest]
            out.append(
                {
                    "digest": digest,
                    "name": self.name_of(digest) or entry.get("platform_name", ""),
                    "samples": len(entry.get("samples", ())),
                    "transfers": len(entry.get("transfers", ())),
                }
            )
        return out

    # -- introspection ------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            blobs, tags = len(self._blobs), len(self._tags)
            profiles = len(self._profiles)
        return {
            "blobs": blobs,
            "tags": tags,
            "profiles": profiles,
            "platform_cache": {
                "size": len(self._platforms),
                "capacity": self._platforms.capacity,
                "hits": self._platforms.hits,
                "misses": self._platforms.misses,
            },
            "preselect_cache": {
                "size": len(self._preselect),
                "capacity": self._preselect.capacity,
                "hits": self._preselect.hits,
                "misses": self._preselect.misses,
            },
        }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"DescriptorStore(blobs={len(self._blobs)},"
                f" tags={len(self._tags)})"
            )
