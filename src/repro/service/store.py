"""Content-addressed store of PDL descriptors (the registry's heart).

Versioning model
----------------
A descriptor's immutable identity is the sha256 digest of its *canonical*
serialization (parse → :func:`repro.pdl.writer.write_pdl`), so two
documents that differ only in formatting or attribute order share one
version id.  Human-facing *names* are movable tags onto digests, exactly
like git refs: ``publish("gpubox", xml)`` stores the blob under its
digest and points the ``gpubox`` tag at it; re-publishing different
content moves the tag while the old version stays fetchable by digest.

Hot paths
---------
* parsed :class:`~repro.model.platform.Platform` objects are kept in a
  digest-keyed LRU (shared with :mod:`repro.pdl.catalog`'s module cache,
  so catalog loads and registry fetches never parse the same bytes
  twice), and
* pre-selection results are memoized under
  ``(platform digest, program digest, options)``.  Keys embed the
  *digest*, never the tag, so a tag move can't serve a stale result; the
  move additionally evicts memo entries of the orphaned digest.

All operations are thread-safe; the store is shared by the asyncio
server's worker threads and any in-process callers.

Cluster hooks
-------------
Three optional behaviours back :mod:`repro.service.cluster`:

* ``record_ops=True`` keeps an ordered **oplog** of every mutation
  (blob puts, tag moves/deletes, profile puts).  Because blobs are
  immutable and content-addressed, the log is tiny in kind-count: tag
  moves are the only entries whose *order* matters, and replaying the
  log in sequence reproduces the store exactly — which is all a read
  replica does (:meth:`DescriptorStore.apply_ops`).
* ``tag_directory=True`` lets tags point at full digests whose blobs
  live on *another* shard (the cluster client stores blobs by digest
  ring position and tag records by name ring position).
* :meth:`put_blob` stores a canonical document with no tag attached —
  the cluster's content-addressed write path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import UnknownPlatformError
from repro.model.platform import Platform
from repro.pdl.catalog import (
    available_platforms,
    content_digest,
    parse_cached,
    platform_path,
)
from repro.pdl.diff import diff_platforms
from repro.pdl.writer import write_pdl
from repro.query.api import PlatformQuery
from repro.cascabel.frontend import parse_program
from repro.cascabel.repository import TaskRepository
from repro.cascabel.selection import preselect
from repro.service.cache import LRUCache
from repro.service.metrics import ServiceMetrics

__all__ = ["PublishResult", "DescriptorStore"]

#: minimum length of a digest prefix accepted by :meth:`DescriptorStore.resolve`
_MIN_PREFIX = 8

_HEX_DIGITS = set("0123456789abcdef")


def _is_full_digest(ref: str) -> bool:
    return len(ref) == 64 and set(ref) <= _HEX_DIGITS


@dataclass(frozen=True)
class PublishResult:
    """Outcome of one publish/retag operation."""

    name: str
    digest: str
    created: bool  # a new blob was stored
    moved: bool  # the tag previously pointed at a different digest

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "digest": self.digest,
            "created": self.created,
            "moved": self.moved,
        }


class DescriptorStore:
    """Concurrent content-addressed PDL store with memoized toolchain ops."""

    def __init__(
        self,
        *,
        platform_cache_size: int = 64,
        preselect_cache_size: int = 256,
        metrics: Optional[ServiceMetrics] = None,
        record_ops: bool = False,
        tag_directory: bool = False,
    ):
        self.metrics = metrics or ServiceMetrics()
        self.tag_directory = tag_directory
        self._lock = threading.RLock()
        self._blobs: dict[str, str] = {}  # digest -> canonical XML
        self._tags: dict[str, str] = {}  # name -> digest
        self._platforms = LRUCache(platform_cache_size)  # digest -> master copy
        self._preselect = LRUCache(preselect_cache_size)
        #: platform digest -> tuning profile payload (TuningDatabase wire
        #: format restricted to that one platform)
        self._profiles: dict[str, dict] = {}
        self._record_ops = record_ops
        self._oplog: list[dict] = []  # ordered mutation log (replication)
        self._applied_seq = 0  # replica side: last primary seq applied

    def _append_op(self, kind: str, **fields) -> None:
        """Append one mutation to the oplog.  Caller holds ``_lock``, so
        sequence numbers are totally ordered with the mutations they
        describe."""
        if not self._record_ops:
            return
        self._oplog.append({"seq": len(self._oplog) + 1, "kind": kind, **fields})

    # -- publishing ---------------------------------------------------------
    def publish(
        self, name: str, xml_text: Union[str, bytes], *, strict_lint: bool = False
    ) -> PublishResult:
        """Store a descriptor under ``name``.

        The document is parsed (and validated — malformed XML raises
        :class:`~repro.errors.PDLError` before anything is stored),
        canonicalized, and content-addressed.  Publishing identical
        content twice is idempotent.

        With ``strict_lint`` the PDL and interference (IFR) rule packs
        run before anything is stored, and error-severity findings
        reject the publish with :class:`~repro.errors.LintError` — a
        descriptor whose shared channels are undeclared never enters
        the registry.
        """
        if isinstance(xml_text, bytes):
            xml_text = xml_text.decode("utf-8")
        platform = parse_cached(xml_text, name=name)
        if strict_lint:
            from repro.analysis.diagnostics import Severity

            report = self._lint_platform(platform, name)
            errors = report.at_least(Severity.ERROR)
            if errors:
                from repro.errors import LintError

                raise LintError(
                    f"strict lint rejected {name!r}:"
                    f" {len(errors)} error-severity finding(s)",
                    diagnostics=[d.to_payload() for d in errors],
                )
        canonical = write_pdl(platform)
        digest = content_digest(canonical)
        with self._lock:
            created = digest not in self._blobs
            if created:
                self._blobs[digest] = canonical
                self._append_op("blob", digest=digest, xml=canonical)
            previous = self._tags.get(name)
            moved = previous is not None and previous != digest
            self._tags[name] = digest
            if previous != digest:
                self._append_op("tag", name=name, digest=digest)
        # warm the parse cache with the already-parsed document
        if digest not in self._platforms:
            self._platforms.put(digest, platform.copy())
        if moved:
            self._invalidate_preselect(previous)
        return PublishResult(name=name, digest=digest, created=created, moved=moved)

    def put_blob(
        self,
        xml_text: Union[str, bytes],
        *,
        expect_digest: Optional[str] = None,
        strict_lint: bool = False,
    ) -> tuple[str, bool]:
        """Store a canonical blob with **no tag** attached.

        The cluster's content-addressed write path: the client computes
        the canonical digest locally, sends the blob to its ring-owner
        shard, and records the tag on the tag-owner shard separately.
        ``expect_digest`` guards against routing a blob to the wrong
        shard (client and server must canonicalize identically).
        Returns ``(digest, created)``.
        """
        if isinstance(xml_text, bytes):
            xml_text = xml_text.decode("utf-8")
        platform = parse_cached(xml_text)
        if strict_lint:
            from repro.analysis.diagnostics import Severity

            report = self._lint_platform(platform, expect_digest or "blob")
            errors = report.at_least(Severity.ERROR)
            if errors:
                from repro.errors import LintError

                raise LintError(
                    f"strict lint rejected blob:"
                    f" {len(errors)} error-severity finding(s)",
                    diagnostics=[d.to_payload() for d in errors],
                )
        canonical = write_pdl(platform)
        digest = content_digest(canonical)
        if expect_digest is not None and digest != expect_digest:
            from repro.errors import ServiceProtocolError

            raise ServiceProtocolError(
                f"blob canonicalizes to {digest[:12]}, not the addressed"
                f" {expect_digest[:12]} — client/server canonicalization skew?"
            )
        with self._lock:
            created = digest not in self._blobs
            if created:
                self._blobs[digest] = canonical
                self._append_op("blob", digest=digest, xml=canonical)
        if digest not in self._platforms:
            self._platforms.put(digest, platform.copy())
        return digest, created

    def retag(self, name: str, ref: str) -> PublishResult:
        """Point tag ``name`` at an existing version (tag or digest ref).

        In ``tag_directory`` mode a full 64-hex digest is accepted even
        when its blob lives on another shard — the tag record is pure
        directory state and the cluster client fetches the blob from its
        ring owner.
        """
        if self.tag_directory and _is_full_digest(ref):
            digest = ref
        else:
            digest = self.resolve(ref)
        with self._lock:
            previous = self._tags.get(name)
            moved = previous is not None and previous != digest
            self._tags[name] = digest
            if previous != digest:
                self._append_op("tag", name=name, digest=digest)
        if moved:
            self._invalidate_preselect(previous)
        return PublishResult(name=name, digest=digest, created=False, moved=moved)

    def delete_tag(self, name: str) -> str:
        """Remove a tag (the blob stays fetchable by digest); returns the
        digest the tag pointed at."""
        with self._lock:
            try:
                digest = self._tags.pop(name)
            except KeyError:
                raise UnknownPlatformError(f"unknown platform tag {name!r}") from None
            self._append_op("tag-del", name=name)
        self._invalidate_preselect(digest)
        return digest

    def seed_catalog(self) -> list[PublishResult]:
        """Publish every shipped catalog descriptor (the paper's a-priori
        "base descriptors for common platforms")."""
        results = []
        for name in available_platforms():
            with open(platform_path(name), "r", encoding="utf-8") as handle:
                results.append(self.publish(name, handle.read()))
        return results

    def _invalidate_preselect(self, digest: Optional[str]) -> None:
        if digest is None:
            return
        with self._lock:
            referenced = digest in self._tags.values()
        if not referenced:
            self._preselect.evict_where(lambda key: key[0] == digest)

    # -- resolution / fetch -------------------------------------------------
    def resolve(self, ref: str) -> str:
        """Resolve a tag name, full digest, or unique digest prefix."""
        with self._lock:
            if ref in self._tags:
                return self._tags[ref]
            if ref in self._blobs:
                return ref
            if len(ref) >= _MIN_PREFIX:
                matches = [d for d in self._blobs if d.startswith(ref)]
                if len(matches) == 1:
                    return matches[0]
                if len(matches) > 1:
                    raise UnknownPlatformError(
                        f"ambiguous digest prefix {ref!r} ({len(matches)} matches)"
                    )
            known = sorted(self._tags)
        raise UnknownPlatformError(
            f"unknown platform {ref!r}; known tags: {known}"
        )

    def xml(self, ref: str) -> str:
        """Canonical XML of a stored version."""
        digest = self.resolve(ref)
        with self._lock:
            try:
                return self._blobs[digest]
            except KeyError:
                # tag-directory entry whose blob lives on another shard
                raise UnknownPlatformError(
                    f"blob {digest[:12]} is not stored on this shard"
                    f" (tag-directory entry; fetch it from its ring owner)"
                ) from None

    def platform(self, ref: str) -> Platform:
        """Parsed :class:`Platform` for a stored version (LRU-cached).

        Returns an independent copy; mutating it cannot corrupt the
        cache or other callers.
        """
        digest = self.resolve(ref)
        master = self._platforms.get(digest)
        hit = master is not None
        self.metrics.record_platform_cache(hit)
        if not hit:
            text = self.xml(digest)
            master = parse_cached(text, digest=digest)
            self._platforms.put(digest, master.copy())
        return master.copy()

    def tags(self) -> dict[str, str]:
        with self._lock:
            return dict(sorted(self._tags.items()))

    def digests(self) -> list[str]:
        with self._lock:
            return sorted(self._blobs)

    def name_of(self, digest: str) -> Optional[str]:
        """Some tag currently pointing at ``digest`` (alphabetical first)."""
        with self._lock:
            names = sorted(n for n, d in self._tags.items() if d == digest)
        return names[0] if names else None

    # -- toolchain delegation -----------------------------------------------
    def query(self, ref: str, selector: Optional[str] = None) -> dict:
        """Evaluate a selector via :class:`repro.query.PlatformQuery`, or
        summarize the platform when no selector is given."""
        platform = self.platform(ref)
        q = PlatformQuery(platform)
        if selector is None:
            return {
                "platform": platform.name,
                "digest": self.resolve(ref),
                "architectures": sorted(platform.architectures()),
                "total_pus": platform.total_pu_count(),
                "masters": [pu.id for pu in platform.masters],
                "workers": [pu.id for pu in platform.workers()],
            }
        matched = q.select(selector)
        return {
            "platform": platform.name,
            "selector": selector,
            "matches": [
                {
                    "id": pu.id,
                    "kind": pu.kind,
                    "architecture": pu.architecture,
                    "quantity": pu.quantity,
                }
                for pu in matched
            ],
        }

    def diff(self, old_ref: str, new_ref: str) -> dict:
        """Structural diff of two stored versions."""
        old_digest, new_digest = self.resolve(old_ref), self.resolve(new_ref)
        diff = diff_platforms(self.platform(old_digest), self.platform(new_digest))
        return {
            "old": {"ref": old_ref, "digest": old_digest, "name": diff.old_name},
            "new": {"ref": new_ref, "digest": new_digest, "name": diff.new_name},
            "identical": diff.identical,
            "changes": [
                {"kind": c.kind.value, "subject": c.subject, "detail": c.detail}
                for c in diff.changes
            ],
        }

    def preselect(
        self,
        ref: str,
        program_source: str,
        *,
        expert_variants: bool = False,
        require_fallback: bool = True,
    ) -> tuple[dict, bool]:
        """Cascabel variant pre-selection against a stored descriptor.

        Returns ``(payload, cached)``.  Results are memoized under the
        resolved *digest* (never the tag), so identical requests are
        served from memory and a tag move naturally changes the key.
        Raises :class:`~repro.errors.CascabelError` subclasses on bad
        programs or unsatisfiable selections.
        """
        digest = self.resolve(ref)
        key = (
            digest,
            content_digest(program_source),
            bool(expert_variants),
            bool(require_fallback),
        )
        cached = self._preselect.get(key)
        hit = cached is not None
        self.metrics.record_preselect_cache(hit)
        if hit:
            return cached, True
        program = parse_program(program_source)
        repository = TaskRepository()
        repository.register_program(program)
        if expert_variants:
            from repro.cascabel.driver import register_builtin_variants

            register_builtin_variants(repository, program)
        platform = self.platform(digest)
        report = preselect(
            repository, program, platform, require_fallback=require_fallback
        )
        payload = report.to_payload()
        payload["digest"] = digest
        payload["fingerprint"] = report.fingerprint()
        self._preselect.put(key, payload)
        return payload, False

    # -- static analysis -----------------------------------------------------
    @staticmethod
    def _lint_platform(platform: Platform, filename: str):
        from repro.analysis.engine import Linter

        return Linter().lint_platform(platform, filename=filename)

    def lint(self, ref: str) -> dict:
        """Run the PDL + interference rule packs against a stored version.

        Returns the :class:`~repro.analysis.diagnostics.LintReport`
        payload plus the resolved digest; never raises on findings (the
        caller decides what severity gates).
        """
        digest = self.resolve(ref)
        report = self._lint_platform(self.platform(digest), self.name_of(digest) or ref)
        payload = report.to_payload()
        payload["digest"] = digest
        return payload

    # -- tuning profiles -----------------------------------------------------
    def put_profile(self, ref: str, payload: dict) -> dict:
        """Attach a tuning profile to a stored descriptor version.

        ``payload`` is the :class:`~repro.tune.database.TuningDatabase`
        wire format; it must contain a profile for the digest ``ref``
        resolves to (profiles are keyed by content digest, so a profile
        can never silently apply to a different descriptor revision).
        The payload is validated by round-tripping it through the
        database parser before anything is stored.
        """
        from repro.errors import TuningError
        from repro.tune.database import TuningDatabase

        digest = self.resolve(ref)
        database = TuningDatabase.from_payload(payload)
        if digest not in database.platforms():
            raise TuningError(
                f"profile payload has no samples for digest {digest[:12]!r}"
                f" (profiles inside: {[d[:12] for d in database.platforms()]})"
            )
        normalized = database.to_payload(digest)
        with self._lock:
            created = digest not in self._profiles
            self._profiles[digest] = normalized
            self._append_op("profile", digest=digest, profile=normalized)
        return {
            "digest": digest,
            "samples": database.sample_count(digest),
            "created": created,
        }

    def get_profile(self, ref: str) -> dict:
        """Tuning profile payload of a stored descriptor version."""
        digest = self.resolve(ref)
        with self._lock:
            payload = self._profiles.get(digest)
        if payload is None:
            raise UnknownPlatformError(
                f"no tuning profile stored for {ref!r} ({digest[:12]})"
            )
        return {"digest": digest, "profile": payload}

    def profiles(self) -> list[dict]:
        """Summaries of every stored profile (sorted by digest)."""
        with self._lock:
            stored = dict(self._profiles)
        out = []
        for digest in sorted(stored):
            entry = stored[digest]["platforms"][digest]
            out.append(
                {
                    "digest": digest,
                    "name": self.name_of(digest) or entry.get("platform_name", ""),
                    "samples": len(entry.get("samples", ())),
                    "transfers": len(entry.get("transfers", ())),
                }
            )
        return out

    # -- replication --------------------------------------------------------
    def oplog_head(self) -> int:
        """Sequence number of the newest recorded op (0 when empty)."""
        with self._lock:
            return len(self._oplog)

    def ops_since(self, seq: int, *, limit: int = 1000) -> tuple[list[dict], int]:
        """Ops with sequence number > ``seq`` (at most ``limit``), plus
        the current head.  A replica polls this until it has drained to
        the head; a fresh replica bootstraps from ``seq=0``."""
        with self._lock:
            head = len(self._oplog)
            start = max(0, int(seq))
            return [dict(op) for op in self._oplog[start : start + limit]], head

    def apply_ops(self, ops: list) -> int:
        """Replica side: apply primary ops **in order**; returns the last
        applied sequence number.

        Blob puts are verified against their digest (a corrupted or
        reordered blob op can never poison the content-addressed space);
        tag ops land in directory mode so a tag may momentarily precede
        its blob during bootstrap.  Application is idempotent — replaying
        a window after a dropped poll is harmless.
        """
        for op in ops:
            kind = op.get("kind")
            seq = int(op.get("seq", 0))
            if kind == "blob":
                xml, digest = str(op["xml"]), str(op["digest"])
                if content_digest(xml) != digest:
                    from repro.errors import ServiceProtocolError

                    raise ServiceProtocolError(
                        f"replication blob op {seq} digest mismatch"
                        f" (claimed {digest[:12]})"
                    )
                with self._lock:
                    if digest not in self._blobs:
                        self._blobs[digest] = xml
            elif kind == "tag":
                name, digest = str(op["name"]), str(op["digest"])
                with self._lock:
                    previous = self._tags.get(name)
                    self._tags[name] = digest
                if previous is not None and previous != digest:
                    self._invalidate_preselect(previous)
            elif kind == "tag-del":
                with self._lock:
                    digest = self._tags.pop(str(op["name"]), None)
                if digest is not None:
                    self._invalidate_preselect(digest)
            elif kind == "profile":
                with self._lock:
                    self._profiles[str(op["digest"])] = dict(op["profile"])
            else:
                from repro.errors import ServiceProtocolError

                raise ServiceProtocolError(
                    f"unknown replication op kind {kind!r} (seq {seq})"
                )
            with self._lock:
                self._applied_seq = max(self._applied_seq, seq)
        return self._applied_seq

    @property
    def applied_seq(self) -> int:
        """Last primary sequence number applied (replica side)."""
        with self._lock:
            return self._applied_seq

    # -- introspection ------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            blobs, tags = len(self._blobs), len(self._tags)
            profiles = len(self._profiles)
            oplog_head = len(self._oplog)
            applied_seq = self._applied_seq
        return {
            "blobs": blobs,
            "tags": tags,
            "profiles": profiles,
            "oplog_head": oplog_head,
            "applied_seq": applied_seq,
            "platform_cache": {
                "size": len(self._platforms),
                "capacity": self._platforms.capacity,
                "hits": self._platforms.hits,
                "misses": self._platforms.misses,
            },
            "preselect_cache": {
                "size": len(self._preselect),
                "capacity": self._preselect.capacity,
                "hits": self._preselect.hits,
                "misses": self._preselect.misses,
            },
        }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"DescriptorStore(blobs={len(self._blobs)},"
                f" tags={len(self._tags)})"
            )
