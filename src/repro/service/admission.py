"""Reusable admission control: token buckets, capacity gates, backoff.

Two front ends shed load the same way in this toolchain: the registry
server answers ``429`` with a ``Retry-After`` computed from the
:class:`~repro.runtime.faults.FaultPolicy` backoff curve, and the
serving subsystem (:mod:`repro.serve`) applies per-tenant token-bucket
rate limits plus a bounded ready queue before tasks reach the
scheduler.  This module is the shared home of that machinery, so both
layers make identical decisions from identical knobs:

* :class:`TokenBucket` — a continuous-refill rate limiter driven by an
  externally supplied clock (wall time for the server, the simulated
  clock for the serving loop), so behaviour is deterministic under
  simulation.
* :class:`CapacityGate` — the bounded-queue 429 policy extracted from
  :class:`~repro.service.server.RegistryServer`: beyond ``max_queue``
  queued + in-flight requests, reject with an exponential
  ``Retry-After`` that grows with *consecutive* rejections.
* :class:`TenantRateLimiter` — a named family of token buckets with a
  default rate, tracking per-tenant consecutive rejections so the
  retry hint follows the same backoff curve.

Every decision is an :class:`AdmissionDecision` — truthy when admitted,
otherwise carrying the machine-readable reason and the retry hint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.runtime.faults import FaultPolicy

__all__ = [
    "AdmissionDecision",
    "TokenBucket",
    "CapacityGate",
    "TenantRateLimiter",
    "default_overload_policy",
]


def default_overload_policy() -> FaultPolicy:
    """The overload backoff curve shared by server and serving loop:
    50 ms doubling per consecutive rejection, capped at 2 s."""
    return FaultPolicy(
        max_retries=0,
        backoff_base_s=0.05,
        backoff_factor=2.0,
        backoff_cap_s=2.0,
        watchdog_s=None,
    )


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check (truthy iff admitted)."""

    admitted: bool
    #: "" when admitted, else "queue-full" | "rate-limited"
    reason: str = ""
    #: suggested client wait before retrying (seconds)
    retry_after_s: float = 0.0

    def __bool__(self) -> bool:
        return self.admitted


#: the shared "yes" — admission carries no further detail
ADMIT = AdmissionDecision(True)


class TokenBucket:
    """Continuous-refill token bucket on an externally supplied clock.

    The bucket holds up to ``burst`` tokens and refills at ``rate_per_s``
    tokens per second of the *caller's* timeline — callers pass ``now``
    into every operation, so the same bucket works against wall time and
    against a simulated clock (where determinism matters).  Time never
    moves backwards: a stale ``now`` is clamped to the newest one seen.
    """

    def __init__(self, rate_per_s: float, burst: float):
        if rate_per_s <= 0.0:
            raise ValueError(f"rate_per_s must be positive, got {rate_per_s!r}")
        if burst <= 0.0:
            raise ValueError(f"burst must be positive, got {burst!r}")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._level = float(burst)  # start full: an initial burst is admitted
        self._stamp = 0.0

    def _refill(self, now: float) -> None:
        if now > self._stamp:
            self._level = min(
                self.burst, self._level + (now - self._stamp) * self.rate_per_s
            )
            self._stamp = now

    def available(self, now: float) -> float:
        """Tokens available at time ``now``."""
        self._refill(now)
        return self._level

    def try_take(self, now: float, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; returns whether the take happened."""
        self._refill(now)
        if self._level + 1e-12 >= tokens:
            self._level -= tokens
            return True
        return False

    def retry_after(self, now: float, tokens: float = 1.0) -> float:
        """Seconds from ``now`` until ``tokens`` will be available."""
        self._refill(now)
        deficit = tokens - self._level
        if deficit <= 0.0:
            return 0.0
        return deficit / self.rate_per_s

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate_per_s:g}/s, burst={self.burst:g},"
            f" level={self._level:.3f})"
        )


class CapacityGate:
    """Bounded queued+in-flight capacity with backoff ``Retry-After``.

    This is the admission control of the registry server, extracted:
    while ``depth`` (queued + in-flight requests) is below ``max_queue``
    the request is admitted; beyond it the caller is told to retry after
    ``policy.backoff(consecutive + 1)`` seconds, so consecutive
    rejections of one client back off exponentially — mirroring the
    runtime's retry idiom.
    """

    def __init__(
        self, max_queue: int, *, policy: Optional[FaultPolicy] = None
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue!r}")
        self.max_queue = int(max_queue)
        self.policy = policy if policy is not None else default_overload_policy()

    def check(self, depth: int, *, consecutive: int = 0) -> AdmissionDecision:
        """Admit while ``depth < max_queue``; reject with backoff beyond.

        ``consecutive`` counts the caller's rejections since its last
        admitted request (the registry server tracks it per connection,
        the serving loop per tenant).
        """
        if depth < self.max_queue:
            return ADMIT
        return AdmissionDecision(
            False,
            reason="queue-full",
            retry_after_s=self.policy.backoff(consecutive + 1),
        )

    def __repr__(self) -> str:
        return f"CapacityGate(max_queue={self.max_queue})"


class TenantRateLimiter:
    """Per-tenant token buckets with backoff-shaped retry hints.

    Tenants not explicitly configured get the default rate/burst; a
    ``default_rate_per_s`` of ``None`` disables rate limiting for
    unconfigured tenants (they are always admitted).  Consecutive
    rejections per tenant stretch the retry hint along the
    :class:`~repro.runtime.faults.FaultPolicy` backoff curve, so a
    tenant hammering past its budget is told to back off harder — the
    hint never falls below the bucket's own refill horizon.
    """

    def __init__(
        self,
        *,
        default_rate_per_s: Optional[float] = None,
        default_burst: float = 8.0,
        policy: Optional[FaultPolicy] = None,
    ):
        self.default_rate_per_s = default_rate_per_s
        self.default_burst = float(default_burst)
        self.policy = policy if policy is not None else default_overload_policy()
        self._buckets: dict[str, Optional[TokenBucket]] = {}
        self._consecutive: dict[str, int] = {}

    def configure(self, tenant: str, rate_per_s: float, burst: float) -> None:
        """Set one tenant's budget (replacing any previous bucket)."""
        self._buckets[tenant] = TokenBucket(rate_per_s, burst)

    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        if tenant not in self._buckets:
            if self.default_rate_per_s is None:
                self._buckets[tenant] = None
            else:
                self._buckets[tenant] = TokenBucket(
                    self.default_rate_per_s, self.default_burst
                )
        return self._buckets[tenant]

    def admit(
        self, tenant: str, now: float, tokens: float = 1.0
    ) -> AdmissionDecision:
        bucket = self._bucket(tenant)
        if bucket is None or bucket.try_take(now, tokens):
            self._consecutive[tenant] = 0
            return ADMIT
        consecutive = self._consecutive.get(tenant, 0) + 1
        self._consecutive[tenant] = consecutive
        retry = max(
            bucket.retry_after(now, tokens), self.policy.backoff(consecutive)
        )
        return AdmissionDecision(
            False, reason="rate-limited", retry_after_s=retry
        )

    def tenants(self) -> list[str]:
        """Tenants seen so far (configured or defaulted), sorted."""
        return sorted(self._buckets)

    def __repr__(self) -> str:
        return (
            f"TenantRateLimiter(tenants={len(self._buckets)},"
            f" default_rate={self.default_rate_per_s})"
        )
