"""Asynchronous registry client: pooling, coalescing, immutable caching.

This is the registry's primary client since the sharded redesign; the
blocking :class:`~repro.service.client.RegistryClient` is a thin sync
facade over it.  Three properties make it fast under fan-out load:

* **Connection pooling** — keep-alive HTTP/1.1 connections per endpoint
  (bounded by ``pool_size``), so a burst of requests costs one TCP
  handshake, not one per request.
* **Per-digest request coalescing** — concurrent GETs of the same path
  share one in-flight upstream request (single-flight).  A thundering
  herd of N fetches of one descriptor puts exactly one request on the
  wire.
* **A digest-keyed cache that never revalidates** — content digests are
  immutable by construction, so a cached blob can never be stale and is
  served without any network I/O, forever (LRU-bounded).  Only *tags*
  (the movable refs) carry a TTL (:class:`~repro.service.cache.TTLCache`,
  default 0 = always revalidate).

Endpoints are described by :class:`RegistryEndpoint`, the one
client-construction currency shared by the sync facade, the async
client, the cluster client and ``Session(registry=...)``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextvars
import threading
from dataclasses import dataclass, field, replace
from typing import Optional, Union
from urllib.parse import urlencode, urlsplit

from repro.errors import ServiceError
from repro.model.platform import Platform
from repro.obs import spans as _obs
from repro.pdl.catalog import content_digest, parse_cached
from repro.pdl.writer import write_pdl
from repro.runtime.faults import FaultPolicy
from repro.service import protocol
from repro.service.cache import LRUCache, TTLCache

__all__ = ["RegistryEndpoint", "AsyncRegistryClient", "default_retry_policy"]

_HEX_DIGITS = set("0123456789abcdef")


def _is_full_digest(ref: str) -> bool:
    return len(ref) == 64 and set(ref) <= _HEX_DIGITS


def default_retry_policy() -> FaultPolicy:
    """The 429 backoff curve both clients retry under by default."""
    return FaultPolicy(
        max_retries=3,
        backoff_base_s=0.05,
        backoff_factor=2.0,
        backoff_cap_s=1.0,
        watchdog_s=None,
    )


@dataclass(frozen=True)
class RegistryEndpoint:
    """Where and how to talk to one registry node.

    The single entry-point currency for every client flavor: sync,
    async, cluster, and ``Session(registry=...)`` all accept one of
    these (or a URL string, which :meth:`parse` normalizes).  Replaces
    the keyword sprawl of the old ``RegistryClient(base_url, timeout=…,
    retry_policy=…)`` signature.

    ``retry_policy=None`` disables 429 retry entirely (each overload
    response raises immediately); leaving it unset installs
    :func:`default_retry_policy`.
    """

    host: str = "127.0.0.1"
    port: int = 8787
    timeout: float = 30.0
    retry_policy: Optional[FaultPolicy] = field(default_factory=default_retry_policy)
    #: keep-alive connections kept per endpoint
    pool_size: int = 8
    #: digest-keyed record cache entries (0 disables client caching)
    cache_size: int = 256
    #: seconds a tag→digest resolution may be served without
    #: revalidation (0 = tags always revalidate; digests never do)
    tag_ttl_s: float = 0.0

    @classmethod
    def parse(cls, url: Union[str, "RegistryEndpoint"], **overrides) -> "RegistryEndpoint":
        """Normalize a base URL (or ``host:port``) into an endpoint."""
        if isinstance(url, RegistryEndpoint):
            return replace(url, **overrides) if overrides else url
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ServiceError(f"unsupported registry scheme {split.scheme!r}")
        if not split.hostname:
            raise ServiceError(f"invalid registry URL {url!r}")
        return cls(host=split.hostname, port=split.port or 80, **overrides)

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def with_(self, **overrides) -> "RegistryEndpoint":
        return replace(self, **overrides)


# -- shared client event loop ------------------------------------------------
class _LoopRunner:
    """One daemon background event loop shared by all sync facades.

    ``submit`` propagates the *caller's* contextvars into the scheduled
    task, so spans opened inside the coroutine parent correctly under
    the calling thread's active span — the trace shows one tree even
    though the I/O happens on the loop thread.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def loop(self) -> asyncio.AbstractEventLoop:
        with self._lock:
            if self._loop is None or not self._loop.is_running():
                loop = asyncio.new_event_loop()
                thread = threading.Thread(
                    target=loop.run_forever,
                    name="registry-client-loop",
                    daemon=True,
                )
                thread.start()
                self._loop, self._thread = loop, thread
            return self._loop

    def submit(self, coro, timeout: Optional[float] = None):
        loop = self.loop()
        ctx = contextvars.copy_context()
        done: concurrent.futures.Future = concurrent.futures.Future()

        def _start() -> None:
            try:
                task = ctx.run(loop.create_task, coro)
            except BaseException as exc:  # pragma: no cover - defensive
                done.set_exception(exc)
                return

            def _transfer(finished: asyncio.Task) -> None:
                if finished.cancelled():
                    done.cancel()
                elif finished.exception() is not None:
                    done.set_exception(finished.exception())
                else:
                    done.set_result(finished.result())

            task.add_done_callback(_transfer)

        loop.call_soon_threadsafe(_start)
        return done.result(timeout)


#: module-wide runner; sync facades share one loop thread
LOOP_RUNNER = _LoopRunner()


class _ConnectionPool:
    """Bounded pool of keep-alive connections to one endpoint.

    Owned by (and only touched from) the client's event loop, so a
    plain list is race-free; the semaphore bounds total concurrent
    connections, queueing excess requests client-side instead of
    stampeding the server.
    """

    def __init__(self, host: str, port: int, limit: int, timeout: float):
        self.host, self.port = host, port
        self.timeout = timeout
        self.limit = max(1, limit)
        self._idle: list = []
        self._sem = asyncio.Semaphore(self.limit)
        self.opened = 0  # connections dialed (pool efficiency stat)

    async def acquire(self, *, fresh: bool = False):
        await self._sem.acquire()
        try:
            if not fresh:
                while self._idle:
                    reader, writer = self._idle.pop()
                    if not writer.is_closing():
                        return (reader, writer), True
                    writer.close()
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout
            )
            self.opened += 1
            return (reader, writer), False
        except BaseException:
            self._sem.release()
            raise

    def release(self, conn, *, reuse: bool) -> None:
        reader, writer = conn
        if reuse and not writer.is_closing() and len(self._idle) < self.limit:
            self._idle.append(conn)
        else:
            writer.close()
        self._sem.release()

    def close(self) -> None:
        while self._idle:
            _, writer = self._idle.pop()
            writer.close()


class AsyncRegistryClient:
    """Asyncio registry client bound to one :class:`RegistryEndpoint`.

    All coroutines must run on one event loop (the loop the first
    request runs on).  The sync facade funnels every call through the
    shared :data:`LOOP_RUNNER` loop, which satisfies this by
    construction.
    """

    def __init__(self, endpoint: Union[str, RegistryEndpoint] = "127.0.0.1:8787"):
        self.endpoint = RegistryEndpoint.parse(endpoint)
        self._pool = _ConnectionPool(
            self.endpoint.host,
            self.endpoint.port,
            self.endpoint.pool_size,
            self.endpoint.timeout,
        )
        self._inflight: dict = {}  # request key -> asyncio.Future
        #: digest -> fetch record; immutable, never revalidated
        self._records = (
            LRUCache(self.endpoint.cache_size) if self.endpoint.cache_size else None
        )
        #: tag/prefix -> digest within the TTL window
        self._tag_cache = TTLCache(1024, self.endpoint.tag_ttl_s)
        self.negotiated_protocol: Optional[int] = None
        self.stats = {
            "requests": 0,  # logical requests issued by callers
            "network_requests": 0,  # actual upstream HTTP round trips
            "coalesced": 0,  # callers served by piggybacking a flight
            "record_cache_hits": 0,  # digest fetches served with no I/O
        }

    # -- low-level HTTP ------------------------------------------------------
    async def _roundtrip(
        self, method: str, path: str, body: Optional[bytes], trace_id: Optional[str]
    ):
        headers = [
            ("Host", f"{self.endpoint.host}:{self.endpoint.port}"),
            ("Accept", "application/json"),
            (protocol.PROTOCOL_HEADER, str(protocol.PROTOCOL_VERSION)),
            ("Connection", "keep-alive"),
        ]
        if trace_id is not None:
            headers.append(("X-Repro-Trace-Id", trace_id))
        if body is not None:
            content_type = (
                "application/json" if body[:1] in (b"{", b"[") else "application/xml"
            )
            headers.append(("Content-Type", content_type))
            headers.append(("Content-Length", str(len(body))))
        head = f"{method} {path} HTTP/1.1\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers
        )
        payload = head.encode("latin-1") + b"\r\n" + (body or b"")

        last_error: Optional[Exception] = None
        for attempt in ("pooled", "fresh"):
            try:
                conn, pooled = await self._pool.acquire(fresh=attempt == "fresh")
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                raise ServiceError(
                    f"registry at {self.endpoint.host}:{self.endpoint.port}"
                    f" unreachable: {exc}"
                ) from exc
            reader, writer = conn
            try:
                writer.write(payload)
                await asyncio.wait_for(writer.drain(), self.endpoint.timeout)
                status, response_headers, raw = await asyncio.wait_for(
                    self._read_response(reader), self.endpoint.timeout
                )
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ) as exc:
                self._pool.release(conn, reuse=False)
                last_error = exc
                if pooled:
                    # the server closed an idle keep-alive connection
                    # under us; retry exactly once on a fresh dial
                    continue
                raise ServiceError(
                    f"registry at {self.endpoint.host}:{self.endpoint.port}"
                    f" unreachable: {exc}"
                ) from exc
            keep = response_headers.get("connection", "").lower() != "close"
            self._pool.release(conn, reuse=keep)
            self.stats["network_requests"] += 1
            return status, response_headers, raw
        raise ServiceError(
            f"registry at {self.endpoint.host}:{self.endpoint.port}"
            f" unreachable: {last_error}"
        ) from last_error

    @staticmethod
    async def _read_response(reader):
        line = await reader.readline()
        if not line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = line.decode("latin-1").split()
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ServiceError(f"malformed response status line: {line[:80]!r}")
        status = int(parts[1])
        headers: dict = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length")
        if length is not None:
            body = await reader.readexactly(int(length))
        else:
            body = await reader.read()
            headers["connection"] = "close"
        return status, headers, body

    async def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        trace_id: Optional[str],
    ) -> dict:
        """One negotiated round trip: 429-aware retry, protocol check,
        error rehydration."""
        attempt = 0
        while True:
            status, headers, raw = await self._roundtrip(method, path, body, trace_id)
            self.negotiated_protocol = protocol.check_protocol(
                headers.get(protocol.PROTOCOL_HEADER.lower()), side="client"
            )
            try:
                payload = protocol.loads(raw) if raw else {}
            except ServiceError:
                raise ServiceError(
                    f"registry returned non-JSON body for {method} {path}"
                    f" (HTTP {status})"
                ) from None
            if status != 429:
                protocol.raise_for_error(status, payload)
                return payload
            retry_after = None
            header = headers.get("retry-after")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
            policy = self.endpoint.retry_policy
            if policy is None or attempt >= policy.max_retries:
                protocol.raise_for_error(status, payload, retry_after=retry_after)
            attempt += 1
            delay = policy.backoff(attempt)
            if retry_after is not None:
                delay = max(delay, min(retry_after, policy.backoff_cap_s))
            await asyncio.sleep(delay)

    async def request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[bytes] = None,
        params: Optional[dict] = None,
        coalesce: Optional[bool] = None,
    ) -> dict:
        """One JSON request with coalescing, tracing and retry.

        GETs coalesce by default: concurrent callers of an identical
        (method, path, params) share one in-flight upstream request and
        one response object (treat payloads as read-only).  Traced
        callers get a ``registry.client.request`` span whose id travels
        in ``X-Repro-Trace-Id`` and is echoed by the server.
        """
        self.stats["requests"] += 1
        if params:
            path = f"{path}?{urlencode(params)}"
        if coalesce is None:
            coalesce = method == "GET"
        if not coalesce:
            return await self._traced_request(method, path, body)
        key = f"{method} {path}"
        existing = self._inflight.get(key)
        if existing is not None:
            self.stats["coalesced"] += 1
            return await asyncio.shield(existing)
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            result = await self._traced_request(method, path, body)
            future.set_result(result)
            return result
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # mark retrieved for lone flights
            raise
        finally:
            self._inflight.pop(key, None)

    async def _traced_request(
        self, method: str, path: str, body: Optional[bytes]
    ) -> dict:
        tracer = _obs.get_tracer()
        if tracer is None:
            return await self._request_once(method, path, body, None)
        with tracer.span(
            "registry.client.request", method=method, path=path
        ) as span_:
            return await self._request_once(method, path, body, span_.trace_id)

    # -- registry operations -------------------------------------------------
    async def health(self) -> dict:
        return await self.request("GET", protocol.route_path("health"))

    async def metrics(self) -> dict:
        return await self.request("GET", protocol.route_path("metrics"))

    async def info(self) -> dict:
        return await self.request("GET", protocol.route_path("index"))

    async def platforms(self) -> list:
        payload = await self.request("GET", protocol.route_path("list"))
        return payload["platforms"]

    async def publish(
        self,
        name: str,
        descriptor: Union[str, bytes, Platform],
        *,
        strict_lint: bool = False,
    ) -> dict:
        if isinstance(descriptor, Platform):
            descriptor = write_pdl(descriptor)
        if isinstance(descriptor, str):
            descriptor = descriptor.encode("utf-8")
        payload = await self.request(
            "PUT",
            protocol.route_path("publish", name=name),
            body=descriptor,
            params={"strict": "1"} if strict_lint else None,
        )
        self._tag_cache.invalidate(name)
        return payload

    async def put_blob(
        self, xml_text: Union[str, bytes], *, strict_lint: bool = False
    ) -> dict:
        """Content-addressed tagless write (the cluster's blob path).

        The digest is computed locally from the canonical serialization
        so the caller can route the blob before any server round trip.
        """
        if isinstance(xml_text, bytes):
            xml_text = xml_text.decode("utf-8")
        canonical = write_pdl(parse_cached(xml_text))
        digest = content_digest(canonical)
        return await self.request(
            "PUT",
            protocol.route_path("blob_put", digest=digest),
            body=canonical.encode("utf-8"),
            params={"strict": "1"} if strict_lint else None,
        )

    async def fetch(self, ref: str) -> dict:
        """``{"ref", "digest", "name", "xml"}`` of a stored version.

        Full-digest refs are served from the client cache with **no
        network traffic** once seen — immutability makes revalidation
        meaningless.  Tag refs revalidate unless within ``tag_ttl_s``.
        """
        if self._records is not None and _is_full_digest(ref):
            record = self._records.get(ref)
            if record is not None:
                self.stats["record_cache_hits"] += 1
                return record
        cached_digest = self._tag_cache.get(ref)
        if cached_digest is not None and self._records is not None:
            record = self._records.get(cached_digest)
            if record is not None:
                self.stats["record_cache_hits"] += 1
                return {**record, "ref": ref}
        record = await self.request("GET", protocol.route_path("fetch", ref=ref))
        if self._records is not None:
            # normalize the cached ref to the digest: the cache is
            # digest-keyed, so a later hit must not echo a stale tag
            self._records.put(record["digest"], {**record, "ref": record["digest"]})
        if not _is_full_digest(ref):
            self._tag_cache.put(ref, record["digest"])
        return record

    async def platform(self, ref: str) -> Platform:
        """Fetch and parse a descriptor (digest-keyed parse cache applies)."""
        record = await self.fetch(ref)
        return parse_cached(
            record["xml"], digest=record["digest"], name=record["name"]
        )

    async def resolve(self, ref: str) -> str:
        """Tag/prefix → digest (one tiny round trip, TTL-cached)."""
        if _is_full_digest(ref):
            return ref
        cached = self._tag_cache.get(ref)
        if cached is not None:
            return cached
        payload = await self.request(
            "GET", protocol.route_path("resolve", name=ref)
        )
        self._tag_cache.put(ref, payload["digest"])
        return payload["digest"]

    async def delete_tag(self, name: str) -> dict:
        payload = await self.request(
            "DELETE", protocol.route_path("delete_tag", name=name)
        )
        self._tag_cache.invalidate(name)
        return payload

    async def retag(self, name: str, ref: str) -> dict:
        payload = await self.request(
            "POST",
            protocol.route_path("retag"),
            body=protocol.dumps({"name": name, "ref": ref}),
        )
        self._tag_cache.invalidate(name)
        return payload

    async def query(self, ref: str, selector: Optional[str] = None) -> dict:
        return await self.request(
            "GET",
            protocol.route_path("query", ref=ref),
            params={"selector": selector} if selector is not None else None,
        )

    async def lint(self, ref: str) -> dict:
        return await self.request(
            "POST", protocol.route_path("lint"), body=protocol.dumps({"ref": ref})
        )

    async def diff(self, old_ref: str, new_ref: str) -> dict:
        return await self.request(
            "POST",
            protocol.route_path("diff"),
            body=protocol.dumps({"old": old_ref, "new": new_ref}),
        )

    async def preselect(
        self,
        platform_ref: str,
        source: str,
        *,
        expert_variants: bool = False,
        require_fallback: bool = True,
    ) -> dict:
        results = await self.preselect_batch(
            platform_ref,
            [
                {
                    "source": source,
                    "expert_variants": expert_variants,
                    "require_fallback": require_fallback,
                }
            ],
        )
        return results[0]

    async def preselect_batch(self, platform_ref: str, programs: list) -> list:
        payload = await self.request(
            "POST",
            protocol.route_path("preselect"),
            body=protocol.dumps({"platform": platform_ref, "programs": programs}),
        )
        return payload["results"]

    async def oplog(self, since: int = 0, *, limit: int = 1000) -> dict:
        """Replication pull: ops after ``since`` plus the primary head."""
        return await self.request(
            "GET",
            protocol.route_path("oplog"),
            params={"since": str(since), "limit": str(limit)},
        )

    # -- tuning profiles -----------------------------------------------------
    async def profiles(self) -> list:
        payload = await self.request("GET", protocol.route_path("profiles_list"))
        return payload["profiles"]

    async def publish_profile(self, ref: str, profile) -> dict:
        if hasattr(profile, "to_payload"):
            profile = profile.to_payload()
        return await self.request(
            "PUT",
            protocol.route_path("profile_put", ref=ref),
            body=protocol.dumps(profile),
        )

    async def fetch_profile(self, ref: str) -> dict:
        return await self.request(
            "GET", protocol.route_path("profile_get", ref=ref)
        )

    # -- lifecycle -----------------------------------------------------------
    async def aclose(self) -> None:
        self._pool.close()

    def cache_stats(self) -> dict:
        return {
            **self.stats,
            "record_cache_size": len(self._records) if self._records else 0,
            "tag_cache": {
                "hits": self._tag_cache.hits,
                "misses": self._tag_cache.misses,
            },
            "connections_opened": self._pool.opened,
        }

    def __repr__(self) -> str:
        return f"AsyncRegistryClient({self.endpoint.base_url})"
