"""Sharded, replicated registry: placement map, launcher, cluster client.

Sharding model
--------------
Content addressing makes sharding safe and coordination-free:

* **Blobs** place by *digest* on a consistent-hash ring
  (:class:`~repro.service.ring.HashRing`) — a blob's identity is its
  content, so its home shard is a pure function of its bytes.
* **Tags** — the only movable refs — place by *name* on the same ring,
  making each tag's owning shard the single serialization point for its
  moves.  A tag record is directory state (``name → digest``); the blob
  it points at usually lives on a different shard, which the owning
  store accepts in ``tag_directory`` mode.

Every client and server derives the identical placement from the shared
:class:`ClusterMap`, so there is no coordinator process, no handshake
and no metadata service: the map *is* the cluster.

Consistency contract
--------------------
Writes go to shard primaries; each primary streams an ordered oplog to
its read replicas (``GET /oplog``).  Immutable digest reads are strongly
consistent everywhere (a replica either has the exact bytes or a
miss — never different bytes).  Tag reads are eventually consistent
with staleness bounded by the replication poll interval: a replica may
serve a tag's *previous* digest for one window, but never a wrong
``(digest, xml)`` pair, and a missing entry falls back to the primary.

Topologies
----------
:class:`RegistryCluster` launches an N-shard × R-replica topology
in-process (each node a full :class:`~repro.service.server.ServerThread`
with its own store and real HTTP port — the same wire path a
multi-process deployment uses; nodes can equally be started as separate
OS processes via ``repro-registry serve``/``cluster serve`` given the
same map file).
"""

from __future__ import annotations

import asyncio
import itertools
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ServiceError, UnknownPlatformError
from repro.model.platform import Platform
from repro.obs import spans as _obs
from repro.pdl.catalog import (
    available_platforms,
    content_digest,
    parse_cached,
    platform_path,
)
from repro.pdl.diff import diff_platforms
from repro.pdl.writer import write_pdl
from repro.service.async_client import (
    LOOP_RUNNER,
    AsyncRegistryClient,
    RegistryEndpoint,
)
from repro.service.metrics import ServiceMetrics
from repro.service.ring import HashRing
from repro.service.server import ServerThread, ServiceConfig
from repro.service.store import DescriptorStore

__all__ = [
    "ShardSpec",
    "ClusterMap",
    "RegistryCluster",
    "AsyncClusterClient",
    "ClusterClient",
]

_HEX_DIGITS = set("0123456789abcdef")


def _is_full_digest(ref: str) -> bool:
    return len(ref) == 64 and set(ref) <= _HEX_DIGITS


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a write primary plus zero or more read replicas."""

    shard_id: str
    primary: str  # base URL
    replicas: Tuple[str, ...] = ()

    @property
    def nodes(self) -> Tuple[str, ...]:
        """All read-serving node URLs (primary first)."""
        return (self.primary, *self.replicas)

    def to_payload(self) -> dict:
        return {
            "id": self.shard_id,
            "primary": self.primary,
            "replicas": list(self.replicas),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardSpec":
        return cls(
            shard_id=str(payload["id"]),
            primary=str(payload["primary"]),
            replicas=tuple(str(r) for r in payload.get("replicas", ())),
        )


@dataclass(frozen=True)
class ClusterMap:
    """The cluster's entire topology: shard specs + ring parameters.

    Deterministic placement: two processes holding equal maps compute
    identical blob and tag owners with no communication.
    """

    shards: Tuple[ShardSpec, ...]
    vnodes: int = 64

    def __post_init__(self):
        if not self.shards:
            raise ValueError("a cluster map needs at least one shard")
        object.__setattr__(
            self,
            "_ring",
            HashRing([s.shard_id for s in self.shards], vnodes=self.vnodes),
        )
        object.__setattr__(
            self, "_by_id", {s.shard_id: s for s in self.shards}
        )

    # -- placement -----------------------------------------------------------
    def shard_for_blob(self, digest: str) -> ShardSpec:
        """Owning shard of a content digest."""
        return self._by_id[self._ring.node_for(f"blob:{digest}")]

    def shard_for_tag(self, name: str) -> ShardSpec:
        """Owning shard of a tag name (its move serialization point)."""
        return self._by_id[self._ring.node_for(f"tag:{name}")]

    def shard(self, shard_id: str) -> ShardSpec:
        return self._by_id[shard_id]

    # -- (de)serialization ---------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "vnodes": self.vnodes,
            "shards": [s.to_payload() for s in self.shards],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ClusterMap":
        return cls(
            shards=tuple(
                ShardSpec.from_payload(p) for p in payload.get("shards", ())
            ),
            vnodes=int(payload.get("vnodes", 64)),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ClusterMap":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_payload(json.load(handle))

    def __len__(self) -> int:
        return len(self.shards)


class RegistryCluster:
    """Launch an N-shard × R-replica registry topology in one process.

    Every node is a complete :class:`ServerThread` — own
    :class:`DescriptorStore`, own worker pool, own HTTP port — so the
    wire path is identical to a multi-process deployment.  Usable as a
    context manager yielding the :class:`ClusterMap`::

        with RegistryCluster(shards=4, replicas=2) as cluster_map:
            client = ClusterClient(cluster_map)
    """

    def __init__(
        self,
        shards: int = 4,
        replicas: int = 0,
        *,
        host: str = "127.0.0.1",
        vnodes: int = 64,
        replication_interval_s: float = 0.05,
        store_kwargs: Optional[dict] = None,
        config_kwargs: Optional[dict] = None,
        seed_catalog: bool = False,
    ):
        if shards < 1:
            raise ValueError("a cluster needs at least one shard")
        if replicas < 0:
            raise ValueError("replicas must be >= 0")
        self.shard_count = shards
        self.replica_count = replicas
        self.host = host
        self.vnodes = vnodes
        self.replication_interval_s = replication_interval_s
        self._store_kwargs = dict(store_kwargs or {})
        self._config_kwargs = dict(config_kwargs or {})
        self._seed = seed_catalog
        self._threads: List[ServerThread] = []
        self.map: Optional[ClusterMap] = None

    def start(self) -> ClusterMap:
        specs = []
        try:
            for index in range(self.shard_count):
                store = DescriptorStore(
                    record_ops=True, tag_directory=True, **self._store_kwargs
                )
                primary = ServerThread(
                    store,
                    config=ServiceConfig(host=self.host, **self._config_kwargs),
                    seed_catalog=False,
                )
                primary_url = primary.start()
                self._threads.append(primary)
                replica_urls = []
                for _ in range(self.replica_count):
                    replica = ServerThread(
                        config=ServiceConfig(
                            host=self.host,
                            replica_of=primary_url,
                            replication_interval_s=self.replication_interval_s,
                            **self._config_kwargs,
                        ),
                    )
                    replica_urls.append(replica.start())
                    self._threads.append(replica)
                specs.append(
                    ShardSpec(
                        shard_id=f"shard-{index}",
                        primary=primary_url,
                        replicas=tuple(replica_urls),
                    )
                )
        except BaseException:
            self.stop()
            raise
        self.map = ClusterMap(shards=tuple(specs), vnodes=self.vnodes)
        if self._seed:
            self.seed_catalog()
        return self.map

    def seed_catalog(self) -> list:
        """Publish the shipped catalog *through the cluster client*, so
        blobs and tags land on their ring owners (a per-node seed would
        put every blob everywhere)."""
        client = ClusterClient(self.map)
        results = []
        try:
            for name in available_platforms():
                with open(platform_path(name), "r", encoding="utf-8") as handle:
                    results.append(client.publish(name, handle.read()))
        finally:
            client.close()
        return results

    def servers(self) -> List[ServerThread]:
        return list(self._threads)

    def stop(self) -> None:
        while self._threads:
            self._threads.pop().stop()

    def __enter__(self) -> ClusterMap:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class AsyncClusterClient:
    """Placement-aware async client over a :class:`ClusterMap`.

    Routes every operation to the owning shard: writes to the shard
    primary, reads round-robin across the shard's primary + replicas
    (with primary fallback when a replica hasn't converged yet).  Each
    node gets its own :class:`AsyncRegistryClient`, so pooling,
    coalescing and the immutable digest cache all apply per node.
    """

    def __init__(
        self,
        cluster_map: ClusterMap,
        *,
        endpoint_overrides: Optional[dict] = None,
    ):
        self.map = cluster_map
        overrides = dict(endpoint_overrides or {})
        self._clients: Dict[str, AsyncRegistryClient] = {
            url: AsyncRegistryClient(RegistryEndpoint.parse(url, **overrides))
            for spec in cluster_map.shards
            for url in spec.nodes
        }
        self._rr = {
            spec.shard_id: itertools.cycle(range(len(spec.nodes)))
            for spec in cluster_map.shards
        }

    # -- routing helpers -----------------------------------------------------
    def _client(self, url: str) -> AsyncRegistryClient:
        return self._clients[url]

    def _write_client(self, spec: ShardSpec) -> AsyncRegistryClient:
        return self._clients[spec.primary]

    def _read_client(self, spec: ShardSpec) -> AsyncRegistryClient:
        index = next(self._rr[spec.shard_id])
        return self._clients[spec.nodes[index]]

    async def _read(self, spec: ShardSpec, op, *args, **kwargs):
        """One read on the shard's rotation; a replica that has not yet
        converged (miss on something the primary has) falls back to the
        primary — the 'never wrong, briefly behind' contract."""
        client = self._read_client(spec)
        try:
            return await getattr(client, op)(*args, **kwargs)
        except UnknownPlatformError:
            if client.endpoint.base_url == spec.primary:
                raise
            return await getattr(self._write_client(spec), op)(*args, **kwargs)

    # -- core operations -----------------------------------------------------
    async def publish(
        self,
        name: str,
        descriptor: Union[str, bytes, Platform],
        *,
        strict_lint: bool = False,
    ) -> dict:
        """Two-step cluster publish: blob to its digest owner, tag record
        to its name owner.

        The digest is computed *locally* from the canonical
        serialization, so routing needs no round trip and the blob owner
        verifies the address on arrival.
        """
        if isinstance(descriptor, Platform):
            platform = descriptor
        else:
            if isinstance(descriptor, bytes):
                descriptor = descriptor.decode("utf-8")
            # name=name matches DescriptorStore.publish: nameless
            # documents adopt the tag as a fallback, so single-node and
            # cluster publishes of the same (name, xml) pair produce the
            # same digest
            platform = parse_cached(descriptor, name=name)
        canonical = write_pdl(platform)
        digest = content_digest(canonical)
        blob_shard = self.map.shard_for_blob(digest)
        blob_result = await self._write_client(blob_shard).put_blob(
            canonical, strict_lint=strict_lint
        )
        tag_shard = self.map.shard_for_tag(name)
        tag_result = await self._write_client(tag_shard).retag(name, digest)
        return {
            "name": name,
            "digest": digest,
            "created": blob_result["created"],
            "moved": tag_result["moved"],
            "blob_shard": blob_shard.shard_id,
            "tag_shard": tag_shard.shard_id,
        }

    async def resolve(self, ref: str) -> str:
        """Ref → digest.  Tags resolve on their owning shard; digest
        prefixes (ownerless by construction) fan out to every shard."""
        if _is_full_digest(ref):
            return ref
        try:
            return await self._read(
                self.map.shard_for_tag(ref), "resolve", ref
            )
        except UnknownPlatformError:
            digest = await self._resolve_prefix(ref)
            if digest is None:
                raise
            return digest

    async def _resolve_prefix(self, ref: str) -> Optional[str]:
        results = await asyncio.gather(
            *(
                self._read(spec, "resolve", ref)
                for spec in self.map.shards
            ),
            return_exceptions=True,
        )
        digests = {r for r in results if isinstance(r, str)}
        real_errors = [
            r
            for r in results
            if isinstance(r, BaseException)
            and not isinstance(r, UnknownPlatformError)
        ]
        if real_errors:
            raise real_errors[0]
        if len(digests) > 1:
            raise UnknownPlatformError(
                f"ambiguous digest prefix {ref!r}"
                f" ({len(digests)} matches across shards)"
            )
        return digests.pop() if digests else None

    async def fetch(self, ref: str) -> dict:
        """``{"ref", "digest", "name", "xml"}`` — resolve on the tag
        owner, blob bytes from the digest owner, composed client-side."""
        digest = await self.resolve(ref)
        record = await self._read(
            self.map.shard_for_blob(digest), "fetch", digest
        )
        return {
            "ref": ref,
            "digest": record["digest"],
            "name": record["name"] or (ref if not _is_full_digest(ref) else None),
            "xml": record["xml"],
        }

    async def platform(self, ref: str) -> Platform:
        record = await self.fetch(ref)
        return parse_cached(
            record["xml"], digest=record["digest"], name=record["name"]
        )

    async def delete_tag(self, name: str) -> dict:
        return await self._write_client(self.map.shard_for_tag(name)).delete_tag(
            name
        )

    async def retag(self, name: str, ref: str) -> dict:
        digest = await self.resolve(ref)
        return await self._write_client(self.map.shard_for_tag(name)).retag(
            name, digest
        )

    async def platforms(self) -> list:
        """Merged tag directory of every shard (each owns a disjoint
        subset of tag names)."""
        listings = await asyncio.gather(
            *(self._read(spec, "platforms") for spec in self.map.shards)
        )
        merged = [entry for listing in listings for entry in listing]
        return sorted(merged, key=lambda e: e["name"])

    # -- toolchain delegation (routed by resolved digest) --------------------
    async def query(self, ref: str, selector: Optional[str] = None) -> dict:
        digest = await self.resolve(ref)
        return await self._read(
            self.map.shard_for_blob(digest), "query", digest, selector
        )

    async def lint(self, ref: str) -> dict:
        digest = await self.resolve(ref)
        return await self._read(
            self.map.shard_for_blob(digest), "lint", digest
        )

    async def preselect(
        self,
        platform_ref: str,
        source: str,
        *,
        expert_variants: bool = False,
        require_fallback: bool = True,
    ) -> dict:
        results = await self.preselect_batch(
            platform_ref,
            [
                {
                    "source": source,
                    "expert_variants": expert_variants,
                    "require_fallback": require_fallback,
                }
            ],
        )
        return results[0]

    async def preselect_batch(self, platform_ref: str, programs: list) -> list:
        """Pre-selection runs on the platform's blob owner, so its memo
        (keyed by digest) concentrates on one shard group instead of
        being diluted N ways."""
        digest = await self.resolve(platform_ref)
        return await self._read(
            self.map.shard_for_blob(digest), "preselect_batch", digest, programs
        )

    async def diff(self, old_ref: str, new_ref: str) -> dict:
        """Structural diff, computed client-side: the two versions may
        live on different shards, so the cluster fetches both canonical
        documents and diffs locally (same payload shape as the
        single-node ``POST /diff``)."""
        old_record, new_record = await asyncio.gather(
            self.fetch(old_ref), self.fetch(new_ref)
        )
        diff = diff_platforms(
            parse_cached(old_record["xml"], digest=old_record["digest"]),
            parse_cached(new_record["xml"], digest=new_record["digest"]),
        )
        return {
            "old": {
                "ref": old_ref,
                "digest": old_record["digest"],
                "name": diff.old_name,
            },
            "new": {
                "ref": new_ref,
                "digest": new_record["digest"],
                "name": diff.new_name,
            },
            "identical": diff.identical,
            "changes": [
                {"kind": c.kind.value, "subject": c.subject, "detail": c.detail}
                for c in diff.changes
            ],
        }

    # -- tuning profiles -----------------------------------------------------
    async def publish_profile(self, ref: str, profile) -> dict:
        digest = await self.resolve(ref)
        return await self._write_client(
            self.map.shard_for_blob(digest)
        ).publish_profile(digest, profile)

    async def fetch_profile(self, ref: str) -> dict:
        digest = await self.resolve(ref)
        return await self._read(
            self.map.shard_for_blob(digest), "fetch_profile", digest
        )

    async def profiles(self) -> list:
        listings = await asyncio.gather(
            *(self._read(spec, "profiles") for spec in self.map.shards)
        )
        merged = [entry for listing in listings for entry in listing]
        return sorted(merged, key=lambda e: e["digest"])

    # -- cluster observability -----------------------------------------------
    async def health(self) -> dict:
        """Fan-out liveness: ``ok`` only when every node answers."""
        urls = [url for spec in self.map.shards for url in spec.nodes]
        results = await asyncio.gather(
            *(self._client(url).health() for url in urls),
            return_exceptions=True,
        )
        nodes = []
        for url, result in zip(urls, results):
            ok = isinstance(result, dict) and result.get("status") == "ok"
            nodes.append({"url": url, "ok": ok})
        return {
            "ok": all(n["ok"] for n in nodes),
            "shards": len(self.map),
            "nodes": nodes,
        }

    async def metrics(self) -> dict:
        """Whole-cluster metrics under one span: per-node snapshots plus
        the merged view (histogram-merged latency percentiles — see
        :meth:`ServiceMetrics.merge_snapshots`)."""
        tracer = _obs.get_tracer()
        if tracer is None:
            return await self._metrics_impl()
        with tracer.span("registry.cluster.metrics", shards=len(self.map)):
            return await self._metrics_impl()

    async def _metrics_impl(self) -> dict:
        entries = [
            (spec.shard_id, "primary" if url == spec.primary else "replica", url)
            for spec in self.map.shards
            for url in spec.nodes
        ]
        snapshots = await asyncio.gather(
            *(self._client(url).metrics() for _, _, url in entries)
        )
        per_node = [
            {"shard": shard_id, "role": role, "url": url, "metrics": snap}
            for (shard_id, role, url), snap in zip(entries, snapshots)
        ]
        return {
            "per_node": per_node,
            "merged": ServiceMetrics.merge_snapshots(snapshots),
        }

    async def status(self) -> dict:
        """Topology + replication-lag report (the ``cluster status`` CLI
        payload)."""
        metrics = await self._metrics_impl()
        by_url = {n["url"]: n["metrics"] for n in metrics["per_node"]}
        shards = []
        for spec in self.map.shards:
            primary_stats = by_url[spec.primary].get("store", {})
            head = primary_stats.get("oplog_head", 0)
            replicas = []
            for url in spec.replicas:
                snap = by_url[url]
                applied = snap.get("store", {}).get("applied_seq", 0)
                replicas.append(
                    {"url": url, "applied_seq": applied, "lag": head - applied}
                )
            shards.append(
                {
                    "id": spec.shard_id,
                    "primary": spec.primary,
                    "blobs": primary_stats.get("blobs", 0),
                    "tags": primary_stats.get("tags", 0),
                    "oplog_head": head,
                    "replicas": replicas,
                }
            )
        return {
            "shards": shards,
            "converged": all(
                r["lag"] == 0 for s in shards for r in s["replicas"]
            ),
        }

    async def wait_converged(self, *, timeout_s: float = 10.0) -> dict:
        """Block until every replica has drained its primary's oplog."""
        deadline = asyncio.get_running_loop().time() + timeout_s
        while True:
            status = await self.status()
            if status["converged"]:
                return status
            if asyncio.get_running_loop().time() > deadline:
                raise ServiceError(
                    f"cluster did not converge within {timeout_s}s:"
                    f" {status['shards']}"
                )
            await asyncio.sleep(0.02)

    def cache_stats(self) -> dict:
        """Per-node client stats plus cluster totals."""
        per_node = {url: c.cache_stats() for url, c in self._clients.items()}
        totals: Dict[str, int] = {}
        for stats in per_node.values():
            for key in (
                "requests",
                "network_requests",
                "coalesced",
                "record_cache_hits",
                "connections_opened",
            ):
                totals[key] = totals.get(key, 0) + stats[key]
        return {"total": totals, "per_node": per_node}

    async def aclose(self) -> None:
        await asyncio.gather(*(c.aclose() for c in self._clients.values()))

    def __repr__(self) -> str:
        return (
            f"AsyncClusterClient(shards={len(self.map)},"
            f" nodes={len(self._clients)})"
        )


class ClusterClient:
    """Blocking facade over :class:`AsyncClusterClient` (same shared
    background loop as :class:`~repro.service.client.RegistryClient`)."""

    def __init__(
        self,
        cluster_map: Union[ClusterMap, str],
        *,
        endpoint_overrides: Optional[dict] = None,
    ):
        if isinstance(cluster_map, str):
            cluster_map = ClusterMap.load(cluster_map)
        self._async = AsyncClusterClient(
            cluster_map, endpoint_overrides=endpoint_overrides
        )
        self.map = self._async.map

    def _call(self, coro):
        return LOOP_RUNNER.submit(coro)

    def publish(self, name, descriptor, *, strict_lint: bool = False) -> dict:
        return self._call(
            self._async.publish(name, descriptor, strict_lint=strict_lint)
        )

    def fetch(self, ref: str) -> dict:
        return self._call(self._async.fetch(ref))

    def platform(self, ref: str) -> Platform:
        return self._call(self._async.platform(ref))

    def resolve(self, ref: str) -> str:
        return self._call(self._async.resolve(ref))

    def delete_tag(self, name: str) -> dict:
        return self._call(self._async.delete_tag(name))

    def retag(self, name: str, ref: str) -> dict:
        return self._call(self._async.retag(name, ref))

    def platforms(self) -> list:
        return self._call(self._async.platforms())

    def query(self, ref: str, selector: Optional[str] = None) -> dict:
        return self._call(self._async.query(ref, selector))

    def lint(self, ref: str) -> dict:
        return self._call(self._async.lint(ref))

    def preselect(self, platform_ref: str, source: str, **kwargs) -> dict:
        return self._call(self._async.preselect(platform_ref, source, **kwargs))

    def preselect_batch(self, platform_ref: str, programs: list) -> list:
        return self._call(self._async.preselect_batch(platform_ref, programs))

    def diff(self, old_ref: str, new_ref: str) -> dict:
        return self._call(self._async.diff(old_ref, new_ref))

    def publish_profile(self, ref: str, profile) -> dict:
        return self._call(self._async.publish_profile(ref, profile))

    def fetch_profile(self, ref: str) -> dict:
        return self._call(self._async.fetch_profile(ref))

    def profiles(self) -> list:
        return self._call(self._async.profiles())

    def health(self) -> dict:
        return self._call(self._async.health())

    def metrics(self) -> dict:
        return self._call(self._async.metrics())

    def status(self) -> dict:
        return self._call(self._async.status())

    def wait_converged(self, *, timeout_s: float = 10.0) -> dict:
        return self._call(self._async.wait_converged(timeout_s=timeout_s))

    def cache_stats(self) -> dict:
        return self._async.cache_stats()

    def close(self) -> None:
        self._call(self._async.aclose())

    def __repr__(self) -> str:
        return f"ClusterClient(shards={len(self.map)})"
