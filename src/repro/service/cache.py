"""Thread-safe LRU cache used by the registry store's hot paths.

Deliberately tiny: the store keys entries by content digest, so entries
are immutable-by-construction and eviction is purely a memory bound —
a stale read is impossible, only a re-parse.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    All operations are O(1) and thread-safe.  ``hits``/``misses``
    counters feed :class:`repro.service.metrics.ServiceMetrics`.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def pop(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            return self._data.pop(key, default)

    def evict_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose *key* satisfies ``predicate``; returns
        the number of evicted entries (tag-move invalidation hook)."""
        with self._lock:
            stale = [k for k in self._data if predicate(k)]
            for k in stale:
                del self._data[k]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def hit_ratio(self) -> Optional[float]:
        total = self.hits + self.misses
        return self.hits / total if total else None

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self)}/{self.capacity},"
            f" hits={self.hits}, misses={self.misses})"
        )
