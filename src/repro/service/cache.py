"""Caches used by the registry's hot paths: a thread-safe LRU for
digest-keyed (immutable) entries and a TTL map for tag resolutions.

The split *is* the consistency contract: content digests are immutable
by construction, so :class:`LRUCache` entries never go stale — eviction
is purely a memory bound and revalidation is never needed.  Tags are the
registry's only movable refs, so :class:`TTLCache` entries expire after
a bounded window and the next read revalidates against the server.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional

__all__ = ["LRUCache", "TTLCache"]

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    All operations are O(1) and thread-safe.  ``hits``/``misses``
    counters feed :class:`repro.service.metrics.ServiceMetrics`.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def pop(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            return self._data.pop(key, default)

    def evict_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose *key* satisfies ``predicate``; returns
        the number of evicted entries (tag-move invalidation hook)."""
        with self._lock:
            stale = [k for k in self._data if predicate(k)]
            for k in stale:
                del self._data[k]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def hit_ratio(self) -> Optional[float]:
        total = self.hits + self.misses
        return self.hits / total if total else None

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self)}/{self.capacity},"
            f" hits={self.hits}, misses={self.misses})"
        )


class TTLCache:
    """Bounded mapping whose entries expire after ``ttl_s`` seconds.

    Used for *movable* refs (tags, digest prefixes): a hit within the
    TTL serves the cached resolution, a hit past it counts as a miss and
    forces revalidation.  ``ttl_s=0`` disables caching entirely (every
    lookup misses), which is the safe default for strongly-read-your-
    writes callers.  LRU-bounded like :class:`LRUCache`.
    """

    def __init__(
        self, capacity: int, ttl_s: float, *, clock: Callable[[], float] = time.monotonic
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if ttl_s < 0:
            raise ValueError("ttl_s must be >= 0")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self.hits = 0
        self.misses = 0
        self._clock = clock
        self._lock = threading.Lock()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()  # key -> (expiry, value)

    def get(self, key: Hashable, default: Any = None) -> Any:
        if self.ttl_s == 0:
            self.misses += 1
            return default
        now = self._clock()
        with self._lock:
            entry = self._data.get(key, _MISSING)
            if entry is _MISSING or entry[0] < now:
                if entry is not _MISSING:
                    del self._data[key]
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return entry[1]

    def put(self, key: Hashable, value: Any) -> None:
        if self.ttl_s == 0:
            return
        with self._lock:
            self._data[key] = (self._clock() + self.ttl_s, value)
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def invalidate(self, key: Hashable) -> None:
        with self._lock:
            self._data.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __repr__(self) -> str:
        return (
            f"TTLCache(size={len(self)}/{self.capacity}, ttl={self.ttl_s}s,"
            f" hits={self.hits}, misses={self.misses})"
        )
