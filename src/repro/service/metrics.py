"""Operational counters for the platform registry service.

One :class:`ServiceMetrics` instance is shared by the store and the
server: the store records cache hits/misses, the server records request
outcomes, queue pressure and latencies.  ``snapshot()`` is the payload
of ``GET /metrics``.

Latency percentiles are computed over a bounded reservoir (the most
recent ``latency_window`` observations) — good enough for p50/p99 of a
live service without unbounded memory.  The percentile math itself
lives in :mod:`repro.obs.digest`, shared with the observability
histograms so every digest in the toolchain has the same shape.
"""

from __future__ import annotations

import threading
from collections import Counter, deque

# re-exported for backwards compatibility: this was percentile's home
from repro.obs.digest import (
    digest_summary,
    fingerprint_payload,
    latency_buckets,
    merge_digest_summaries,
    percentile,
)

__all__ = ["ServiceMetrics", "percentile"]


class ServiceMetrics:
    """Thread-safe counter block for the registry service."""

    def __init__(self, *, latency_window: int = 2048):
        self._lock = threading.Lock()
        self.requests_total = 0
        self.errors_total = 0
        self.overloads_total = 0
        self.by_endpoint: Counter = Counter()
        self.by_status: Counter = Counter()
        self.platform_cache_hits = 0
        self.platform_cache_misses = 0
        self.preselect_cache_hits = 0
        self.preselect_cache_misses = 0
        self.queue_depth = 0
        self.queue_high_water = 0
        self._latencies: deque = deque(maxlen=latency_window)

    # -- store-side ---------------------------------------------------------
    def record_platform_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.platform_cache_hits += 1
            else:
                self.platform_cache_misses += 1

    def record_preselect_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.preselect_cache_hits += 1
            else:
                self.preselect_cache_misses += 1

    # -- server-side --------------------------------------------------------
    def observe_request(self, endpoint: str, status: int, seconds: float) -> None:
        with self._lock:
            self.requests_total += 1
            self.by_endpoint[endpoint] += 1
            self.by_status[status] += 1
            if status == 429:
                self.overloads_total += 1
            elif status >= 400:
                self.errors_total += 1
            self._latencies.append(seconds)

    def enter_queue(self) -> int:
        """Register one queued/in-flight request; returns the new depth."""
        with self._lock:
            self.queue_depth += 1
            self.queue_high_water = max(self.queue_high_water, self.queue_depth)
            return self.queue_depth

    def exit_queue(self) -> None:
        with self._lock:
            self.queue_depth = max(0, self.queue_depth - 1)

    # -- reporting ----------------------------------------------------------
    def _ratio(self, hits: int, misses: int):
        total = hits + misses
        return hits / total if total else None

    def snapshot(self) -> dict:
        """JSON-serializable state (the ``GET /metrics`` payload)."""
        with self._lock:
            samples = list(self._latencies)
            return {
                "requests_total": self.requests_total,
                "errors_total": self.errors_total,
                "overloads_total": self.overloads_total,
                "by_endpoint": dict(self.by_endpoint),
                "by_status": {str(k): v for k, v in self.by_status.items()},
                "platform_cache": {
                    "hits": self.platform_cache_hits,
                    "misses": self.platform_cache_misses,
                    "hit_ratio": self._ratio(
                        self.platform_cache_hits, self.platform_cache_misses
                    ),
                },
                "preselect_cache": {
                    "hits": self.preselect_cache_hits,
                    "misses": self.preselect_cache_misses,
                    "hit_ratio": self._ratio(
                        self.preselect_cache_hits, self.preselect_cache_misses
                    ),
                },
                "queue": {
                    "depth": self.queue_depth,
                    "high_water": self.queue_high_water,
                },
                # the buckets ride along so per-shard snapshots stay
                # *mergeable*: cluster fan-in adds histograms and
                # re-derives p50/p99 instead of averaging percentiles
                "latency_s": {
                    **digest_summary(samples),
                    "buckets": latency_buckets(samples),
                },
            }

    @staticmethod
    def merge_snapshots(snapshots: list) -> dict:
        """Aggregate per-node ``snapshot()`` payloads into one cluster
        view: counters add, cache ratios are recomputed from summed
        hits/misses, and latency percentiles come from the **merged
        histogram** (see :func:`repro.obs.digest.merge_digest_summaries`)
        — never from averaging per-node percentiles, which under-reports
        any hot shard's tail.
        """
        merged: dict = {
            "nodes": len(snapshots),
            "requests_total": 0,
            "errors_total": 0,
            "overloads_total": 0,
            "by_endpoint": Counter(),
            "by_status": Counter(),
            "queue": {"depth": 0, "high_water": 0},
        }
        caches = {
            "platform_cache": {"hits": 0, "misses": 0},
            "preselect_cache": {"hits": 0, "misses": 0},
        }
        for snap in snapshots:
            merged["requests_total"] += snap.get("requests_total", 0)
            merged["errors_total"] += snap.get("errors_total", 0)
            merged["overloads_total"] += snap.get("overloads_total", 0)
            merged["by_endpoint"].update(snap.get("by_endpoint", {}))
            merged["by_status"].update(snap.get("by_status", {}))
            queue = snap.get("queue", {})
            merged["queue"]["depth"] += queue.get("depth", 0)
            merged["queue"]["high_water"] += queue.get("high_water", 0)
            for cache_name, sums in caches.items():
                block = snap.get(cache_name, {})
                sums["hits"] += block.get("hits", 0)
                sums["misses"] += block.get("misses", 0)
        for cache_name, sums in caches.items():
            total = sums["hits"] + sums["misses"]
            merged[cache_name] = {
                **sums,
                "hit_ratio": sums["hits"] / total if total else None,
            }
        merged["by_endpoint"] = dict(merged["by_endpoint"])
        merged["by_status"] = dict(merged["by_status"])
        merged["latency_s"] = merge_digest_summaries(
            [snap.get("latency_s", {"count": 0}) for snap in snapshots]
        )
        return merged

    def to_payload(self) -> dict:
        """Alias of :meth:`snapshot` — the uniform report-object verb
        (``SelectionReport``/``LintReport``/``RunResult`` parity)."""
        return self.snapshot()

    def fingerprint(self) -> str:
        """Stable sha256 over :meth:`to_payload`."""
        return fingerprint_payload(self.to_payload())

    def __repr__(self) -> str:
        return (
            f"ServiceMetrics(requests={self.requests_total},"
            f" errors={self.errors_total}, overloads={self.overloads_total})"
        )
