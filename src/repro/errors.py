"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing subsystem-specific failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "ValidationError",
    "PropertyError",
    "PDLError",
    "PDLParseError",
    "PDLSchemaError",
    "QueryError",
    "SelectorSyntaxError",
    "PatternMatchError",
    "PathError",
    "DiscoveryError",
    "CascabelError",
    "PragmaSyntaxError",
    "RepositoryError",
    "SelectionError",
    "MappingError",
    "DistributionError",
    "CodegenError",
    "CompilePlanError",
    "RuntimeEngineError",
    "SchedulerError",
    "DataError",
    "CoherenceError",
    "TaskFailureError",
    "WorkerFailureError",
    "WatchdogTimeoutError",
    "PerfModelError",
    "KernelError",
    "TuningError",
    "LintError",
    "ServiceError",
    "ServiceProtocolError",
    "ProtocolMismatchError",
    "ServiceOverloadError",
    "UnknownPlatformError",
    "ExploreError",
    "ServeError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


# --------------------------------------------------------------------------
# Machine model
# --------------------------------------------------------------------------
class ModelError(ReproError):
    """Base class for machine-model errors."""


class ValidationError(ModelError):
    """A platform violates the structural rules of the machine model.

    Carries a list of human-readable violation messages in
    :attr:`violations`.
    """

    def __init__(self, violations):
        if isinstance(violations, str):
            violations = [violations]
        self.violations = list(violations)
        super().__init__(
            "platform validation failed:\n  - " + "\n  - ".join(self.violations)
        )


class PropertyError(ModelError):
    """Invalid property definition, value, unit, or mutation of a fixed property."""


# --------------------------------------------------------------------------
# PDL (XML language)
# --------------------------------------------------------------------------
class PDLError(ReproError):
    """Base class for PDL document errors."""


class PDLParseError(PDLError):
    """The XML document could not be parsed into the machine model."""

    def __init__(self, message, *, line=None, element=None):
        self.line = line
        self.element = element
        loc = f" (line {line})" if line is not None else ""
        elt = f" in <{element}>" if element else ""
        super().__init__(f"PDL parse error{loc}{elt}: {message}")


class PDLSchemaError(PDLError):
    """A document or property does not conform to its (sub)schema."""


# --------------------------------------------------------------------------
# Query API
# --------------------------------------------------------------------------
class QueryError(ReproError):
    """Base class for platform-query errors."""


class SelectorSyntaxError(QueryError):
    """A selector expression could not be parsed."""

    def __init__(self, selector, position, message):
        self.selector = selector
        self.position = position
        super().__init__(
            f"invalid selector {selector!r} at position {position}: {message}"
        )


class PatternMatchError(QueryError):
    """An abstract platform pattern has no mapping onto the concrete platform."""


class PathError(QueryError):
    """No data path exists between the requested endpoints."""


# --------------------------------------------------------------------------
# Discovery
# --------------------------------------------------------------------------
class DiscoveryError(ReproError):
    """A discovery source failed or an unknown device was requested."""


# --------------------------------------------------------------------------
# Cascabel source-to-source compiler
# --------------------------------------------------------------------------
class CascabelError(ReproError):
    """Base class for Cascabel compiler errors."""


class PragmaSyntaxError(CascabelError):
    """A ``#pragma cascabel`` annotation is malformed."""

    def __init__(self, message, *, line=None, column=None, pragma=None):
        self.line = line
        self.column = column
        self.pragma = pragma
        loc = f" at line {line}" if line is not None else ""
        if line is not None and column is not None:
            loc += f", column {column}"
        super().__init__(f"pragma syntax error{loc}: {message}")


class RepositoryError(CascabelError):
    """Task-repository inconsistency (duplicate variants, unknown interfaces...)."""


class SelectionError(CascabelError):
    """No suitable task implementation variant exists for the target platform."""


class MappingError(CascabelError):
    """An execution group cannot be mapped onto the target platform."""


class DistributionError(CascabelError):
    """Invalid data-distribution specification or partitioning request."""


class CodegenError(CascabelError):
    """Output generation failed for a backend."""


class CompilePlanError(CascabelError):
    """No valid compilation/linking plan can be derived from the PDL."""


# --------------------------------------------------------------------------
# Runtime
# --------------------------------------------------------------------------
class RuntimeEngineError(ReproError):
    """Base class for heterogeneous-runtime errors."""


class SchedulerError(RuntimeEngineError):
    """Scheduler misconfiguration or impossible placement."""


class DataError(RuntimeEngineError):
    """Invalid data handle operation (bad partitioning, unregistered handle...)."""


class CoherenceError(RuntimeEngineError):
    """Coherence-protocol invariant violation."""


class TaskFailureError(RuntimeEngineError):
    """A task exhausted its retry budget (fault injection or kernel bug)."""

    def __init__(self, message, *, task_tag=None, attempts=None):
        self.task_tag = task_tag
        self.attempts = attempts
        super().__init__(message)


class WorkerFailureError(RuntimeEngineError):
    """A worker lane died and the run could not recover around it."""


class WatchdogTimeoutError(RuntimeEngineError):
    """The stall watchdog fired: no forward progress within the timeout.

    The message carries a diagnosis of which tasks and workers were
    blocked when the watchdog tripped.
    """


# --------------------------------------------------------------------------
# Performance models / kernels
# --------------------------------------------------------------------------
class PerfModelError(ReproError):
    """Missing or invalid performance-model information."""


class KernelError(ReproError):
    """Kernel registry / execution failure."""


class TuningError(ReproError):
    """Autotuning subsystem failure (calibration, database, late binding)."""


# --------------------------------------------------------------------------
# Static analysis
# --------------------------------------------------------------------------
class LintError(ReproError):
    """Strict-mode lint rejected an artifact.

    :attr:`diagnostics` carries the offending finding payloads (the
    ``Diagnostic.to_payload()`` shape of :mod:`repro.analysis`).
    """

    def __init__(self, message, *, diagnostics=None):
        self.diagnostics = list(diagnostics or [])
        super().__init__(message)


# --------------------------------------------------------------------------
# Platform registry service
# --------------------------------------------------------------------------
class ServiceError(ReproError):
    """Base class for platform-registry-service errors."""


class ServiceProtocolError(ServiceError):
    """Malformed request or response on the registry wire protocol."""


class ProtocolMismatchError(ServiceProtocolError):
    """Client and server speak no common registry protocol version.

    Raised instead of a confusing payload error when version negotiation
    on first contact fails (wire error code ``protocol-mismatch``).
    """


class ServiceOverloadError(ServiceError):
    """The registry rejected a request because its queue is full (HTTP 429).

    :attr:`retry_after` carries the server's suggested wait in seconds.
    """

    def __init__(self, message, *, retry_after=None):
        self.retry_after = retry_after
        super().__init__(message)


class UnknownPlatformError(ServiceError):
    """No stored descriptor matches the requested tag or digest (HTTP 404)."""


# --------------------------------------------------------------------------
# Design-space exploration
# --------------------------------------------------------------------------
class ExploreError(ReproError):
    """Invalid design space, budget, or exploration configuration."""


# --------------------------------------------------------------------------
# Online serving
# --------------------------------------------------------------------------
class ServeError(ReproError):
    """Invalid serving configuration, stream, or replay input."""
