"""XML namespace handling for the PDL.

The PDL uses XML namespaces for two things:

* the base schema itself (``pdl:`` — usually the default namespace), and
* *subschemas* that extend the generic ``Property`` type through XML schema
  inheritance (Listing 2: ``xsi:type="ocl:oclDevicePropertyType"`` with
  ``<ocl:name>``/``<ocl:value>`` children).

:mod:`xml.etree.ElementTree` expands prefixed names to Clark notation
(``{uri}local``); this module owns the canonical prefix ↔ URI mapping so the
parser and writer agree, and new subschema namespaces can be registered at
runtime.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "PDL_NS",
    "XSI_NS",
    "WELL_KNOWN",
    "NamespaceMap",
    "clark",
    "split_clark",
]

#: namespace of the base PDL schema
PDL_NS = "http://repro.example.org/pdl/1.0"
#: the W3C schema-instance namespace (carries ``xsi:type``)
XSI_NS = "http://www.w3.org/2001/XMLSchema-instance"

#: predefined subschema namespaces shipped with the library
WELL_KNOWN: dict[str, str] = {
    "pdl": PDL_NS,
    "xsi": XSI_NS,
    "ocl": "http://repro.example.org/pdl/ext/opencl/1.0",
    "cuda": "http://repro.example.org/pdl/ext/cuda/1.0",
    "hwloc": "http://repro.example.org/pdl/ext/hwloc/1.0",
    "cell": "http://repro.example.org/pdl/ext/cell/1.0",
}


def clark(uri: str, local: str) -> str:
    """Build an ElementTree Clark-notation name ``{uri}local``."""
    return f"{{{uri}}}{local}" if uri else local


def split_clark(tag: str) -> tuple[Optional[str], str]:
    """Split ``{uri}local`` into ``(uri, local)``; plain tags give ``(None, tag)``."""
    if tag.startswith("{"):
        uri, _, local = tag[1:].partition("}")
        return uri, local
    return None, tag


class NamespaceMap:
    """Bidirectional prefix ↔ URI map with registration support."""

    def __init__(self, initial: Optional[dict[str, str]] = None):
        self._prefix_to_uri: dict[str, str] = {}
        self._uri_to_prefix: dict[str, str] = {}
        for prefix, uri in (initial or WELL_KNOWN).items():
            self.register(prefix, uri)

    def register(self, prefix: str, uri: str) -> None:
        existing = self._prefix_to_uri.get(prefix)
        if existing is not None and existing != uri:
            raise ValueError(
                f"namespace prefix {prefix!r} already bound to {existing!r}"
            )
        self._prefix_to_uri[prefix] = uri
        self._uri_to_prefix.setdefault(uri, prefix)

    def uri(self, prefix: str) -> Optional[str]:
        return self._prefix_to_uri.get(prefix)

    def prefix(self, uri: str) -> Optional[str]:
        return self._uri_to_prefix.get(uri)

    def qualify(self, name: str) -> str:
        """``"ocl:value"`` → Clark notation; unprefixed names pass through."""
        if ":" in name:
            prefix, local = name.split(":", 1)
            uri = self.uri(prefix)
            if uri is None:
                raise KeyError(f"unknown namespace prefix {prefix!r}")
            return clark(uri, local)
        return name

    def shorten(self, tag: str) -> str:
        """Clark notation → ``prefix:local`` (or bare local for unknown URIs)."""
        uri, local = split_clark(tag)
        if uri is None:
            return local
        prefix = self.prefix(uri)
        return f"{prefix}:{local}" if prefix else local

    def items(self):
        return self._prefix_to_uri.items()

    def copy(self) -> "NamespaceMap":
        return NamespaceMap(dict(self._prefix_to_uri))


#: process-wide default map (extensions register themselves here)
DEFAULT_NAMESPACES = NamespaceMap()
