"""``pdl-tool`` command line interface.

Subcommands::

    pdl-tool list                      # shipped descriptors
    pdl-tool show <file-or-name>       # ASCII control-hierarchy tree
    pdl-tool validate <file-or-name>   # full validation report
    pdl-tool roundtrip <file-or-name>  # parse + re-serialize to stdout
    pdl-tool discover [--gpus ...]     # generate a descriptor for this host
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.model.visitor import render_tree
from repro.pdl.catalog import available_platforms, load_platform
from repro.pdl.parser import parse_pdl_file
from repro.pdl.validator import validate_document
from repro.pdl.writer import write_pdl

__all__ = ["main", "build_arg_parser"]


def _load(spec: str, *, validate: bool = True):
    if os.path.exists(spec):
        return parse_pdl_file(spec, validate=validate)
    return load_platform(spec, validate=validate)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pdl-tool", description="Platform Description Language utilities"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list shipped platform descriptors")

    show = sub.add_parser("show", help="print the control hierarchy")
    show.add_argument("platform", help="descriptor file path or shipped name")

    validate = sub.add_parser("validate", help="validate a descriptor")
    validate.add_argument("platform")
    validate.add_argument(
        "--strict", action="store_true", help="reject unknown property subschemas"
    )

    roundtrip = sub.add_parser("roundtrip", help="parse and re-serialize")
    roundtrip.add_argument("platform")

    discover = sub.add_parser(
        "discover", help="generate a descriptor for a synthetic/current host"
    )
    discover.add_argument("--name", default="discovered-host")
    discover.add_argument(
        "--gpus", nargs="*", default=[], help="GPU models to attach (e.g. 'GeForce GTX 480')"
    )

    diff = sub.add_parser("diff", help="structural diff of two descriptors")
    diff.add_argument("old")
    diff.add_argument("new")

    xsd = sub.add_parser("xsd", help="emit the derived XML Schema Definitions")
    xsd.add_argument("-o", "--output", help="directory to write .xsd files to")
    return parser


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)

    if args.command == "list":
        for name in available_platforms():
            print(name)
        return 0

    if args.command == "show":
        platform = _load(args.platform, validate=False)
        print(render_tree(platform))
        return 0

    if args.command == "validate":
        platform = _load(args.platform, validate=False)
        report = validate_document(platform, strict_schema=args.strict)
        print(report.summary())
        return 0 if report.ok else 1

    if args.command == "roundtrip":
        platform = _load(args.platform, validate=False)
        sys.stdout.write(write_pdl(platform))
        return 0

    if args.command == "discover":
        from repro.discovery.generator import generate_host_platform

        platform = generate_host_platform(name=args.name, gpu_models=args.gpus)
        sys.stdout.write(write_pdl(platform))
        return 0

    if args.command == "diff":
        from repro.pdl.diff import diff_platforms

        old = _load(args.old, validate=False)
        new = _load(args.new, validate=False)
        diff = diff_platforms(old, new)
        print(diff.summary())
        return 0 if diff.identical else 1

    if args.command == "xsd":
        from repro.pdl.xsd import emit_all_xsd

        documents = emit_all_xsd()
        if args.output:
            os.makedirs(args.output, exist_ok=True)
            for name, text in documents.items():
                path = os.path.join(args.output, name)
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(text)
                print(f"wrote {path}")
        else:
            for name, text in documents.items():
                print(f"===== {name} =====")
                sys.stdout.write(text)
        return 0

    return 2  # pragma: no cover - argparse enforces the command set


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
