"""PDL document parser: XML text → :class:`~repro.model.platform.Platform`.

Accepted document shapes
------------------------
* a ``<Platform>`` root wrapping one or more ``<Master>`` elements, or
* a bare ``<Master>`` root exactly as printed in Listing 1 of the paper.

Elements may live in the PDL namespace or be un-namespaced (the paper's
listings omit the header); parsing dispatches on local names.  Polymorphic
properties (Listing 2) declare ``xsi:type="ocl:oclDevicePropertyType"`` and
use namespaced ``<ocl:name>`` / ``<ocl:value>`` children; the parser resolves
document prefixes against the document's own ``xmlns`` declarations and
normalizes them to the library's canonical prefixes.
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as ET
from typing import Optional, Union

from repro.errors import PDLParseError
from repro.obs import spans as _obs
from repro.model.entities import (
    Hybrid,
    Interconnect,
    Master,
    MemoryRegion,
    ProcessingUnit,
    Worker,
)
from repro.model.platform import Platform
from repro.model.properties import (
    Descriptor,
    ICDescriptor,
    MRDescriptor,
    Property,
    PropertyValue,
    PUDescriptor,
)
from repro.pdl.namespaces import DEFAULT_NAMESPACES, XSI_NS, NamespaceMap, split_clark
from repro.pdl.schema import SchemaRegistry, default_registry

__all__ = ["parse_pdl", "parse_pdl_file", "PDLParser"]

_PU_CLASSES = {"Master": Master, "Hybrid": Hybrid, "Worker": Worker}


def parse_pdl(
    text: Union[str, bytes],
    *,
    registry: Optional[SchemaRegistry] = None,
    validate: bool = True,
    strict_schema: bool = False,
    name: Optional[str] = None,
) -> Platform:
    """Parse a PDL document from a string.

    Parameters
    ----------
    text:
        XML source.
    registry:
        Schema registry for property-type resolution (defaults to the
        shipped registry).
    validate:
        Run structural machine-model validation after parsing.
    strict_schema:
        Reject properties whose declared type is unknown to the registry.
    name:
        Platform name override (used for bare-Master documents that carry
        no name of their own).
    """
    tracer = _obs.get_tracer()
    if tracer is None:
        parser = PDLParser(registry=registry, strict_schema=strict_schema)
        platform = parser.parse(text, name=name)
        if validate:
            platform.validate()
        return platform
    with tracer.span(
        "pdl.parse", nbytes=len(text), validate=validate
    ) as span_:
        parser = PDLParser(registry=registry, strict_schema=strict_schema)
        platform = parser.parse(text, name=name)
        if validate:
            platform.validate()
        span_.set(platform=platform.name, pu_count=platform.total_pu_count())
        return platform


def parse_pdl_file(path, **kwargs) -> Platform:
    """Parse a PDL document from a file path."""
    with open(path, "rb") as handle:
        data = handle.read()
    kwargs.setdefault("name", _stem(path))
    return parse_pdl(data, **kwargs)


def _stem(path) -> str:
    import os

    return os.path.splitext(os.path.basename(str(path)))[0]


class PDLParser:
    """Stateful parser; one instance may parse many documents."""

    def __init__(
        self,
        *,
        registry: Optional[SchemaRegistry] = None,
        strict_schema: bool = False,
    ):
        self.registry = registry if registry is not None else default_registry()
        self.strict_schema = strict_schema

    # -- entry point -------------------------------------------------------
    def parse(self, text: Union[str, bytes], *, name: Optional[str] = None) -> Platform:
        if isinstance(text, str):
            text = text.encode("utf-8")
        root, nsmap = self._parse_tree(text)
        local = self._local(root.tag)
        if local == "Platform":
            platform = Platform(
                name=root.get("name", name or "platform"),
                schema_version=root.get("schemaVersion", "1.0"),
            )
            masters = [el for el in root if self._local(el.tag) in _PU_CLASSES]
            if not masters:
                raise PDLParseError("Platform element contains no Master")
            for el in masters:
                if self._local(el.tag) != "Master":
                    raise PDLParseError(
                        f"top-level PU must be Master, got {self._local(el.tag)}",
                        element=self._local(el.tag),
                    )
                platform.add_master(self._parse_pu(el, Master, nsmap))
        elif local == "Master":
            platform = Platform(name=name or root.get("name", "platform"))
            platform.add_master(self._parse_pu(root, Master, nsmap))
        else:
            raise PDLParseError(
                f"unexpected root element <{local}>; expected Platform or Master"
            )
        return platform

    # -- XML plumbing --------------------------------------------------------
    def _parse_tree(self, data: bytes) -> tuple[ET.Element, NamespaceMap]:
        """Parse XML collecting the document's own prefix declarations."""
        nsmap = NamespaceMap({})
        # seed with canonical prefixes so documents without declarations work
        for prefix, uri in DEFAULT_NAMESPACES.items():
            nsmap.register(prefix, uri)
        try:
            events = ET.iterparse(io.BytesIO(data), events=("start-ns", "end"))
            root: Optional[ET.Element] = None
            for event, payload in events:
                if event == "start-ns":
                    prefix, uri = payload
                    try:
                        nsmap.register(prefix or "pdl-default", uri)
                    except ValueError:
                        pass  # document re-binds a known prefix; URI lookup still works
                else:
                    root = payload
            # iterparse yields end events bottom-up; the last one is the root
            if root is None:
                raise PDLParseError("empty document")
            return root, nsmap
        except ET.ParseError as exc:
            raise PDLParseError(str(exc), line=getattr(exc, "position", (None,))[0])

    @staticmethod
    def _local(tag: str) -> str:
        return split_clark(tag)[1]

    def _children(self, element: ET.Element, local: str) -> list[ET.Element]:
        return [el for el in element if self._local(el.tag) == local]

    def _child(self, element: ET.Element, local: str) -> Optional[ET.Element]:
        found = self._children(element, local)
        return found[0] if found else None

    # -- element handlers ---------------------------------------------------
    def _parse_pu(
        self, element: ET.Element, expected_cls, nsmap: NamespaceMap
    ) -> ProcessingUnit:
        local = self._local(element.tag)
        cls = _PU_CLASSES.get(local)
        if cls is None or not issubclass(cls, expected_cls):
            raise PDLParseError(
                f"expected {expected_cls.__name__} element, got <{local}>",
                element=local,
            )
        pu_id = element.get("id")
        if pu_id is None:
            raise PDLParseError(f"<{local}> element lacks an id attribute", element=local)
        quantity = self._int_attr(element, "quantity", default=1)
        pu = cls(pu_id, quantity=quantity, name=element.get("name"))

        for child in element:
            child_local = self._local(child.tag)
            if child_local == "PUDescriptor":
                self._fill_descriptor(pu.descriptor, child, nsmap)
            elif child_local == "MemoryRegion":
                pu.add_memory_region(self._parse_memory_region(child, nsmap))
            elif child_local == "Interconnect":
                pu.add_interconnect(self._parse_interconnect(child, nsmap))
            elif child_local == "LogicGroupAttribute":
                group = (child.text or "").strip() or child.get("name", "").strip()
                if not group:
                    raise PDLParseError(
                        "empty LogicGroupAttribute", element=child_local
                    )
                pu.add_group(group)
            elif child_local in _PU_CLASSES:
                sub = self._parse_pu(child, ProcessingUnit, nsmap)
                try:
                    pu.add_child(sub)
                except Exception as exc:
                    raise PDLParseError(str(exc), element=child_local) from exc
            else:
                raise PDLParseError(
                    f"unexpected element <{child_local}> inside <{local}>",
                    element=child_local,
                )
        return pu

    def _parse_memory_region(
        self, element: ET.Element, nsmap: NamespaceMap
    ) -> MemoryRegion:
        region = MemoryRegion(element.get("id"))
        descriptor_el = self._child(element, "MRDescriptor")
        if descriptor_el is not None:
            self._fill_descriptor(region.descriptor, descriptor_el, nsmap)
        return region

    def _parse_interconnect(
        self, element: ET.Element, nsmap: NamespaceMap
    ) -> Interconnect:
        from_pu = element.get("from")
        to_pu = element.get("to")
        if from_pu is None or to_pu is None:
            raise PDLParseError(
                "Interconnect requires from and to attributes", element="Interconnect"
            )
        bidirectional = element.get("bidirectional", "true").strip().lower() != "false"
        ic = Interconnect(
            from_pu,
            to_pu,
            type=element.get("type", ""),
            scheme=element.get("scheme", ""),
            id=element.get("id"),
            bidirectional=bidirectional,
        )
        descriptor_el = self._child(element, "ICDescriptor")
        if descriptor_el is not None:
            self._fill_descriptor(ic.descriptor, descriptor_el, nsmap)
        return ic

    def _fill_descriptor(
        self, descriptor: Descriptor, element: ET.Element, nsmap: NamespaceMap
    ) -> None:
        for child in element:
            if self._local(child.tag) != "Property":
                raise PDLParseError(
                    f"descriptor may only contain Property elements,"
                    f" got <{self._local(child.tag)}>",
                    element=descriptor.xml_tag,
                )
            descriptor.add(self._parse_property(child, nsmap))

    def _parse_property(self, element: ET.Element, nsmap: NamespaceMap) -> Property:
        fixed = element.get("fixed", "true").strip().lower() != "false"
        type_name = self._resolve_xsi_type(element, nsmap)

        name_el = value_el = None
        for child in element:
            local = self._local(child.tag)
            if local == "name":
                name_el = child
            elif local == "value":
                value_el = child
        if name_el is None or name_el.text is None or not name_el.text.strip():
            raise PDLParseError("Property lacks a name element", element="Property")
        if value_el is None:
            raise PDLParseError("Property lacks a value element", element="Property")

        value = PropertyValue(
            (value_el.text or "").strip(), unit=value_el.get("unit")
        )
        prop = Property(
            name_el.text.strip(), value, fixed=fixed, type_name=type_name
        )
        self.registry.check_property(prop, strict=self.strict_schema)
        return prop

    def _resolve_xsi_type(
        self, element: ET.Element, nsmap: NamespaceMap
    ) -> Optional[str]:
        raw = element.get(f"{{{XSI_NS}}}type") or element.get("xsi:type")
        if raw is None:
            return None
        raw = raw.strip()
        if ":" not in raw:
            return raw
        prefix, local = raw.split(":", 1)
        uri = nsmap.uri(prefix)
        if uri is not None:
            canonical = DEFAULT_NAMESPACES.prefix(uri)
            if canonical is not None:
                return f"{canonical}:{local}"
        # fall back to the document's own prefix (may match a registered one)
        return raw

    @staticmethod
    def _int_attr(element: ET.Element, name: str, *, default: int) -> int:
        raw = element.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise PDLParseError(
                f"attribute {name}={raw!r} is not an integer",
                element=split_clark(element.tag)[1],
            ) from exc
