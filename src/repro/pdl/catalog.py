"""Catalog of PDL descriptors shipped with the library.

The paper envisions that "base descriptors for common platforms may be
provided a priori"; this module is that a-priori collection.  Descriptors
are stored as XML under ``repro/pdl/data`` and loaded on demand.

Parsing is cached: documents are content-addressed by the sha256 digest
of their text (:func:`content_digest`) and parsed at most once per
distinct content.  The cache keeps a pristine master copy of each parsed
:class:`~repro.model.platform.Platform` and hands out
:meth:`~repro.model.platform.Platform.copy` clones, so callers may mutate
the result freely — exactly the semantics ``load_platform`` always had,
minus the repeated XML parse.  The registry service
(:mod:`repro.service.store`) shares this cache for its own hot path.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from importlib import resources
from typing import NamedTuple, Union

from repro.errors import PDLError
from repro.model.platform import Platform
from repro.obs import spans as _obs
from repro.pdl.parser import parse_pdl

__all__ = [
    "available_platforms",
    "load_platform",
    "platform_path",
    "content_digest",
    "parse_cached",
    "parse_cache_info",
    "clear_parse_cache",
]

_DATA_PACKAGE = "repro.pdl"
_DATA_DIR = "data"

#: maximum number of distinct parsed documents kept as master copies
_PARSE_CACHE_LIMIT = 64

_parse_lock = threading.Lock()
_parse_cache: "OrderedDict[tuple, Platform]" = OrderedDict()
_parse_hits = 0
_parse_misses = 0


def content_digest(text: Union[str, bytes]) -> str:
    """sha256 hex digest of a document's content (its immutable identity)."""
    if isinstance(text, str):
        text = text.encode("utf-8")
    return hashlib.sha256(text).hexdigest()


class ParseCacheInfo(NamedTuple):
    hits: int
    misses: int
    size: int
    limit: int


def parse_cache_info() -> ParseCacheInfo:
    """Counters of the module-level parsed-descriptor cache."""
    with _parse_lock:
        return ParseCacheInfo(
            _parse_hits, _parse_misses, len(_parse_cache), _PARSE_CACHE_LIMIT
        )


def clear_parse_cache() -> None:
    """Drop all cached parsed descriptors and reset the counters."""
    global _parse_hits, _parse_misses
    with _parse_lock:
        _parse_cache.clear()
        _parse_hits = 0
        _parse_misses = 0


def parse_cached(
    text: Union[str, bytes],
    *,
    validate: bool = True,
    strict_schema: bool = False,
    name: str | None = None,
    digest: str | None = None,
    **kwargs,
) -> Platform:
    """Parse a PDL document through the content-digest cache.

    Returns an independent :meth:`~repro.model.platform.Platform.copy` of
    the cached master, so mutating the result never corrupts the cache.
    ``digest`` may be passed when the caller already knows the content
    digest (the registry store does).  Extra keyword arguments (e.g. a
    custom schema registry) bypass the cache, since they change the parse
    result in ways the key does not capture.
    """
    global _parse_hits, _parse_misses
    if kwargs:
        return parse_pdl(
            text, validate=validate, strict_schema=strict_schema, name=name, **kwargs
        )
    key = (digest or content_digest(text), name, validate, strict_schema)
    tracer = _obs.get_tracer()
    with _parse_lock:
        master = _parse_cache.get(key)
        if master is not None:
            _parse_cache.move_to_end(key)
            _parse_hits += 1
    if master is not None:
        if tracer is not None:
            tracer.metrics.counter("pdl.parse_cache.hit").inc()
        return master.copy()
    if tracer is not None:
        tracer.metrics.counter("pdl.parse_cache.miss").inc()
    parsed = parse_pdl(text, validate=validate, strict_schema=strict_schema, name=name)
    with _parse_lock:
        _parse_misses += 1
        _parse_cache[key] = parsed.copy()
        _parse_cache.move_to_end(key)
        while len(_parse_cache) > _PARSE_CACHE_LIMIT:
            _parse_cache.popitem(last=False)
    return parsed


def _data_root():
    return resources.files(_DATA_PACKAGE).joinpath(_DATA_DIR)


def available_platforms() -> list[str]:
    """Names of all shipped platform descriptors (without extension)."""
    root = _data_root()
    names = []
    for entry in root.iterdir():
        if entry.name.endswith(".xml"):
            names.append(entry.name[: -len(".xml")])
    return sorted(names)


def platform_path(name: str) -> str:
    """Filesystem path of a shipped descriptor (for tooling/CLI use)."""
    entry = _data_root().joinpath(f"{name}.xml")
    path = str(entry)
    if not os.path.exists(path):
        raise PDLError(
            f"no shipped platform {name!r}; available: {available_platforms()}"
        )
    return path


def load_platform(name: str, *, validate: bool = True, **kwargs) -> Platform:
    """Parse a shipped descriptor by name.

    >>> load_platform("xeon_x5550_2gpu").total_pu_count()
    11
    """
    entry = _data_root().joinpath(f"{name}.xml")
    try:
        text = entry.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise PDLError(
            f"no shipped platform {name!r}; available: {available_platforms()}"
        ) from None
    return parse_cached(text, validate=validate, name=name, **kwargs)
