"""Catalog of PDL descriptors shipped with the library.

The paper envisions that "base descriptors for common platforms may be
provided a priori"; this module is that a-priori collection.  Descriptors
are stored as XML under ``repro/pdl/data`` and loaded on demand.
"""

from __future__ import annotations

import os
from importlib import resources

from repro.errors import PDLError
from repro.model.platform import Platform
from repro.pdl.parser import parse_pdl

__all__ = ["available_platforms", "load_platform", "platform_path"]

_DATA_PACKAGE = "repro.pdl"
_DATA_DIR = "data"


def _data_root():
    return resources.files(_DATA_PACKAGE).joinpath(_DATA_DIR)


def available_platforms() -> list[str]:
    """Names of all shipped platform descriptors (without extension)."""
    root = _data_root()
    names = []
    for entry in root.iterdir():
        if entry.name.endswith(".xml"):
            names.append(entry.name[: -len(".xml")])
    return sorted(names)


def platform_path(name: str) -> str:
    """Filesystem path of a shipped descriptor (for tooling/CLI use)."""
    entry = _data_root().joinpath(f"{name}.xml")
    path = str(entry)
    if not os.path.exists(path):
        raise PDLError(
            f"no shipped platform {name!r}; available: {available_platforms()}"
        )
    return path


def load_platform(name: str, *, validate: bool = True, **kwargs) -> Platform:
    """Parse a shipped descriptor by name.

    >>> load_platform("xeon_x5550_2gpu").total_pu_count()
    11
    """
    entry = _data_root().joinpath(f"{name}.xml")
    try:
        text = entry.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise PDLError(
            f"no shipped platform {name!r}; available: {available_platforms()}"
        ) from None
    return parse_pdl(text, validate=validate, name=name, **kwargs)
