"""Nvidia CUDA device-property subschema (``cuda:``).

Covers the ``cudaDeviceProp`` fields the Cascabel toolchain and the
performance models consume.  The paper's Fig. 4 flow selects CUBLAS task
variants for CUDA-capable workers; compile plans use ``nvcc``.
"""

from __future__ import annotations

from repro.pdl.namespaces import WELL_KNOWN
from repro.pdl.schema import PropertyNameDef, Subschema, ValueKind

__all__ = ["CUDA_SUBSCHEMA", "CUDA_DEVICE_PROPERTY_TYPE"]

CUDA_SUBSCHEMA = Subschema(
    prefix="cuda",
    uri=WELL_KNOWN["cuda"],
    version="3.2",  # tracks the CUDA toolkit version used in the paper
    doc="Device properties gathered from the CUDA runtime (cudaDeviceProp).",
)

CUDA_DEVICE_PROPERTY_TYPE = CUDA_SUBSCHEMA.define_type(
    "cudaDevicePropertyType",
    base=None,  # closed type: only the declared names are admissible
    names=[
        PropertyNameDef("NAME", ValueKind.STRING),
        PropertyNameDef("COMPUTE_CAPABILITY", ValueKind.STRING),
        PropertyNameDef("MULTIPROCESSOR_COUNT", ValueKind.INT),
        PropertyNameDef("CLOCK_RATE", ValueKind.QUANTITY),
        PropertyNameDef("TOTAL_GLOBAL_MEM", ValueKind.QUANTITY),
        PropertyNameDef("SHARED_MEM_PER_BLOCK", ValueKind.QUANTITY),
        PropertyNameDef("WARP_SIZE", ValueKind.INT),
        PropertyNameDef("MAX_THREADS_PER_BLOCK", ValueKind.INT),
        PropertyNameDef("MEMORY_BUS_WIDTH", ValueKind.INT),
        PropertyNameDef("ECC_ENABLED", ValueKind.BOOL),
        PropertyNameDef("PCI_BUS_ID", ValueKind.INT),
    ],
    doc="One cudaDeviceProp field per property.",
)
