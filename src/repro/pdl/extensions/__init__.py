"""Predefined PDL subschemas shipped with the library.

Each module defines one :class:`~repro.pdl.schema.Subschema` mirroring a
real-world platform layer the paper mentions: OpenCL device queries
(Listing 2), Nvidia CUDA, hwloc topology discovery, and the IBM Cell B.E.
"""

from repro.pdl.extensions.cell import CELL_SUBSCHEMA
from repro.pdl.extensions.cuda import CUDA_SUBSCHEMA
from repro.pdl.extensions.hwloc import HWLOC_SUBSCHEMA
from repro.pdl.extensions.opencl import OPENCL_SUBSCHEMA

__all__ = [
    "OPENCL_SUBSCHEMA",
    "CUDA_SUBSCHEMA",
    "HWLOC_SUBSCHEMA",
    "CELL_SUBSCHEMA",
    "register_all",
]


def register_all(registry) -> None:
    """Register every shipped subschema with ``registry`` (idempotent)."""
    for subschema in (
        OPENCL_SUBSCHEMA,
        CUDA_SUBSCHEMA,
        HWLOC_SUBSCHEMA,
        CELL_SUBSCHEMA,
    ):
        registry.register(subschema)
