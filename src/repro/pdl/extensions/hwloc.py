"""hwloc topology subschema (``hwloc:``).

The paper (§V) positions hwloc as a complementary source for automatically
generating PDL descriptors; :mod:`repro.discovery.hwloc_sim` emits
properties of this type for CPU packages, caches and NUMA nodes.
"""

from __future__ import annotations

from repro.pdl.namespaces import WELL_KNOWN
from repro.pdl.schema import PropertyNameDef, Subschema, ValueKind

__all__ = ["HWLOC_SUBSCHEMA", "HWLOC_OBJ_PROPERTY_TYPE"]

HWLOC_SUBSCHEMA = Subschema(
    prefix="hwloc",
    uri=WELL_KNOWN["hwloc"],
    version="1.0",
    doc="Hardware locality information (packages, caches, NUMA).",
)

HWLOC_OBJ_PROPERTY_TYPE = HWLOC_SUBSCHEMA.define_type(
    "hwlocObjPropertyType",
    base=None,  # closed type: only the declared names are admissible
    names=[
        PropertyNameDef(
            "OBJ_TYPE",
            ValueKind.STRING,
            enum=("Machine", "NUMANode", "Package", "L3Cache", "L2Cache",
                  "L1Cache", "Core", "PU"),
        ),
        PropertyNameDef("LOGICAL_INDEX", ValueKind.INT),
        PropertyNameDef("OS_INDEX", ValueKind.INT),
        PropertyNameDef("CACHE_SIZE", ValueKind.QUANTITY),
        PropertyNameDef("CACHE_LINE_SIZE", ValueKind.QUANTITY),
        PropertyNameDef("LOCAL_MEMORY", ValueKind.QUANTITY),
        PropertyNameDef("CPU_MODEL", ValueKind.STRING),
        PropertyNameDef("CPUSET", ValueKind.STRING),
        PropertyNameDef("NUMA_NODE", ValueKind.INT),
    ],
    doc="One hwloc topology object attribute per property.",
)
