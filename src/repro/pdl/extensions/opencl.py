"""OpenCL device-property subschema (``ocl:``).

Mirrors Listing 2 of the paper: properties generated from OpenCL runtime
queries carry ``xsi:type="ocl:oclDevicePropertyType"`` and use names taken
from the ``CL_DEVICE_*`` info enumeration (with the ``CL_DEVICE_`` prefix
stripped, as in the paper's listing).
"""

from __future__ import annotations

from repro.pdl.namespaces import WELL_KNOWN
from repro.pdl.schema import PropertyNameDef, Subschema, ValueKind

__all__ = ["OPENCL_SUBSCHEMA", "OCL_DEVICE_PROPERTY_TYPE"]

OPENCL_SUBSCHEMA = Subschema(
    prefix="ocl",
    uri=WELL_KNOWN["ocl"],
    version="1.1",  # tracks the OpenCL 1.1 spec the paper cites
    doc="Device properties gathered from OpenCL runtime queries.",
)

OCL_DEVICE_PROPERTY_TYPE = OPENCL_SUBSCHEMA.define_type(
    "oclDevicePropertyType",
    base=None,  # closed type: only the declared names are admissible
    names=[
        PropertyNameDef("DEVICE_NAME", ValueKind.STRING, doc="CL_DEVICE_NAME"),
        PropertyNameDef("DEVICE_VENDOR", ValueKind.STRING),
        PropertyNameDef("DEVICE_VERSION", ValueKind.STRING),
        PropertyNameDef("DRIVER_VERSION", ValueKind.STRING),
        PropertyNameDef(
            "DEVICE_TYPE",
            ValueKind.STRING,
            enum=("CPU", "GPU", "ACCELERATOR", "CUSTOM", "DEFAULT"),
        ),
        PropertyNameDef("MAX_COMPUTE_UNITS", ValueKind.INT),
        PropertyNameDef("MAX_WORK_ITEM_DIMENSIONS", ValueKind.INT),
        PropertyNameDef("MAX_WORK_GROUP_SIZE", ValueKind.INT),
        PropertyNameDef("MAX_CLOCK_FREQUENCY", ValueKind.QUANTITY),
        PropertyNameDef("GLOBAL_MEM_SIZE", ValueKind.QUANTITY),
        PropertyNameDef("LOCAL_MEM_SIZE", ValueKind.QUANTITY),
        PropertyNameDef("MAX_MEM_ALLOC_SIZE", ValueKind.QUANTITY),
        PropertyNameDef("GLOBAL_MEM_CACHE_SIZE", ValueKind.QUANTITY),
        PropertyNameDef("GLOBAL_MEM_CACHELINE_SIZE", ValueKind.QUANTITY),
        PropertyNameDef("DOUBLE_FP_CONFIG", ValueKind.STRING),
        PropertyNameDef("EXTENSIONS", ValueKind.STRING),
        PropertyNameDef("AVAILABLE", ValueKind.BOOL),
    ],
    doc="One CL_DEVICE_* query result (CL_DEVICE_ prefix stripped).",
)

#: OpenCL platform-level (``clGetPlatformInfo``) properties.
OCL_PLATFORM_PROPERTY_TYPE = OPENCL_SUBSCHEMA.define_type(
    "oclPlatformPropertyType",
    base=None,  # closed type: only the declared names are admissible
    names=[
        PropertyNameDef("PLATFORM_NAME", ValueKind.STRING),
        PropertyNameDef("PLATFORM_VENDOR", ValueKind.STRING),
        PropertyNameDef("PLATFORM_VERSION", ValueKind.STRING),
        PropertyNameDef("PLATFORM_PROFILE", ValueKind.STRING),
    ],
    doc="One CL_PLATFORM_* query result.",
)
