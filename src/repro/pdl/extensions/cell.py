"""IBM Cell B.E. subschema (``cell:``).

The Cell is the paper's motivating hierarchical architecture (PPE as
Master/Hybrid controlling SPE Workers); compile plans use ``gcc-spu`` /
``xlc``.  This subschema carries SPE-specific attributes.
"""

from __future__ import annotations

from repro.pdl.namespaces import WELL_KNOWN
from repro.pdl.schema import PropertyNameDef, Subschema, ValueKind

__all__ = ["CELL_SUBSCHEMA", "CELL_SPE_PROPERTY_TYPE"]

CELL_SUBSCHEMA = Subschema(
    prefix="cell",
    uri=WELL_KNOWN["cell"],
    version="1.0",
    doc="IBM Cell Broadband Engine attributes (PPE/SPE).",
)

CELL_SPE_PROPERTY_TYPE = CELL_SUBSCHEMA.define_type(
    "cellSpePropertyType",
    base=None,  # closed type: only the declared names are admissible
    names=[
        PropertyNameDef("LOCAL_STORE_SIZE", ValueKind.QUANTITY),
        PropertyNameDef("DMA_QUEUE_DEPTH", ValueKind.INT),
        PropertyNameDef("EIB_BANDWIDTH", ValueKind.QUANTITY),
        PropertyNameDef("ISOLATION_MODE", ValueKind.BOOL),
        PropertyNameDef("SPU_FREQUENCY", ValueKind.QUANTITY),
    ],
    doc="Synergistic Processing Element attributes.",
)

CELL_PPE_PROPERTY_TYPE = CELL_SUBSCHEMA.define_type(
    "cellPpePropertyType",
    base=None,  # closed type: only the declared names are admissible
    names=[
        PropertyNameDef("SMT_THREADS", ValueKind.INT),
        PropertyNameDef("PPU_FREQUENCY", ValueKind.QUANTITY),
        PropertyNameDef("VMX_AVAILABLE", ValueKind.BOOL),
    ],
    doc="Power Processing Element attributes.",
)
