"""XML Schema Definition emission (paper §III-B).

"Starting from the hierarchical machine model, we derive an XML Schema
Definition (XSD) capable of being extended with entity descriptors for
current and future heterogeneous architectures."

This module emits that XSD: the *base schema* describes the structural
entities (Platform, Master/Hybrid/Worker, descriptors, the generic
Property type), and one *extension schema* per registered subschema
derives its property type from the base via ``xs:extension`` — the
standard schema-inheritance / entity-polymorphism mechanism the paper
names.  Documents written by :mod:`repro.pdl.writer` are valid against
these schemas by construction; emission makes the contract explicit and
publishable (a vendor can ship its subschema XSD alongside its devices).
"""

from __future__ import annotations

from typing import Optional

from repro.pdl.namespaces import PDL_NS
from repro.pdl.schema import (
    SchemaRegistry,
    Subschema,
    ValueKind,
    default_registry,
)

__all__ = ["emit_base_xsd", "emit_subschema_xsd", "emit_all_xsd"]

_XS = "http://www.w3.org/2001/XMLSchema"

_VALUE_KIND_TO_XSD = {
    ValueKind.STRING: "xs:string",
    ValueKind.INT: "xs:integer",
    ValueKind.FLOAT: "xs:double",
    ValueKind.BOOL: "xs:boolean",
    ValueKind.QUANTITY: "xs:string",  # magnitude text + unit attribute
}


def emit_base_xsd() -> str:
    """The core PDL schema: structural entities + the generic Property."""
    return f"""\
<?xml version="1.0" encoding="UTF-8"?>
<xs:schema xmlns:xs="{_XS}"
           xmlns:pdl="{PDL_NS}"
           targetNamespace="{PDL_NS}"
           elementFormDefault="qualified"
           version="1.0">

  <!-- ===== value and property primitives (Fig. 3) ===== -->
  <xs:complexType name="ValueType">
    <xs:simpleContent>
      <xs:extension base="xs:string">
        <xs:attribute name="unit" type="xs:string" use="optional"/>
      </xs:extension>
    </xs:simpleContent>
  </xs:complexType>

  <!-- The generic, open Property type; subschemas derive from it via
       xs:extension (entity polymorphism through xsi:type). -->
  <xs:complexType name="PropertyType">
    <xs:sequence>
      <xs:element name="name" type="xs:string"/>
      <xs:element name="value" type="pdl:ValueType"/>
    </xs:sequence>
    <xs:attribute name="fixed" type="xs:boolean" default="true"/>
  </xs:complexType>

  <!-- ===== descriptors ===== -->
  <xs:complexType name="DescriptorType">
    <xs:sequence>
      <xs:element name="Property" type="pdl:PropertyType"
                  minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence>
  </xs:complexType>

  <!-- ===== communication entities ===== -->
  <xs:complexType name="MemoryRegionType">
    <xs:sequence>
      <xs:element name="MRDescriptor" type="pdl:DescriptorType"
                  minOccurs="0"/>
    </xs:sequence>
    <xs:attribute name="id" type="xs:ID" use="required"/>
  </xs:complexType>

  <xs:complexType name="InterconnectType">
    <xs:sequence>
      <xs:element name="ICDescriptor" type="pdl:DescriptorType"
                  minOccurs="0"/>
    </xs:sequence>
    <xs:attribute name="id" type="xs:ID" use="optional"/>
    <xs:attribute name="type" type="xs:string" use="optional"/>
    <xs:attribute name="from" type="xs:IDREF" use="required"/>
    <xs:attribute name="to" type="xs:IDREF" use="required"/>
    <xs:attribute name="scheme" type="xs:string" use="optional"/>
    <xs:attribute name="bidirectional" type="xs:boolean" default="true"/>
  </xs:complexType>

  <!-- ===== processing units (section III-A) =====
       Workers are leaves; Hybrids are inner nodes controlling Workers
       and Hybrids; Masters exist only at the highest level.  The
       control-relationship rules beyond containment (e.g. Hybrids must
       control at least one PU) are enforced by the structural
       validator. -->
  <xs:complexType name="WorkerType">
    <xs:sequence>
      <xs:element name="PUDescriptor" type="pdl:DescriptorType"
                  minOccurs="0"/>
      <xs:element name="LogicGroupAttribute" type="xs:string"
                  minOccurs="0" maxOccurs="unbounded"/>
      <xs:element name="MemoryRegion" type="pdl:MemoryRegionType"
                  minOccurs="0" maxOccurs="unbounded"/>
      <xs:element name="Interconnect" type="pdl:InterconnectType"
                  minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence>
    <xs:attribute name="id" type="xs:ID" use="required"/>
    <xs:attribute name="quantity" type="xs:positiveInteger" default="1"/>
    <xs:attribute name="name" type="xs:string" use="optional"/>
  </xs:complexType>

  <xs:complexType name="HybridType">
    <xs:sequence>
      <xs:element name="PUDescriptor" type="pdl:DescriptorType"
                  minOccurs="0"/>
      <xs:element name="LogicGroupAttribute" type="xs:string"
                  minOccurs="0" maxOccurs="unbounded"/>
      <xs:element name="MemoryRegion" type="pdl:MemoryRegionType"
                  minOccurs="0" maxOccurs="unbounded"/>
      <xs:choice minOccurs="0" maxOccurs="unbounded">
        <xs:element name="Worker" type="pdl:WorkerType"/>
        <xs:element name="Hybrid" type="pdl:HybridType"/>
      </xs:choice>
      <xs:element name="Interconnect" type="pdl:InterconnectType"
                  minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence>
    <xs:attribute name="id" type="xs:ID" use="required"/>
    <xs:attribute name="quantity" type="xs:positiveInteger" default="1"/>
    <xs:attribute name="name" type="xs:string" use="optional"/>
  </xs:complexType>

  <xs:complexType name="MasterType">
    <xs:sequence>
      <xs:element name="PUDescriptor" type="pdl:DescriptorType"
                  minOccurs="0"/>
      <xs:element name="LogicGroupAttribute" type="xs:string"
                  minOccurs="0" maxOccurs="unbounded"/>
      <xs:element name="MemoryRegion" type="pdl:MemoryRegionType"
                  minOccurs="0" maxOccurs="unbounded"/>
      <xs:choice minOccurs="0" maxOccurs="unbounded">
        <xs:element name="Worker" type="pdl:WorkerType"/>
        <xs:element name="Hybrid" type="pdl:HybridType"/>
      </xs:choice>
      <xs:element name="Interconnect" type="pdl:InterconnectType"
                  minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence>
    <xs:attribute name="id" type="xs:ID" use="required"/>
    <xs:attribute name="quantity" type="xs:positiveInteger" default="1"/>
    <xs:attribute name="name" type="xs:string" use="optional"/>
  </xs:complexType>

  <!-- ===== document roots ===== -->
  <xs:complexType name="PlatformType">
    <xs:sequence>
      <xs:element name="Master" type="pdl:MasterType"
                  minOccurs="1" maxOccurs="unbounded"/>
    </xs:sequence>
    <xs:attribute name="name" type="xs:string" use="optional"/>
    <xs:attribute name="schemaVersion" type="xs:string" default="1.0"/>
  </xs:complexType>

  <xs:element name="Platform" type="pdl:PlatformType"/>
  <xs:element name="Master" type="pdl:MasterType"/>
</xs:schema>
"""


def emit_subschema_xsd(subschema: Subschema) -> str:
    """One extension schema deriving property types via ``xs:extension``.

    Constrained names are documented as ``xs:annotation`` entries and an
    enumeration facet for the name element where the type is closed; the
    value kinds are expressed through derived value types.
    """
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<xs:schema xmlns:xs="{_XS}"',
        f'           xmlns:pdl="{PDL_NS}"',
        f'           xmlns:{subschema.prefix}="{subschema.uri}"',
        f'           targetNamespace="{subschema.uri}"',
        '           elementFormDefault="qualified"',
        f'           version="{subschema.version}">',
        "",
        f'  <xs:import namespace="{PDL_NS}" schemaLocation="pdl-base.xsd"/>',
        "",
    ]
    if subschema.doc:
        lines += [
            "  <xs:annotation>",
            f"    <xs:documentation>{subschema.doc}</xs:documentation>",
            "  </xs:annotation>",
            "",
        ]
    for qname, type_def in sorted(subschema.types.items()):
        local = qname.split(":", 1)[1]
        lines.append(f'  <!-- {type_def.doc or local} -->')
        lines.append(f'  <xs:complexType name="{local}">')
        lines.append("    <xs:complexContent>")
        lines.append('      <xs:extension base="pdl:PropertyType">')
        names = type_def.all_names()
        if names and not type_def.admits_any_name():
            lines.append("        <xs:annotation>")
            lines.append("          <xs:documentation>admissible names:")
            for name, name_def in sorted(names.items()):
                kind = _VALUE_KIND_TO_XSD[name_def.kind]
                enum = (
                    f" enum={{{','.join(name_def.enum)}}}" if name_def.enum else ""
                )
                lines.append(f"            {name} ({kind}{enum})")
            lines.append("          </xs:documentation>")
            lines.append("        </xs:annotation>")
        lines.append("      </xs:extension>")
        lines.append("    </xs:complexContent>")
        lines.append("  </xs:complexType>")
        lines.append("")
    lines.append("</xs:schema>")
    return "\n".join(lines) + "\n"


def emit_all_xsd(registry: Optional[SchemaRegistry] = None) -> dict[str, str]:
    """All schema documents: ``pdl-base.xsd`` plus one file per subschema."""
    registry = registry if registry is not None else default_registry()
    out = {"pdl-base.xsd": emit_base_xsd()}
    for subschema in registry.subschemas():
        out[f"pdl-ext-{subschema.prefix}.xsd"] = emit_subschema_xsd(subschema)
    return out
