"""Structural diff of two platform descriptions.

Tooling the paper's workflows imply but never spell out: comparing a
vendor-updated descriptor against the deployed one, or auditing what a
stream of dynamic events (:mod:`repro.dynamic`) did to a platform.  The
diff is structural (by PU id), not textual, so formatting changes are
invisible and semantic changes are precise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.model.entities import ProcessingUnit
from repro.model.platform import Platform

__all__ = ["ChangeKind", "Change", "PlatformDiff", "diff_platforms"]


class ChangeKind(str, Enum):
    PU_ADDED = "pu-added"
    PU_REMOVED = "pu-removed"
    PU_MOVED = "pu-moved"  # different controller
    PU_KIND_CHANGED = "pu-kind-changed"
    QUANTITY_CHANGED = "quantity-changed"
    PROPERTY_ADDED = "property-added"
    PROPERTY_REMOVED = "property-removed"
    PROPERTY_CHANGED = "property-changed"
    GROUP_ADDED = "group-added"
    GROUP_REMOVED = "group-removed"
    INTERCONNECT_ADDED = "interconnect-added"
    INTERCONNECT_REMOVED = "interconnect-removed"
    MEMORY_ADDED = "memory-added"
    MEMORY_REMOVED = "memory-removed"


@dataclass(frozen=True)
class Change:
    """One semantic difference."""

    kind: ChangeKind
    subject: str  # PU / interconnect / memory-region id
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.kind.value}] {self.subject}: {self.detail}".rstrip(": ")


@dataclass
class PlatformDiff:
    """All differences from ``old`` to ``new``."""

    old_name: str
    new_name: str
    changes: list[Change] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.changes

    def by_kind(self, kind: ChangeKind) -> list[Change]:
        return [c for c in self.changes if c.kind == kind]

    def for_subject(self, subject: str) -> list[Change]:
        return [c for c in self.changes if c.subject == subject]

    def summary(self) -> str:
        if self.identical:
            return f"{self.old_name} == {self.new_name} (no differences)"
        lines = [
            f"{len(self.changes)} difference(s)"
            f" from {self.old_name!r} to {self.new_name!r}:"
        ]
        lines.extend(f"  {change}" for change in self.changes)
        return "\n".join(lines)


def _prop_map(pu: ProcessingUnit) -> dict:
    return {
        (p.name, p.type_name): (p.value.text, p.value.unit, p.fixed)
        for p in pu.descriptor
    }


def diff_platforms(old: Platform, new: Platform) -> PlatformDiff:
    """Compute the structural diff from ``old`` to ``new`` (keyed by id)."""
    diff = PlatformDiff(old_name=old.name, new_name=new.name)
    old_pus = {pu.id: pu for pu in old.walk()}
    new_pus = {pu.id: pu for pu in new.walk()}

    for pu_id in sorted(old_pus.keys() - new_pus.keys()):
        diff.changes.append(Change(ChangeKind.PU_REMOVED, pu_id))
    for pu_id in sorted(new_pus.keys() - old_pus.keys()):
        pu = new_pus[pu_id]
        diff.changes.append(
            Change(ChangeKind.PU_ADDED, pu_id, f"{pu.kind}, qty {pu.quantity}")
        )

    for pu_id in sorted(old_pus.keys() & new_pus.keys()):
        a, b = old_pus[pu_id], new_pus[pu_id]
        if a.kind != b.kind:
            diff.changes.append(
                Change(ChangeKind.PU_KIND_CHANGED, pu_id, f"{a.kind} -> {b.kind}")
            )
        parent_a = a.parent.id if a.parent else None
        parent_b = b.parent.id if b.parent else None
        if parent_a != parent_b:
            diff.changes.append(
                Change(ChangeKind.PU_MOVED, pu_id, f"{parent_a} -> {parent_b}")
            )
        if a.quantity != b.quantity:
            diff.changes.append(
                Change(
                    ChangeKind.QUANTITY_CHANGED,
                    pu_id,
                    f"{a.quantity} -> {b.quantity}",
                )
            )
        # properties
        props_a, props_b = _prop_map(a), _prop_map(b)
        for key in sorted(props_a.keys() - props_b.keys()):
            diff.changes.append(
                Change(ChangeKind.PROPERTY_REMOVED, pu_id, key[0])
            )
        for key in sorted(props_b.keys() - props_a.keys()):
            diff.changes.append(
                Change(
                    ChangeKind.PROPERTY_ADDED,
                    pu_id,
                    f"{key[0]} = {props_b[key][0]}",
                )
            )
        for key in sorted(props_a.keys() & props_b.keys()):
            if props_a[key] != props_b[key]:
                diff.changes.append(
                    Change(
                        ChangeKind.PROPERTY_CHANGED,
                        pu_id,
                        f"{key[0]}: {props_a[key][0]} -> {props_b[key][0]}",
                    )
                )
        # groups
        for group in sorted(set(a.groups) - set(b.groups)):
            diff.changes.append(Change(ChangeKind.GROUP_REMOVED, pu_id, group))
        for group in sorted(set(b.groups) - set(a.groups)):
            diff.changes.append(Change(ChangeKind.GROUP_ADDED, pu_id, group))

    # interconnects and memory regions, keyed by id
    old_ics = {ic.id: ic for ic in old.interconnects()}
    new_ics = {ic.id: ic for ic in new.interconnects()}
    for ic_id in sorted(old_ics.keys() - new_ics.keys()):
        diff.changes.append(Change(ChangeKind.INTERCONNECT_REMOVED, ic_id))
    for ic_id in sorted(new_ics.keys() - old_ics.keys()):
        ic = new_ics[ic_id]
        diff.changes.append(
            Change(
                ChangeKind.INTERCONNECT_ADDED,
                ic_id,
                f"{ic.from_pu}->{ic.to_pu} ({ic.type})",
            )
        )

    old_mrs = {mr.id for mr in old.memory_regions()}
    new_mrs = {mr.id for mr in new.memory_regions()}
    for mr_id in sorted(old_mrs - new_mrs):
        diff.changes.append(Change(ChangeKind.MEMORY_REMOVED, mr_id))
    for mr_id in sorted(new_mrs - old_mrs):
        diff.changes.append(Change(ChangeKind.MEMORY_ADDED, mr_id))

    return diff
