"""Document-level PDL validation.

Combines the three conformance layers a PDL toolchain needs:

1. **Structural** rules of the machine model (§III-A) via
   :mod:`repro.model.validation`.
2. **Schema** conformance of every property against its (sub)schema via
   :class:`~repro.pdl.schema.SchemaRegistry`.
3. **Completeness** checks useful before handing a descriptor to a code
   generator: unresolved *unfixed* properties can be reported so a runtime
   knows which slots still need instantiation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PDLSchemaError, ValidationError
from repro.model.platform import Platform
from repro.model.validation import collect_violations
from repro.obs import spans as _obs
from repro.obs.digest import fingerprint_payload
from repro.pdl.schema import SchemaRegistry, default_registry

__all__ = ["ValidationReport", "validate_document", "PDLValidator"]


@dataclass
class ValidationReport:
    """Outcome of a full document validation."""

    structural: list[str] = field(default_factory=list)
    schema: list[str] = field(default_factory=list)
    unfixed: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no structural or schema violations exist.

        Unfixed properties are informational — they are legal (§III-B
        explicitly supports late instantiation) but relevant to tools.
        """
        return not self.structural and not self.schema

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise ValidationError(self.structural + self.schema)

    def to_payload(self) -> dict:
        """JSON-safe dict sharing the diagnostic shape of ``repro.analysis``.

        Structural violations map to VAL001, schema violations to VAL002
        (both errors); unresolved unfixed properties to VAL010 (note).
        """

        def entry(rule: str, severity: str, message: str) -> dict:
            return {"rule": rule, "severity": severity, "message": message}

        diagnostics = (
            [entry("VAL001", "error", m) for m in self.structural]
            + [entry("VAL002", "error", m) for m in self.schema]
            + [entry("VAL010", "note", m) for m in self.unfixed]
        )
        return {
            "ok": self.ok,
            "counts": {
                "error": len(self.structural) + len(self.schema),
                "warning": 0,
                "note": len(self.unfixed),
            },
            "diagnostics": diagnostics,
        }

    def fingerprint(self) -> str:
        """Stable sha256 over :meth:`to_payload` (shared convention of
        every report object; see :func:`repro.obs.fingerprint_payload`)."""
        return fingerprint_payload(self.to_payload())

    def summary(self) -> str:
        lines = [
            f"structural violations: {len(self.structural)}",
            f"schema violations:     {len(self.schema)}",
            f"unfixed properties:    {len(self.unfixed)}",
        ]
        for issue in self.structural + self.schema:
            lines.append(f"  - {issue}")
        return "\n".join(lines)


class PDLValidator:
    """Reusable validator bound to one schema registry."""

    def __init__(
        self,
        registry: Optional[SchemaRegistry] = None,
        *,
        strict_schema: bool = False,
    ):
        self.registry = registry if registry is not None else default_registry()
        self.strict_schema = strict_schema

    def validate(self, platform: Platform) -> ValidationReport:
        report = ValidationReport()
        report.structural = collect_violations(platform)
        for owner_kind, owner_id, descriptor in self._descriptors(platform):
            for prop in descriptor:
                try:
                    self.registry.check_property(prop, strict=self.strict_schema)
                except PDLSchemaError as exc:
                    report.schema.append(
                        f"{owner_kind} {owner_id!r}: {exc}"
                    )
                if not prop.fixed:
                    report.unfixed.append(
                        f"{owner_kind} {owner_id!r}: {prop.name}"
                    )
        return report

    @staticmethod
    def _descriptors(platform: Platform):
        for pu in platform.walk():
            yield pu.kind, pu.id, pu.descriptor
            for region in pu.memory_regions:
                yield "MemoryRegion", region.id, region.descriptor
            for ic in pu.interconnects:
                yield "Interconnect", ic.id, ic.descriptor


def validate_document(
    platform: Platform,
    *,
    registry: Optional[SchemaRegistry] = None,
    strict_schema: bool = False,
) -> ValidationReport:
    """One-shot full validation of a parsed platform."""
    validator = PDLValidator(registry, strict_schema=strict_schema)
    tracer = _obs.get_tracer()
    if tracer is None:
        return validator.validate(platform)
    with tracer.span("pdl.validate", platform=platform.name) as span_:
        report = validator.validate(platform)
        span_.set(
            ok=report.ok,
            structural=len(report.structural),
            schema=len(report.schema),
            unfixed=len(report.unfixed),
        )
        return report
