"""PDL document writer: :class:`~repro.model.platform.Platform` → XML text.

The writer emits namespaced documents with the library's canonical
prefixes, declaring exactly the namespaces the document uses.  Output is
deterministic (stable attribute order, two-space indentation) so documents
diff cleanly and round-trip through the parser losslessly.
"""

from __future__ import annotations

from typing import Optional
from xml.sax.saxutils import escape, quoteattr

from repro.model.entities import Interconnect, MemoryRegion, ProcessingUnit
from repro.model.platform import Platform
from repro.model.properties import Descriptor, Property
from repro.obs import spans as _obs
from repro.pdl.namespaces import DEFAULT_NAMESPACES, PDL_NS, XSI_NS

__all__ = ["write_pdl", "write_pdl_file", "PDLWriter"]


def write_pdl(
    platform: Platform,
    *,
    default_namespace: bool = True,
    xml_declaration: bool = True,
) -> str:
    """Serialize ``platform`` to PDL XML text."""
    writer = PDLWriter(
        default_namespace=default_namespace, xml_declaration=xml_declaration
    )
    tracer = _obs.get_tracer()
    if tracer is None:
        return writer.write(platform)
    with tracer.span("pdl.write", platform=platform.name) as span_:
        text = writer.write(platform)
        span_.set(nbytes=len(text))
        return text


def write_pdl_file(platform: Platform, path, **kwargs) -> None:
    """Serialize ``platform`` to a file."""
    text = write_pdl(platform, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


class PDLWriter:
    """Deterministic PDL serializer."""

    def __init__(self, *, default_namespace: bool = True, xml_declaration: bool = True):
        self.default_namespace = default_namespace
        self.xml_declaration = xml_declaration

    def write(self, platform: Platform) -> str:
        lines: list[str] = []
        if self.xml_declaration:
            lines.append('<?xml version="1.0" encoding="UTF-8"?>')

        used_prefixes = self._collect_prefixes(platform)
        ns_attrs = []
        if self.default_namespace:
            ns_attrs.append(f'xmlns="{PDL_NS}"')
        if used_prefixes:
            ns_attrs.append(f'xmlns:xsi="{XSI_NS}"')
        for prefix in sorted(used_prefixes):
            uri = DEFAULT_NAMESPACES.uri(prefix)
            if uri is not None:
                ns_attrs.append(f'xmlns:{prefix}="{uri}"')

        attrs = [
            f"name={quoteattr(platform.name)}",
            f"schemaVersion={quoteattr(platform.schema_version)}",
            *ns_attrs,
        ]
        lines.append(f"<Platform {' '.join(attrs)}>")
        for master in platform.masters:
            self._emit_pu(master, lines, indent=1)
        lines.append("</Platform>")
        return "\n".join(lines) + "\n"

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _collect_prefixes(platform: Platform) -> set[str]:
        """Namespace prefixes of all polymorphic property types in use."""
        prefixes: set[str] = set()

        def scan(descriptor: Descriptor) -> None:
            for prop in descriptor:
                if prop.namespace:
                    prefixes.add(prop.namespace)

        for pu in platform.walk():
            scan(pu.descriptor)
            for region in pu.memory_regions:
                scan(region.descriptor)
            for ic in pu.interconnects:
                scan(ic.descriptor)
        return prefixes

    def _emit_pu(self, pu: ProcessingUnit, lines: list[str], indent: int) -> None:
        pad = "  " * indent
        attrs = [f"id={quoteattr(pu.id)}", f"quantity={quoteattr(str(pu.quantity))}"]
        if pu.name:
            attrs.append(f"name={quoteattr(pu.name)}")
        lines.append(f"{pad}<{pu.xml_tag} {' '.join(attrs)}>")

        if len(pu.descriptor):
            self._emit_descriptor(pu.descriptor, lines, indent + 1)
        for group in pu.groups:
            lines.append(
                f"{pad}  <LogicGroupAttribute>{escape(group)}</LogicGroupAttribute>"
            )
        for region in pu.memory_regions:
            self._emit_memory_region(region, lines, indent + 1)
        for child in pu.children:
            self._emit_pu(child, lines, indent + 1)
        for ic in pu.interconnects:
            self._emit_interconnect(ic, lines, indent + 1)

        lines.append(f"{pad}</{pu.xml_tag}>")

    def _emit_memory_region(
        self, region: MemoryRegion, lines: list[str], indent: int
    ) -> None:
        pad = "  " * indent
        if len(region.descriptor):
            lines.append(f"{pad}<MemoryRegion id={quoteattr(region.id)}>")
            self._emit_descriptor(region.descriptor, lines, indent + 1)
            lines.append(f"{pad}</MemoryRegion>")
        else:
            lines.append(f"{pad}<MemoryRegion id={quoteattr(region.id)} />")

    def _emit_interconnect(
        self, ic: Interconnect, lines: list[str], indent: int
    ) -> None:
        pad = "  " * indent
        attrs = [
            f"id={quoteattr(ic.id)}",
            f"type={quoteattr(ic.type)}",
            f"from={quoteattr(ic.from_pu)}",
            f"to={quoteattr(ic.to_pu)}",
            f"scheme={quoteattr(ic.scheme)}",
        ]
        if not ic.bidirectional:
            attrs.append('bidirectional="false"')
        if len(ic.descriptor):
            lines.append(f"{pad}<Interconnect {' '.join(attrs)}>")
            self._emit_descriptor(ic.descriptor, lines, indent + 1)
            lines.append(f"{pad}</Interconnect>")
        else:
            lines.append(f"{pad}<Interconnect {' '.join(attrs)} />")

    def _emit_descriptor(
        self, descriptor: Descriptor, lines: list[str], indent: int
    ) -> None:
        pad = "  " * indent
        lines.append(f"{pad}<{descriptor.xml_tag}>")
        for prop in descriptor:
            self._emit_property(prop, lines, indent + 1)
        lines.append(f"{pad}</{descriptor.xml_tag}>")

    def _emit_property(self, prop: Property, lines: list[str], indent: int) -> None:
        pad = "  " * indent
        fixed = "true" if prop.fixed else "false"
        attrs = [f'fixed="{fixed}"']
        prefix: Optional[str] = None
        if prop.type_name:
            attrs.append(f"xsi:type={quoteattr(prop.type_name)}")
            prefix = prop.namespace
        name_tag = f"{prefix}:name" if prefix else "name"
        value_tag = f"{prefix}:value" if prefix else "value"
        unit = f" unit={quoteattr(prop.value.unit)}" if prop.value.unit else ""
        lines.append(f"{pad}<Property {' '.join(attrs)}>")
        lines.append(f"{pad}  <{name_tag}>{escape(prop.name)}</{name_tag}>")
        lines.append(
            f"{pad}  <{value_tag}{unit}>{escape(prop.value.text)}</{value_tag}>"
        )
        lines.append(f"{pad}</Property>")
