"""The XML-based Platform Description Language (paper §III-B).

Public surface: :func:`parse_pdl` / :func:`parse_pdl_file`,
:func:`write_pdl` / :func:`write_pdl_file`, document validation,
the schema registry with predefined subschemas, and the shipped
descriptor catalog.
"""

from repro.pdl.catalog import (
    available_platforms,
    clear_parse_cache,
    content_digest,
    load_platform,
    parse_cache_info,
    parse_cached,
    platform_path,
)
from repro.pdl.namespaces import DEFAULT_NAMESPACES, PDL_NS, XSI_NS, NamespaceMap
from repro.pdl.parser import PDLParser, parse_pdl, parse_pdl_file
from repro.pdl.schema import (
    BASE_PROPERTY_TYPE,
    PropertyNameDef,
    PropertyTypeDef,
    SchemaRegistry,
    Subschema,
    ValueKind,
    default_registry,
)
from repro.pdl.diff import Change, ChangeKind, PlatformDiff, diff_platforms
from repro.pdl.validator import PDLValidator, ValidationReport, validate_document
from repro.pdl.writer import PDLWriter, write_pdl, write_pdl_file
from repro.pdl.xsd import emit_all_xsd, emit_base_xsd, emit_subschema_xsd

__all__ = [
    "parse_pdl",
    "parse_pdl_file",
    "PDLParser",
    "write_pdl",
    "write_pdl_file",
    "PDLWriter",
    "validate_document",
    "PDLValidator",
    "ValidationReport",
    "SchemaRegistry",
    "Subschema",
    "PropertyTypeDef",
    "PropertyNameDef",
    "ValueKind",
    "BASE_PROPERTY_TYPE",
    "default_registry",
    "available_platforms",
    "load_platform",
    "platform_path",
    "content_digest",
    "parse_cached",
    "parse_cache_info",
    "clear_parse_cache",
    "NamespaceMap",
    "DEFAULT_NAMESPACES",
    "PDL_NS",
    "XSI_NS",
    "diff_platforms",
    "PlatformDiff",
    "Change",
    "ChangeKind",
    "emit_base_xsd",
    "emit_subschema_xsd",
    "emit_all_xsd",
]
