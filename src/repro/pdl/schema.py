"""PDL schema model: subschemas, versioning and property-type inheritance.

The paper (§III-B) derives an XML Schema Definition from the hierarchical
machine model and makes it extensible via *predefined Descriptor and
Property subschemas* that have "unique identification and versioning
support".  New subschemas for novel platforms can be contributed by
application programmers, tool developers or hardware vendors.

We model that design directly in Python (the stdlib has no XSD validator):

:class:`PropertyTypeDef`
    One polymorphic property type (e.g. ``ocl:oclDevicePropertyType``),
    optionally constraining the set of admissible property names and their
    value kinds, and optionally *inheriting* from another type def.

:class:`Subschema`
    A named, versioned collection of property types bound to one XML
    namespace.

:class:`SchemaRegistry`
    Lookup and conformance checking.  Parsing and validation consult a
    registry; unknown subschemas degrade to generic properties unless
    ``strict`` mode is requested (the extensibility requirement: a document
    using a vendor subschema we have never seen must still load).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.errors import PDLSchemaError
from repro.model.properties import Property

__all__ = [
    "ValueKind",
    "PropertyNameDef",
    "PropertyTypeDef",
    "Subschema",
    "SchemaRegistry",
    "default_registry",
    "BASE_PROPERTY_TYPE",
]


class ValueKind:
    """Admissible value kinds for schema-constrained properties."""

    STRING = "string"
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    QUANTITY = "quantity"  # numeric with optional unit

    ALL = (STRING, INT, FLOAT, BOOL, QUANTITY)

    _CHECKERS: dict[str, Callable[[Property], None]] = {}

    @classmethod
    def check(cls, kind: str, prop: Property) -> None:
        """Raise :class:`PDLSchemaError` when ``prop`` violates ``kind``."""
        try:
            if kind == cls.INT:
                prop.value.as_int()
            elif kind == cls.FLOAT:
                prop.value.as_float()
            elif kind == cls.BOOL:
                prop.value.as_bool()
            elif kind == cls.QUANTITY:
                prop.value.as_quantity()
            elif kind == cls.STRING:
                pass
            else:
                raise PDLSchemaError(f"unknown value kind {kind!r}")
        except PDLSchemaError:
            raise
        except Exception as exc:
            raise PDLSchemaError(
                f"property {prop.name!r}: value {prop.value.text!r}"
                f" is not a valid {kind}"
            ) from exc


@dataclass(frozen=True)
class PropertyNameDef:
    """Constraint on one property name within a :class:`PropertyTypeDef`."""

    name: str
    kind: str = ValueKind.STRING
    #: enumerated admissible values (empty = unconstrained)
    enum: tuple[str, ...] = ()
    #: documentation string
    doc: str = ""
    #: whether instances may leave the value unfixed
    allow_unfixed: bool = True

    def check(self, prop: Property) -> None:
        ValueKind.check(self.kind, prop)
        if self.enum and prop.value.as_str() not in self.enum:
            raise PDLSchemaError(
                f"property {prop.name!r}: value {prop.value.text!r} not in"
                f" enumeration {list(self.enum)}"
            )
        if not prop.fixed and not self.allow_unfixed:
            raise PDLSchemaError(
                f"property {prop.name!r} must be fixed in this subschema"
            )


@dataclass
class PropertyTypeDef:
    """A (possibly derived) polymorphic property type.

    ``names`` enumerates admissible property names.  An *open* type
    (``open_names=True``) admits any name — the generic base property type
    is open.  Derived types inherit the base's name definitions.
    """

    qname: str  # qualified name, e.g. "ocl:oclDevicePropertyType"
    version: str = "1.0"
    base: Optional["PropertyTypeDef"] = None
    names: dict[str, PropertyNameDef] = field(default_factory=dict)
    open_names: bool = False
    doc: str = ""

    def resolve_name(self, name: str) -> Optional[PropertyNameDef]:
        if name in self.names:
            return self.names[name]
        if self.base is not None:
            return self.base.resolve_name(name)
        return None

    def admits_any_name(self) -> bool:
        if self.open_names:
            return True
        return self.base.admits_any_name() if self.base is not None else False

    def all_names(self) -> dict[str, PropertyNameDef]:
        merged: dict[str, PropertyNameDef] = {}
        if self.base is not None:
            merged.update(self.base.all_names())
        merged.update(self.names)
        return merged

    def check(self, prop: Property) -> None:
        """Validate ``prop`` against this type definition."""
        name_def = self.resolve_name(prop.name)
        if name_def is None:
            if self.admits_any_name():
                return
            raise PDLSchemaError(
                f"type {self.qname!r} (v{self.version}) does not define"
                f" property name {prop.name!r};"
                f" known names: {sorted(self.all_names()) or '(none)'}"
            )
        name_def.check(prop)

    def derives_from(self, qname: str) -> bool:
        node: Optional[PropertyTypeDef] = self
        while node is not None:
            if node.qname == qname:
                return True
            node = node.base
        return False


#: The generic base Property type of the core PDL schema: open name space,
#: string values, no further constraints.
BASE_PROPERTY_TYPE = PropertyTypeDef(
    qname="pdl:PropertyType",
    version="1.0",
    open_names=True,
    doc="Generic key/value property of the base PDL schema.",
)


@dataclass
class Subschema:
    """A versioned extension schema bound to one namespace prefix/URI."""

    prefix: str
    uri: str
    version: str = "1.0"
    types: dict[str, PropertyTypeDef] = field(default_factory=dict)
    doc: str = ""

    def define_type(
        self,
        local_name: str,
        *,
        base: Optional[PropertyTypeDef] = BASE_PROPERTY_TYPE,
        names: Iterable[PropertyNameDef] = (),
        open_names: bool = False,
        doc: str = "",
    ) -> PropertyTypeDef:
        qname = f"{self.prefix}:{local_name}"
        if qname in self.types:
            raise PDLSchemaError(f"type {qname!r} already defined")
        type_def = PropertyTypeDef(
            qname=qname,
            version=self.version,
            base=base,
            names={d.name: d for d in names},
            open_names=open_names,
            doc=doc,
        )
        self.types[qname] = type_def
        return type_def

    @property
    def identifier(self) -> str:
        """Unique subschema identification (URI + version) per §III-B."""
        return f"{self.uri}#v{self.version}"


class SchemaRegistry:
    """Registry of subschemas consulted during parsing and validation."""

    def __init__(self):
        self._subschemas: dict[str, Subschema] = {}
        self._types: dict[str, PropertyTypeDef] = {
            BASE_PROPERTY_TYPE.qname: BASE_PROPERTY_TYPE
        }

    def register(self, subschema: Subschema) -> Subschema:
        existing = self._subschemas.get(subschema.prefix)
        if existing is not None:
            if existing.identifier == subschema.identifier:
                return existing  # idempotent re-registration
            raise PDLSchemaError(
                f"subschema prefix {subschema.prefix!r} already bound to"
                f" {existing.identifier!r}"
            )
        self._subschemas[subschema.prefix] = subschema
        for qname, type_def in subschema.types.items():
            if qname in self._types:
                raise PDLSchemaError(f"property type {qname!r} already registered")
            self._types[qname] = type_def
        # make the namespace known to the default prefix map
        from repro.pdl.namespaces import DEFAULT_NAMESPACES

        try:
            DEFAULT_NAMESPACES.register(subschema.prefix, subschema.uri)
        except ValueError as exc:
            raise PDLSchemaError(str(exc)) from exc
        return subschema

    # -- lookup ------------------------------------------------------------
    def subschema(self, prefix: str) -> Optional[Subschema]:
        return self._subschemas.get(prefix)

    def subschemas(self) -> list[Subschema]:
        return list(self._subschemas.values())

    def lookup_type(self, qname: Optional[str]) -> Optional[PropertyTypeDef]:
        if qname is None:
            return BASE_PROPERTY_TYPE
        return self._types.get(qname)

    def known_type(self, qname: str) -> bool:
        return qname in self._types

    # -- conformance ---------------------------------------------------------
    def check_property(self, prop: Property, *, strict: bool = False) -> None:
        """Validate one property against its declared type.

        Unknown types pass in non-strict mode (extensibility: a document may
        use vendor subschemas this installation has not loaded).
        """
        type_def = self.lookup_type(prop.type_name)
        if type_def is None:
            if strict:
                raise PDLSchemaError(
                    f"unknown property type {prop.type_name!r}"
                    f" (property {prop.name!r}); registered types:"
                    f" {sorted(self._types)}"
                )
            return
        type_def.check(prop)

    def copy(self) -> "SchemaRegistry":
        clone = SchemaRegistry()
        for subschema in self._subschemas.values():
            clone._subschemas[subschema.prefix] = subschema
            clone._types.update(subschema.types)
        return clone


_default_registry: Optional[SchemaRegistry] = None


def default_registry() -> SchemaRegistry:
    """Process-wide registry preloaded with the shipped extension subschemas."""
    global _default_registry
    if _default_registry is None:
        _default_registry = SchemaRegistry()
        from repro.pdl import extensions

        extensions.register_all(_default_registry)
    return _default_registry
