"""Kernel registry: named kernels with per-architecture implementation
variants.

This is the runtime-level analogue of Cascabel's task repository: a
*kernel* (StarPU would say codelet) has one functional contract and any
number of architecture-specific implementations.  In this reproduction all
implementations execute on the host via numpy — what differs per
architecture is the *performance model metadata* and which PUs may run
them, which is exactly the part the paper's PDL-driven selection needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import KernelError

__all__ = ["KernelImpl", "Kernel", "KernelRegistry", "default_kernel_registry"]


@dataclass(frozen=True)
class KernelImpl:
    """One implementation variant of a kernel."""

    kernel: str
    architecture: str  # PU architecture this variant runs on
    name: str  # variant name, e.g. "dgemm_cublas"
    fn: Callable  # host-executable functional implementation
    #: library the variant stands in for (GotoBLAS2, CUBLAS ...), for reports
    provenance: str = ""


@dataclass
class Kernel:
    """A named kernel with its variants and cost metadata."""

    name: str
    #: flops as a function of the task's dims tuple
    flops: Callable[[tuple], float]
    #: bytes touched as a function of dims
    bytes_touched: Callable[[tuple], float]
    variants: dict[str, KernelImpl] = field(default_factory=dict)
    doc: str = ""

    def add_variant(self, impl: KernelImpl) -> KernelImpl:
        if impl.architecture in self.variants:
            raise KernelError(
                f"kernel {self.name!r} already has a variant for"
                f" architecture {impl.architecture!r}"
            )
        self.variants[impl.architecture] = impl
        return self.variants[impl.architecture]

    def variant_for(self, architecture: str) -> KernelImpl:
        try:
            return self.variants[architecture]
        except KeyError:
            raise KernelError(
                f"kernel {self.name!r} has no variant for architecture"
                f" {architecture!r}; available: {sorted(self.variants)}"
            ) from None

    def supports(self, architecture: str) -> bool:
        return architecture in self.variants

    def architectures(self) -> list[str]:
        return sorted(self.variants)


class KernelRegistry:
    """Name-indexed kernel collection with a decorator-based API."""

    def __init__(self):
        self._kernels: dict[str, Kernel] = {}

    def define(
        self,
        name: str,
        *,
        flops: Callable[[tuple], float],
        bytes_touched: Callable[[tuple], float],
        doc: str = "",
    ) -> Kernel:
        if name in self._kernels:
            raise KernelError(f"kernel {name!r} already defined")
        kernel = Kernel(name, flops=flops, bytes_touched=bytes_touched, doc=doc)
        self._kernels[name] = kernel
        return kernel

    def variant(
        self, kernel: str, architecture: str, *, name: Optional[str] = None,
        provenance: str = "",
    ):
        """Decorator registering ``fn`` as a variant of ``kernel``."""

        def deco(fn: Callable) -> Callable:
            self.get(kernel).add_variant(
                KernelImpl(
                    kernel=kernel,
                    architecture=architecture,
                    name=name or fn.__name__,
                    fn=fn,
                    provenance=provenance,
                )
            )
            return fn

        return deco

    def get(self, name: str) -> Kernel:
        try:
            return self._kernels[name]
        except KeyError:
            raise KernelError(
                f"unknown kernel {name!r}; defined: {sorted(self._kernels)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._kernels)

    def __contains__(self, name: str) -> bool:
        return name in self._kernels


_default: Optional[KernelRegistry] = None


def default_kernel_registry() -> KernelRegistry:
    """Process-wide registry preloaded with the BLAS-style kernels."""
    global _default
    if _default is None:
        _default = KernelRegistry()
        from repro.kernels import blas

        blas.register(_default)
    return _default
