"""Compute kernels with per-architecture variants (runtime codelets)."""

from repro.kernels.blas import DOUBLE_BYTES
from repro.kernels.registry import (
    Kernel,
    KernelImpl,
    KernelRegistry,
    default_kernel_registry,
)

__all__ = [
    "Kernel",
    "KernelImpl",
    "KernelRegistry",
    "default_kernel_registry",
    "DOUBLE_BYTES",
]
