"""BLAS-style compute kernels (numpy-backed) with per-architecture variants.

The functional payload is identical across variants — a GTX 480 computes
the same matrix product a Xeon does — so all variants call numpy.  The
variant split exists so PDL-driven selection, mapping and performance
modeling treat them exactly like the paper's GotoBLAS2 / CUBLAS / SPE
implementations.

Conventions: matrix kernels take ``(C, A, B)`` output-first; dims tuples
are ``(m, n, k)`` for GEMM-shaped kernels and ``(n,)`` for vector kernels.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import KernelRegistry

__all__ = ["register", "DOUBLE_BYTES"]

DOUBLE_BYTES = 8


def register(registry: KernelRegistry) -> None:
    """Define the BLAS kernels and their variants in ``registry``."""

    # -- dgemm: C += A @ B ----------------------------------------------------
    dgemm = registry.define(
        "dgemm",
        flops=lambda dims: 2.0 * dims[0] * dims[1] * dims[2],
        bytes_touched=lambda dims: DOUBLE_BYTES
        * (dims[0] * dims[2] + dims[2] * dims[1] + 2 * dims[0] * dims[1]),
        doc="Double-precision general matrix multiply, C += A(m,k) @ B(k,n).",
    )

    @registry.variant("dgemm", "x86_64", name="dgemm_goto", provenance="GotoBLAS2-1.13")
    def dgemm_cpu(C, A, B):
        C += A @ B

    @registry.variant("dgemm", "x86", name="dgemm_x86", provenance="GotoBLAS2-1.13")
    def dgemm_x86(C, A, B):
        C += A @ B

    @registry.variant("dgemm", "gpu", name="dgemm_cublas", provenance="CUBLAS-3.2")
    def dgemm_gpu(C, A, B):
        C += A @ B

    @registry.variant("dgemm", "spe", name="dgemm_spe", provenance="Cell-SDK-3.1")
    def dgemm_spe(C, A, B):
        C += A @ B

    # -- dvecadd: A += B --------------------------------------------------------
    registry.define(
        "dvecadd",
        flops=lambda dims: float(dims[0]),
        bytes_touched=lambda dims: 3.0 * DOUBLE_BYTES * dims[0],
        doc="Double-precision vector add, A += B (the paper's §IV-A example).",
    )

    @registry.variant("dvecadd", "x86_64", name="vecadd_cpu")
    def vecadd_cpu(A, B):
        A += B

    @registry.variant("dvecadd", "x86", name="vecadd_x86")
    def vecadd_x86(A, B):
        A += B

    @registry.variant("dvecadd", "gpu", name="vecadd_gpu", provenance="CUBLAS-3.2")
    def vecadd_gpu(A, B):
        A += B

    # -- dscal: X *= alpha -------------------------------------------------------
    registry.define(
        "dscal",
        flops=lambda dims: float(dims[0]),
        bytes_touched=lambda dims: 2.0 * DOUBLE_BYTES * dims[0],
        doc="Scale a vector in place by a scalar carried in the task args.",
    )

    @registry.variant("dscal", "x86_64", name="dscal_cpu")
    def dscal_cpu(X, *, alpha=1.0):
        X *= alpha

    @registry.variant("dscal", "gpu", name="dscal_gpu")
    def dscal_gpu(X, *, alpha=1.0):
        X *= alpha

    # -- daxpy: Y += alpha * X ------------------------------------------------------
    registry.define(
        "daxpy",
        flops=lambda dims: 2.0 * dims[0],
        bytes_touched=lambda dims: 3.0 * DOUBLE_BYTES * dims[0],
        doc="Y += alpha * X.",
    )

    @registry.variant("daxpy", "x86_64", name="daxpy_cpu")
    def daxpy_cpu(Y, X, *, alpha=1.0):
        Y += alpha * X

    @registry.variant("daxpy", "gpu", name="daxpy_gpu")
    def daxpy_gpu(Y, X, *, alpha=1.0):
        Y += alpha * X

    # -- tiled-Cholesky kernel family (POTRF / TRSM / SYRK / GEMM) -------------
    # The classic 4-kernel task graph; flops counts follow LAPACK.
    registry.define(
        "dpotrf",
        flops=lambda dims: dims[0] ** 3 / 3.0,
        bytes_touched=lambda dims: DOUBLE_BYTES * dims[0] * dims[0],
        doc="Cholesky factorization of a tile (lower triangular).",
    )

    @registry.variant("dpotrf", "x86_64", name="dpotrf_cpu", provenance="LAPACK")
    def dpotrf_cpu(A):
        A[:] = np.linalg.cholesky(A)

    @registry.variant("dpotrf", "gpu", name="dpotrf_gpu", provenance="MAGMA")
    def dpotrf_gpu(A):
        A[:] = np.linalg.cholesky(A)

    @registry.variant("dpotrf", "spe", name="dpotrf_spe", provenance="Cell-SDK-3.1")
    def dpotrf_spe(A):
        A[:] = np.linalg.cholesky(A)

    registry.define(
        "dtrsm",
        flops=lambda dims: float(dims[0]) ** 3,
        bytes_touched=lambda dims: 2.0 * DOUBLE_BYTES * dims[0] * dims[0],
        doc="Triangular solve B <- B * L^-T (right, lower, transposed).",
    )

    @registry.variant("dtrsm", "x86_64", name="dtrsm_cpu", provenance="GotoBLAS2-1.13")
    def dtrsm_cpu(B, L):
        _trsm(B, L)

    @registry.variant("dtrsm", "gpu", name="dtrsm_gpu", provenance="CUBLAS-3.2")
    def dtrsm_gpu(B, L):
        _trsm(B, L)

    @registry.variant("dtrsm", "spe", name="dtrsm_spe", provenance="Cell-SDK-3.1")
    def dtrsm_spe(B, L):
        _trsm(B, L)

    registry.define(
        "dsyrk",
        flops=lambda dims: float(dims[0]) ** 3,
        bytes_touched=lambda dims: 2.0 * DOUBLE_BYTES * dims[0] * dims[0],
        doc="Symmetric rank-k update C <- C - A A^T (lower).",
    )

    @registry.variant("dsyrk", "x86_64", name="dsyrk_cpu", provenance="GotoBLAS2-1.13")
    def dsyrk_cpu(C, A):
        C -= A @ A.T

    @registry.variant("dsyrk", "gpu", name="dsyrk_gpu", provenance="CUBLAS-3.2")
    def dsyrk_gpu(C, A):
        C -= A @ A.T

    @registry.variant("dsyrk", "spe", name="dsyrk_spe", provenance="Cell-SDK-3.1")
    def dsyrk_spe(C, A):
        C -= A @ A.T

    registry.define(
        "dgemm_nt",
        flops=lambda dims: 2.0 * dims[0] * dims[1] * dims[2],
        bytes_touched=lambda dims: DOUBLE_BYTES
        * (dims[0] * dims[2] + dims[1] * dims[2] + 2 * dims[0] * dims[1]),
        doc="C <- C - A B^T (the Cholesky trailing-matrix update).",
    )

    @registry.variant("dgemm_nt", "x86_64", name="dgemm_nt_cpu",
                      provenance="GotoBLAS2-1.13")
    def dgemm_nt_cpu(C, A, B):
        C -= A @ B.T

    @registry.variant("dgemm_nt", "gpu", name="dgemm_nt_gpu",
                      provenance="CUBLAS-3.2")
    def dgemm_nt_gpu(C, A, B):
        C -= A @ B.T

    @registry.variant("dgemm_nt", "spe", name="dgemm_nt_spe",
                      provenance="Cell-SDK-3.1")
    def dgemm_nt_spe(C, A, B):
        C -= A @ B.T


def _trsm(B, L):
    """In-place right-sided lower-transposed triangular solve.

    Computes ``B <- B (L^T)^-1`` via one LAPACK-backed solve; equivalent
    to BLAS ``dtrsm('R','L','T','N', 1.0, L, B)``.
    """
    import scipy.linalg

    B[:] = scipy.linalg.solve_triangular(L, B.T, lower=True, trans="N").T
