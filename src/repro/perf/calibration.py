"""Calibration constants for the paper's testbed (§IV-D).

Single source of truth for every magic number the simulated runtime uses.
Values are taken from vendor datasheets and period BLAS benchmarks:

* **Intel Xeon X5550** (Nehalem-EP, 2.66 GHz, SSE4.2): 4 DP FLOP/cycle
  → 10.64 GFLOP/s peak per core; GotoBLAS2 DGEMM sustains ≈ 90 % of peak.
* **GeForce GTX 480** (GF100 consumer Fermi): DP throughput capped at 1/8
  of SP → 168 GFLOP/s peak; CUBLAS 3.2 DGEMM sustains ≈ 70 %.
* **GeForce GTX 285** (GT200b): 88.5 GFLOP/s DP peak; CUBLAS DGEMM on
  GT200 was comparatively efficient, ≈ 80 % of peak.
* **PCIe 2.0 x16**: 8 GB/s raw, ≈ 5.7 GB/s effective with pinned memory.
* **StarPU overheads**: per-task scheduling ≈ 5 µs on this class of
  machine; CUDA kernel-launch ≈ 12 µs.

Every value can be overridden by an explicit PDL property — the library
philosophy is that the *descriptor* is authoritative and the calibration
table only fills gaps.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ArchCalibration",
    "ARCH_DEFAULTS",
    "TASK_SCHEDULING_OVERHEAD_S",
    "CUDA_LAUNCH_OVERHEAD_S",
    "PCIE2_X16_BANDWIDTH_BPS",
    "PCIE_LATENCY_S",
    "SHM_BANDWIDTH_BPS",
    "SHM_LATENCY_S",
]

#: StarPU-class per-task runtime overhead (submission, scheduling, callbacks)
TASK_SCHEDULING_OVERHEAD_S = 5e-6
#: CUDA kernel launch latency added to every GPU task
CUDA_LAUNCH_OVERHEAD_S = 12e-6
#: effective PCIe 2.0 x16 throughput with pinned host memory
PCIE2_X16_BANDWIDTH_BPS = 5.7 * 1024**3
PCIE_LATENCY_S = 15e-6
#: shared-memory "transfer" between host workers (NUMA-averaged stream bw)
SHM_BANDWIDTH_BPS = 25.6 * 1024**3
SHM_LATENCY_S = 100e-9


@dataclass(frozen=True)
class ArchCalibration:
    """Fallback performance figures for one PU architecture class."""

    architecture: str
    peak_gflops_dp: float
    dgemm_efficiency: float
    #: efficiency for memory-bound level-1 kernels relative to mem bandwidth
    stream_bandwidth_gbs: float
    kernel_launch_overhead_s: float


ARCH_DEFAULTS: dict[str, ArchCalibration] = {
    "x86_64": ArchCalibration(
        architecture="x86_64",
        peak_gflops_dp=10.64,  # one Xeon X5550 core
        dgemm_efficiency=0.90,
        stream_bandwidth_gbs=3.2,  # per-core share of socket bandwidth
        kernel_launch_overhead_s=0.0,
    ),
    "x86": ArchCalibration(
        architecture="x86",
        peak_gflops_dp=10.64,
        dgemm_efficiency=0.90,
        stream_bandwidth_gbs=3.2,
        kernel_launch_overhead_s=0.0,
    ),
    "gpu": ArchCalibration(
        architecture="gpu",
        peak_gflops_dp=168.0,  # GTX 480 class
        dgemm_efficiency=0.70,
        stream_bandwidth_gbs=140.0,
        kernel_launch_overhead_s=CUDA_LAUNCH_OVERHEAD_S,
    ),
    "spe": ArchCalibration(
        architecture="spe",
        peak_gflops_dp=1.83,  # Cell SPE double precision
        dgemm_efficiency=0.85,
        stream_bandwidth_gbs=25.6,
        kernel_launch_overhead_s=2e-6,
    ),
    "ppc64": ArchCalibration(
        architecture="ppc64",
        peak_gflops_dp=6.4,
        dgemm_efficiency=0.80,
        stream_bandwidth_gbs=4.0,
        kernel_launch_overhead_s=0.0,
    ),
}
