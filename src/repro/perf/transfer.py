"""Interconnect transfer-cost model with link contention.

Wraps :class:`~repro.query.paths.InterconnectGraph` routes in a model the
discrete-event runtime can use: each physical link is a serially-shared
resource (one DMA at a time, which is how PCIe behaves for large pinned
transfers), so concurrent transfers over the same link queue up.  This
contention is what bounds the ``starpu+2gpu`` configuration of Figure 5
when both GPUs pull operands simultaneously — modeling it matters for the
reproduced shape.

With ``model_interference=True`` the model additionally honors the
platform's declared *contention domains* (see
:mod:`repro.model.contention`): a hop whose link — or whose endpoint
memory region — is enrolled in a domain does not queue serially but
shares the domain's aggregate bandwidth budget fluidly with every
transfer concurrently crossing that domain.  The effective rate is
``min(link bandwidth, budget / (1 + concurrent crossers))`` over all
domains the hop touches.  Hops outside any domain keep the serial model
byte-for-byte, so platforms without declarations (and runs with the flag
off, the default) produce identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.platform import Platform
from repro.query.paths import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_LATENCY_S,
    InterconnectGraph,
    Route,
)

__all__ = ["TransferEstimate", "TransferModel"]


@dataclass(frozen=True)
class TransferEstimate:
    """Outcome of scheduling one transfer on the contended link model."""

    src: str
    dst: str
    nbytes: float
    start: float  # when the transfer actually started (after queueing)
    finish: float
    route: Route

    @property
    def duration(self) -> float:
        return self.finish - self.start


class TransferModel:
    """Contention-aware transfer scheduling over a platform's links."""

    def __init__(
        self,
        platform: Platform,
        *,
        include_control_edges: bool = True,
        model_contention: bool = True,
        model_interference: bool = False,
    ):
        self.graph = InterconnectGraph(
            platform, include_control_edges=include_control_edges
        )
        self._platform = platform
        #: when False, links are infinitely shareable (ablation baseline)
        self.model_contention = model_contention
        #: when True, hops crossing a declared contention domain share
        #: the domain budget fluidly instead of queueing serially
        self.model_interference = model_interference
        #: lazily built (budgets, link→domains, node→domains) tables;
        #: dropped by :meth:`invalidate_routes` like the other memos
        self._domain_tables: Optional[
            tuple[
                dict[str, float],
                dict[str, tuple[str, ...]],
                dict[str, tuple[str, ...]],
            ]
        ] = None
        #: domain name → (begin, end) intervals of in-flight transfers
        self._domain_active: dict[str, list[tuple[float, float]]] = {}
        #: link id → time at which the link becomes free
        self._link_free_at: dict[str, float] = {}
        self._route_cache: dict[tuple[str, str], Route] = {}
        #: (src, dst, nbytes) → ideal seconds; the vectorized runtime's
        #: bulk scorer hits this instead of re-walking route links (and
        #: re-parsing their quantity properties) per candidate worker
        self._ideal_cache: dict[tuple[str, str, float], float] = {}
        #: opt-in memo of per-link (latency_s, bandwidth_bps): reading a
        #: link's quantity properties re-parses unit strings, which the
        #: contended :meth:`schedule` loop does per hop per transfer.
        #: The vectorized engine enables this; the scalar reference path
        #: keeps re-reading so the two implementations stay independent.
        self.param_cache_enabled = False
        self._link_params: dict[str, tuple[float, float]] = {}

    def reset(self) -> None:
        """Forget all link occupancy (start of a new simulation run)."""
        self._link_free_at.clear()
        self._domain_active.clear()

    def invalidate_routes(self) -> None:
        """Drop memoized routes after a dynamic event changed the fabric.

        Routes are computed from the interconnect graph once and cached;
        an event that re-instantiates link bandwidth/latency (or re-wires
        the topology) makes those cached paths stale.  Memoized ideal
        times, link parameters, and contention-domain tables are derived
        from the same document properties, so they go too.
        """
        self._route_cache.clear()
        self._ideal_cache.clear()
        self._link_params.clear()
        self._domain_tables = None

    # -- contention domains -----------------------------------------------------
    def _domains(
        self,
    ) -> tuple[
        dict[str, float],
        dict[str, tuple[str, ...]],
        dict[str, tuple[str, ...]],
    ]:
        """``(budgets, link id → domains, region-owner PU id → domains)``.

        Only domains with a positive declared budget participate — a
        budget-less domain is an IFR002 lint error, and the runtime has
        nothing to apportion for it.
        """
        tables = self._domain_tables
        if tables is None:
            from repro.model.contention import collect_contention_domains

            budgets: dict[str, float] = {}
            link_domains: dict[str, tuple[str, ...]] = {}
            node_domains: dict[str, tuple[str, ...]] = {}
            for dom in collect_contention_domains(self._platform):
                budget = dom.budget_bps
                if budget is None or budget <= 0:
                    continue
                budgets[dom.name] = budget
                for member in dom.members:
                    if member.kind == "interconnect":
                        table, key = link_domains, member.id
                    else:
                        table, key = node_domains, member.owner
                    current = table.get(key, ())
                    if dom.name not in current:
                        table[key] = current + (dom.name,)
            tables = (budgets, link_domains, node_domains)
            self._domain_tables = tables
        return tables

    def _crossers_at(self, name: str, when: float) -> int:
        """Transfers in flight across domain ``name`` at time ``when``."""
        return sum(
            1
            for begin, end in self._domain_active.get(name, ())
            if begin <= when < end
        )

    # -- pure estimates (no state) --------------------------------------------
    def route(self, src: str, dst: str) -> Route:
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = self.graph.shortest(src, dst, weight="latency")
            self._route_cache[key] = cached
        return cached

    def ideal_time(self, src: str, dst: str, nbytes: float) -> float:
        """Transfer time ignoring contention (used by dmda lookahead)."""
        if src == dst:
            return 0.0
        return self.route(src, dst).transfer_time(nbytes)

    def ideal_time_cached(self, src: str, dst: str, nbytes: float) -> float:
        """Memoized :meth:`ideal_time` — bit-identical by construction.

        The cache stores the result of the exact scalar computation, so
        the vectorized scheduler's batched scores match the scalar
        path's floats to the last ulp.  Invalidated with the routes.
        """
        key = (src, dst, nbytes)
        t = self._ideal_cache.get(key)
        if t is None:
            t = self.ideal_time(src, dst, nbytes)
            self._ideal_cache[key] = t
        return t

    def bulk_ideal_times(
        self, requests: "list[tuple[str, str, float]]"
    ) -> list[float]:
        """Resolve many ``(src, dst, nbytes)`` ideal times in one call."""
        return [self.ideal_time_cached(s, d, n) for s, d, n in requests]

    # -- stateful scheduling ----------------------------------------------------
    def schedule(
        self, src: str, dst: str, nbytes: float, now: float
    ) -> TransferEstimate:
        """Occupy the route's links starting no earlier than ``now``.

        Each hop waits for its link to free up, then holds it for
        ``latency + nbytes/bandwidth``.  Returns the contention-adjusted
        timeline.  Zero-byte or same-node transfers are free.
        """
        if src == dst:
            route = Route((src, dst), (src,), ())
            return TransferEstimate(src, dst, nbytes, now, now, route)
        route = self.route(src, dst)
        if not self.model_contention:
            finish = now + route.transfer_time(nbytes)
            return TransferEstimate(src, dst, nbytes, now, finish, route)
        if self.model_interference:
            budgets, link_domains, node_domains = self._domains()
        t = now
        start: Optional[float] = None
        last_hop = len(route.links) - 1
        for hop, link in enumerate(route.links):
            if self.model_interference:
                domains = link_domains.get(link.id, ())
                if hop == 0:
                    for name in node_domains.get(src, ()):
                        if name not in domains:
                            domains += (name,)
                if hop == last_hop:
                    for name in node_domains.get(dst, ()):
                        if name not in domains:
                            domains += (name,)
                if domains:
                    # fluid sharing: no serial queueing — every crosser
                    # runs at once, splitting the tightest domain budget
                    begin = t
                    if start is None:
                        start = begin
                    lat, bw = self._hop_params(link)
                    rate = bw
                    for name in domains:
                        share = budgets[name] / (
                            self._crossers_at(name, begin) + 1
                        )
                        if share < rate:
                            rate = share
                    end = begin + lat + nbytes / rate
                    for name in domains:
                        intervals = self._domain_active.setdefault(name, [])
                        intervals.append((begin, end))
                        if len(intervals) > 512:
                            self._domain_active[name] = [
                                iv for iv in intervals if iv[1] > begin
                            ]
                    t = end
                    continue
            free_at = self._link_free_at.get(link.id, 0.0)
            begin = max(t, free_at)
            if start is None:
                start = begin
            if self.param_cache_enabled:
                params = self._link_params.get(link.id)
                if params is None:
                    params = (
                        link.latency_s
                        if link.latency_s is not None
                        else DEFAULT_LATENCY_S,
                        link.bandwidth_bytes_per_s
                        if link.bandwidth_bytes_per_s is not None
                        else DEFAULT_BANDWIDTH_BPS,
                    )
                    self._link_params[link.id] = params
                lat, bw = params
            else:
                lat = (
                    link.latency_s
                    if link.latency_s is not None
                    else DEFAULT_LATENCY_S
                )
                bw = (
                    link.bandwidth_bytes_per_s
                    if link.bandwidth_bytes_per_s is not None
                    else DEFAULT_BANDWIDTH_BPS
                )
            hold = lat + nbytes / bw
            self._link_free_at[link.id] = begin + hold
            t = begin + hold
        assert start is not None
        return TransferEstimate(src, dst, nbytes, start, t, route)

    def _hop_params(self, link) -> tuple[float, float]:
        """``(latency_s, bandwidth_bps)`` for one hop, honoring the memo."""
        if self.param_cache_enabled:
            params = self._link_params.get(link.id)
            if params is None:
                params = (
                    link.latency_s
                    if link.latency_s is not None
                    else DEFAULT_LATENCY_S,
                    link.bandwidth_bytes_per_s
                    if link.bandwidth_bytes_per_s is not None
                    else DEFAULT_BANDWIDTH_BPS,
                )
                self._link_params[link.id] = params
            return params
        return (
            link.latency_s if link.latency_s is not None else DEFAULT_LATENCY_S,
            link.bandwidth_bytes_per_s
            if link.bandwidth_bytes_per_s is not None
            else DEFAULT_BANDWIDTH_BPS,
        )

    def link_busy_until(self, link_id: str) -> float:
        return self._link_free_at.get(link_id, 0.0)
