"""Interconnect transfer-cost model with link contention.

Wraps :class:`~repro.query.paths.InterconnectGraph` routes in a model the
discrete-event runtime can use: each physical link is a serially-shared
resource (one DMA at a time, which is how PCIe behaves for large pinned
transfers), so concurrent transfers over the same link queue up.  This
contention is what bounds the ``starpu+2gpu`` configuration of Figure 5
when both GPUs pull operands simultaneously — modeling it matters for the
reproduced shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.platform import Platform
from repro.query.paths import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_LATENCY_S,
    InterconnectGraph,
    Route,
)

__all__ = ["TransferEstimate", "TransferModel"]


@dataclass(frozen=True)
class TransferEstimate:
    """Outcome of scheduling one transfer on the contended link model."""

    src: str
    dst: str
    nbytes: float
    start: float  # when the transfer actually started (after queueing)
    finish: float
    route: Route

    @property
    def duration(self) -> float:
        return self.finish - self.start


class TransferModel:
    """Contention-aware transfer scheduling over a platform's links."""

    def __init__(
        self,
        platform: Platform,
        *,
        include_control_edges: bool = True,
        model_contention: bool = True,
    ):
        self.graph = InterconnectGraph(
            platform, include_control_edges=include_control_edges
        )
        #: when False, links are infinitely shareable (ablation baseline)
        self.model_contention = model_contention
        #: link id → time at which the link becomes free
        self._link_free_at: dict[str, float] = {}
        self._route_cache: dict[tuple[str, str], Route] = {}
        #: (src, dst, nbytes) → ideal seconds; the vectorized runtime's
        #: bulk scorer hits this instead of re-walking route links (and
        #: re-parsing their quantity properties) per candidate worker
        self._ideal_cache: dict[tuple[str, str, float], float] = {}
        #: opt-in memo of per-link (latency_s, bandwidth_bps): reading a
        #: link's quantity properties re-parses unit strings, which the
        #: contended :meth:`schedule` loop does per hop per transfer.
        #: The vectorized engine enables this; the scalar reference path
        #: keeps re-reading so the two implementations stay independent.
        self.param_cache_enabled = False
        self._link_params: dict[str, tuple[float, float]] = {}

    def reset(self) -> None:
        """Forget all link occupancy (start of a new simulation run)."""
        self._link_free_at.clear()

    def invalidate_routes(self) -> None:
        """Drop memoized routes after a dynamic event changed the fabric.

        Routes are computed from the interconnect graph once and cached;
        an event that re-instantiates link bandwidth/latency (or re-wires
        the topology) makes those cached paths stale.  Memoized ideal
        times are derived from the same link properties, so they go too.
        """
        self._route_cache.clear()
        self._ideal_cache.clear()
        self._link_params.clear()

    # -- pure estimates (no state) --------------------------------------------
    def route(self, src: str, dst: str) -> Route:
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = self.graph.shortest(src, dst, weight="latency")
            self._route_cache[key] = cached
        return cached

    def ideal_time(self, src: str, dst: str, nbytes: float) -> float:
        """Transfer time ignoring contention (used by dmda lookahead)."""
        if src == dst:
            return 0.0
        return self.route(src, dst).transfer_time(nbytes)

    def ideal_time_cached(self, src: str, dst: str, nbytes: float) -> float:
        """Memoized :meth:`ideal_time` — bit-identical by construction.

        The cache stores the result of the exact scalar computation, so
        the vectorized scheduler's batched scores match the scalar
        path's floats to the last ulp.  Invalidated with the routes.
        """
        key = (src, dst, nbytes)
        t = self._ideal_cache.get(key)
        if t is None:
            t = self.ideal_time(src, dst, nbytes)
            self._ideal_cache[key] = t
        return t

    def bulk_ideal_times(
        self, requests: "list[tuple[str, str, float]]"
    ) -> list[float]:
        """Resolve many ``(src, dst, nbytes)`` ideal times in one call."""
        return [self.ideal_time_cached(s, d, n) for s, d, n in requests]

    # -- stateful scheduling ----------------------------------------------------
    def schedule(
        self, src: str, dst: str, nbytes: float, now: float
    ) -> TransferEstimate:
        """Occupy the route's links starting no earlier than ``now``.

        Each hop waits for its link to free up, then holds it for
        ``latency + nbytes/bandwidth``.  Returns the contention-adjusted
        timeline.  Zero-byte or same-node transfers are free.
        """
        if src == dst:
            route = Route((src, dst), (src,), ())
            return TransferEstimate(src, dst, nbytes, now, now, route)
        route = self.route(src, dst)
        if not self.model_contention:
            finish = now + route.transfer_time(nbytes)
            return TransferEstimate(src, dst, nbytes, now, finish, route)
        t = now
        start: Optional[float] = None
        for link in route.links:
            free_at = self._link_free_at.get(link.id, 0.0)
            begin = max(t, free_at)
            if start is None:
                start = begin
            if self.param_cache_enabled:
                params = self._link_params.get(link.id)
                if params is None:
                    params = (
                        link.latency_s
                        if link.latency_s is not None
                        else DEFAULT_LATENCY_S,
                        link.bandwidth_bytes_per_s
                        if link.bandwidth_bytes_per_s is not None
                        else DEFAULT_BANDWIDTH_BPS,
                    )
                    self._link_params[link.id] = params
                lat, bw = params
            else:
                lat = (
                    link.latency_s
                    if link.latency_s is not None
                    else DEFAULT_LATENCY_S
                )
                bw = (
                    link.bandwidth_bytes_per_s
                    if link.bandwidth_bytes_per_s is not None
                    else DEFAULT_BANDWIDTH_BPS
                )
            hold = lat + nbytes / bw
            self._link_free_at[link.id] = begin + hold
            t = begin + hold
        assert start is not None
        return TransferEstimate(src, dst, nbytes, start, t, route)

    def link_busy_until(self, link_id: str) -> float:
        return self._link_free_at.get(link_id, 0.0)
