"""Interconnect transfer-cost model with link contention.

Wraps :class:`~repro.query.paths.InterconnectGraph` routes in a model the
discrete-event runtime can use: each physical link is a serially-shared
resource (one DMA at a time, which is how PCIe behaves for large pinned
transfers), so concurrent transfers over the same link queue up.  This
contention is what bounds the ``starpu+2gpu`` configuration of Figure 5
when both GPUs pull operands simultaneously — modeling it matters for the
reproduced shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.platform import Platform
from repro.query.paths import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_LATENCY_S,
    InterconnectGraph,
    Route,
)

__all__ = ["TransferEstimate", "TransferModel"]


@dataclass(frozen=True)
class TransferEstimate:
    """Outcome of scheduling one transfer on the contended link model."""

    src: str
    dst: str
    nbytes: float
    start: float  # when the transfer actually started (after queueing)
    finish: float
    route: Route

    @property
    def duration(self) -> float:
        return self.finish - self.start


class TransferModel:
    """Contention-aware transfer scheduling over a platform's links."""

    def __init__(
        self,
        platform: Platform,
        *,
        include_control_edges: bool = True,
        model_contention: bool = True,
    ):
        self.graph = InterconnectGraph(
            platform, include_control_edges=include_control_edges
        )
        #: when False, links are infinitely shareable (ablation baseline)
        self.model_contention = model_contention
        #: link id → time at which the link becomes free
        self._link_free_at: dict[str, float] = {}
        self._route_cache: dict[tuple[str, str], Route] = {}

    def reset(self) -> None:
        """Forget all link occupancy (start of a new simulation run)."""
        self._link_free_at.clear()

    def invalidate_routes(self) -> None:
        """Drop memoized routes after a dynamic event changed the fabric.

        Routes are computed from the interconnect graph once and cached;
        an event that re-instantiates link bandwidth/latency (or re-wires
        the topology) makes those cached paths stale.
        """
        self._route_cache.clear()

    # -- pure estimates (no state) --------------------------------------------
    def route(self, src: str, dst: str) -> Route:
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = self.graph.shortest(src, dst, weight="latency")
            self._route_cache[key] = cached
        return cached

    def ideal_time(self, src: str, dst: str, nbytes: float) -> float:
        """Transfer time ignoring contention (used by dmda lookahead)."""
        if src == dst:
            return 0.0
        return self.route(src, dst).transfer_time(nbytes)

    # -- stateful scheduling ----------------------------------------------------
    def schedule(
        self, src: str, dst: str, nbytes: float, now: float
    ) -> TransferEstimate:
        """Occupy the route's links starting no earlier than ``now``.

        Each hop waits for its link to free up, then holds it for
        ``latency + nbytes/bandwidth``.  Returns the contention-adjusted
        timeline.  Zero-byte or same-node transfers are free.
        """
        if src == dst:
            route = Route((src, dst), (src,), ())
            return TransferEstimate(src, dst, nbytes, now, now, route)
        route = self.route(src, dst)
        if not self.model_contention:
            finish = now + route.transfer_time(nbytes)
            return TransferEstimate(src, dst, nbytes, now, finish, route)
        t = now
        start: Optional[float] = None
        for link in route.links:
            free_at = self._link_free_at.get(link.id, 0.0)
            begin = max(t, free_at)
            if start is None:
                start = begin
            lat = link.latency_s if link.latency_s is not None else DEFAULT_LATENCY_S
            bw = (
                link.bandwidth_bytes_per_s
                if link.bandwidth_bytes_per_s is not None
                else DEFAULT_BANDWIDTH_BPS
            )
            hold = lat + nbytes / bw
            self._link_free_at[link.id] = begin + hold
            t = begin + hold
        assert start is not None
        return TransferEstimate(src, dst, nbytes, start, t, route)

    def link_busy_until(self, link_id: str) -> float:
        return self._link_free_at.get(link_id, 0.0)
