"""Calibrated performance models for the simulated runtime.

``models`` estimates kernel durations per PU from PDL properties;
``transfer`` schedules contended link transfers; ``calibration`` holds the
paper-testbed constants.
"""

from repro.perf.calibration import (
    ARCH_DEFAULTS,
    CUDA_LAUNCH_OVERHEAD_S,
    PCIE2_X16_BANDWIDTH_BPS,
    PCIE_LATENCY_S,
    SHM_BANDWIDTH_BPS,
    SHM_LATENCY_S,
    TASK_SCHEDULING_OVERHEAD_S,
    ArchCalibration,
)
from repro.perf.models import PerfModel, PUPerformance, performance_of
from repro.perf.transfer import TransferEstimate, TransferModel

__all__ = [
    "PerfModel",
    "PUPerformance",
    "performance_of",
    "TransferModel",
    "TransferEstimate",
    "ArchCalibration",
    "ARCH_DEFAULTS",
    "TASK_SCHEDULING_OVERHEAD_S",
    "CUDA_LAUNCH_OVERHEAD_S",
    "PCIE2_X16_BANDWIDTH_BPS",
    "PCIE_LATENCY_S",
    "SHM_BANDWIDTH_BPS",
    "SHM_LATENCY_S",
]
