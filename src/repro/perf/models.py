"""Per-PU kernel performance models.

A :class:`PerfModel` answers "how long does task *t* take on PU *p*" — the
question StarPU's ``dmda``-class schedulers and our simulated runtime both
ask.  The model is *descriptor-driven*: sustained rates come from explicit
PDL properties (``PEAK_GFLOPS_DP``, ``DGEMM_EFFICIENCY``, ``FREQUENCY``)
with :mod:`repro.perf.calibration` defaults filling gaps — exactly the
paper's "performance relevant observations can now be related ... to
abstract architectural patterns expressed in the PDL".

Two model families cover the kernels in this reproduction:

* **compute-bound**: ``time = flops / sustained_flops + launch_overhead``
  (DGEMM and friends), with an efficiency knee for tiles too small to
  amortize (important to reproduce why tiny block sizes hurt GPUs).
* **bandwidth-bound**: ``time = bytes / stream_bandwidth`` (vector add,
  copies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import PerfModelError
from repro.model.entities import ProcessingUnit
from repro.perf.calibration import ARCH_DEFAULTS, ArchCalibration

__all__ = ["PUPerformance", "PerfModel", "performance_of"]

#: problem sizes below which accelerators cannot reach their sustained rate;
#: models an efficiency ramp kernel ~ n / (n + n_half) (Hockney-style)
_GPU_DGEMM_N_HALF = 512.0
_CPU_DGEMM_N_HALF = 32.0


@dataclass(frozen=True)
class PUPerformance:
    """Resolved performance figures for one processing unit."""

    pu_id: str
    architecture: str
    peak_gflops_dp: float
    dgemm_efficiency: float
    stream_bandwidth_gbs: float
    kernel_launch_overhead_s: float

    @property
    def sustained_dgemm_gflops(self) -> float:
        return self.peak_gflops_dp * self.dgemm_efficiency


def performance_of(pu: ProcessingUnit) -> PUPerformance:
    """Resolve a PU's performance figures (descriptor first, defaults second)."""
    arch = pu.architecture
    if arch is None:
        raise PerfModelError(
            f"PU {pu.id!r} lacks an ARCHITECTURE property; cannot model it"
        )
    defaults: Optional[ArchCalibration] = ARCH_DEFAULTS.get(arch)

    def resolve(prop_name: str, default_value: Optional[float]) -> float:
        value = pu.descriptor.get_float(prop_name)
        if value is not None:
            return value
        if default_value is not None:
            return default_value
        raise PerfModelError(
            f"PU {pu.id!r} ({arch}): no {prop_name} property and no"
            f" calibration default for architecture {arch!r}"
        )

    return PUPerformance(
        pu_id=pu.id,
        architecture=arch,
        peak_gflops_dp=resolve(
            "PEAK_GFLOPS_DP", defaults.peak_gflops_dp if defaults else None
        ),
        dgemm_efficiency=resolve(
            "DGEMM_EFFICIENCY", defaults.dgemm_efficiency if defaults else None
        ),
        stream_bandwidth_gbs=resolve(
            "STREAM_BANDWIDTH_GBS", defaults.stream_bandwidth_gbs if defaults else None
        ),
        kernel_launch_overhead_s=(
            defaults.kernel_launch_overhead_s if defaults else 0.0
        ),
    )


class PerfModel:
    """Kernel-duration estimator for the PUs of one platform."""

    def __init__(self):
        self._cache: dict[str, PUPerformance] = {}

    def pu_performance(self, pu: ProcessingUnit) -> PUPerformance:
        perf = self._cache.get(pu.id)
        if perf is None:
            perf = performance_of(pu)
            self._cache[pu.id] = perf
        return perf

    def invalidate(self, pu_id: Optional[str] = None) -> None:
        """Drop cached rates so descriptor changes are re-resolved.

        Dynamic events (DVFS, property re-instantiation) mutate the
        descriptor properties this model reads; callers must invalidate
        either the affected PU or, with no argument, the whole cache.
        """
        if pu_id is None:
            self._cache.clear()
        else:
            self._cache.pop(pu_id, None)

    # -- kernel models ------------------------------------------------------
    def dgemm_time(self, pu: ProcessingUnit, m: int, n: int, k: int) -> float:
        """Estimated seconds for a dense DP ``C += A(m×k) · B(k×n)``."""
        perf = self.pu_performance(pu)
        flops = 2.0 * m * n * k
        n_half = _GPU_DGEMM_N_HALF if perf.architecture == "gpu" else _CPU_DGEMM_N_HALF
        geo = (m * n * k) ** (1.0 / 3.0)
        efficiency_ramp = geo / (geo + n_half)
        rate = perf.sustained_dgemm_gflops * 1e9 * efficiency_ramp
        if rate <= 0:
            raise PerfModelError(f"PU {pu.id!r} has non-positive DGEMM rate")
        return flops / rate + perf.kernel_launch_overhead_s

    def bandwidth_bound_time(self, pu: ProcessingUnit, nbytes: float) -> float:
        """Estimated seconds for a streaming kernel touching ``nbytes``."""
        perf = self.pu_performance(pu)
        bandwidth = perf.stream_bandwidth_gbs * 1e9
        return nbytes / bandwidth + perf.kernel_launch_overhead_s

    def flops_bound_time(self, pu: ProcessingUnit, flops: float) -> float:
        """Estimated seconds for ``flops`` at the PU's sustained DGEMM rate."""
        perf = self.pu_performance(pu)
        return flops / (perf.sustained_dgemm_gflops * 1e9) + (
            perf.kernel_launch_overhead_s
        )

    def estimate(
        self,
        pu: ProcessingUnit,
        *,
        kernel: str,
        flops: float = 0.0,
        bytes_touched: float = 0.0,
        dims: Optional[tuple[int, ...]] = None,
    ) -> float:
        """Generic entry point used by the runtime.

        DGEMM-shaped kernels (``dims == (m, n, k)``) use the dedicated
        model; otherwise the max of the compute-bound and bandwidth-bound
        estimates (roofline) is returned.
        """
        if kernel.startswith("dgemm") and dims is not None and len(dims) == 3:
            return self.dgemm_time(pu, *dims)
        perf = self.pu_performance(pu)
        compute = flops / (perf.sustained_dgemm_gflops * 1e9) if flops else 0.0
        memory = (
            bytes_touched / (perf.stream_bandwidth_gbs * 1e9) if bytes_touched else 0.0
        )
        if not flops and not bytes_touched:
            raise PerfModelError(
                f"kernel {kernel!r}: need flops and/or bytes_touched to estimate"
            )
        return max(compute, memory) + perf.kernel_launch_overhead_s
