"""Simulated OpenCL runtime (``clGetDeviceInfo``-shaped query surface).

The paper's Listing 2 shows GPU worker properties "generated from OpenCL
run-time libraries".  Offline, this module plays the role of the Nvidia
OpenCL runtime: it exposes platforms and devices whose info dictionaries
are backed by :mod:`repro.discovery.database`, and
:mod:`repro.discovery.generator` turns those answers into PDL properties of
type ``ocl:oclDevicePropertyType`` — byte-identical in structure to the
paper's listing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import DiscoveryError
from repro.discovery.database import CpuSpec, GpuSpec, cpu_spec, gpu_spec

__all__ = ["SimulatedDevice", "SimulatedOpenCLPlatform", "SimulatedOpenCLRuntime"]


@dataclass
class SimulatedDevice:
    """One OpenCL device; ``get_info`` mirrors ``clGetDeviceInfo`` keys."""

    spec: Union[GpuSpec, CpuSpec]
    device_type: str  # "GPU" | "CPU" | "ACCELERATOR"
    index: int = 0

    def get_info(self) -> dict[str, object]:
        """All CL_DEVICE_* answers (prefix stripped, as in the paper)."""
        if isinstance(self.spec, GpuSpec):
            return {
                "DEVICE_NAME": self.spec.name,
                "DEVICE_VENDOR": self.spec.vendor,
                "DEVICE_TYPE": self.device_type,
                "MAX_COMPUTE_UNITS": self.spec.compute_units,
                "MAX_WORK_ITEM_DIMENSIONS": 3,
                "MAX_WORK_GROUP_SIZE": self.spec.max_work_group_size,
                "MAX_CLOCK_FREQUENCY": (self.spec.max_clock_mhz, "MHz"),
                "GLOBAL_MEM_SIZE": (self.spec.global_mem_kb, "kB"),
                "LOCAL_MEM_SIZE": (self.spec.local_mem_kb, "kB"),
                "EXTENSIONS": " ".join(self.spec.extensions),
                "AVAILABLE": True,
            }
        return {
            "DEVICE_NAME": self.spec.name,
            "DEVICE_VENDOR": self.spec.vendor,
            "DEVICE_TYPE": self.device_type,
            "MAX_COMPUTE_UNITS": self.spec.total_cores,
            "MAX_WORK_ITEM_DIMENSIONS": 3,
            "MAX_WORK_GROUP_SIZE": 1024,
            "MAX_CLOCK_FREQUENCY": (int(self.spec.frequency_ghz * 1000), "MHz"),
            "GLOBAL_MEM_CACHE_SIZE": (self.spec.l3_cache_kb, "kB"),
            "AVAILABLE": True,
        }

    def info(self, key: str):
        """Single-key query (raises on unknown keys like a real runtime)."""
        table = self.get_info()
        try:
            return table[key]
        except KeyError:
            raise DiscoveryError(
                f"device {self.spec.name!r} does not answer {key!r};"
                f" known keys: {sorted(table)}"
            ) from None


@dataclass
class SimulatedOpenCLPlatform:
    """One OpenCL platform (vendor driver) with its devices."""

    name: str
    vendor: str
    version: str
    devices: list[SimulatedDevice] = field(default_factory=list)

    def get_devices(self, device_type: Optional[str] = None) -> list[SimulatedDevice]:
        if device_type is None or device_type == "ALL":
            return list(self.devices)
        return [d for d in self.devices if d.device_type == device_type]

    def get_info(self) -> dict[str, str]:
        return {
            "PLATFORM_NAME": self.name,
            "PLATFORM_VENDOR": self.vendor,
            "PLATFORM_VERSION": self.version,
            "PLATFORM_PROFILE": "FULL_PROFILE",
        }


class SimulatedOpenCLRuntime:
    """Top-level entry point mirroring ``clGetPlatformIDs``.

    Build a runtime describing a machine, then enumerate::

        rt = SimulatedOpenCLRuntime.for_machine(
            cpu="Intel Xeon X5550", gpus=["GeForce GTX 480", "GeForce GTX 285"])
        for platform in rt.get_platforms():
            for dev in platform.get_devices("GPU"):
                print(dev.info("DEVICE_NAME"))
    """

    def __init__(self, platforms: Optional[list[SimulatedOpenCLPlatform]] = None):
        self._platforms = platforms or []

    def get_platforms(self) -> list[SimulatedOpenCLPlatform]:
        return list(self._platforms)

    def add_platform(self, platform: SimulatedOpenCLPlatform) -> None:
        self._platforms.append(platform)

    def all_devices(self, device_type: Optional[str] = None) -> list[SimulatedDevice]:
        out: list[SimulatedDevice] = []
        for platform in self._platforms:
            out.extend(platform.get_devices(device_type))
        return out

    @classmethod
    def for_machine(
        cls,
        *,
        cpu: Optional[str] = None,
        gpus: Optional[list[str]] = None,
    ) -> "SimulatedOpenCLRuntime":
        """Construct the runtime a machine with these parts would expose.

        Nvidia GPUs appear under an "NVIDIA CUDA" platform, AMD parts under
        "AMD Accelerated Parallel Processing" (which also exposes the CPU,
        as AMD's driver did at the time).
        """
        runtime = cls()
        gpus = gpus or []
        nvidia = [gpu_spec(name) for name in gpus if "GeForce" in gpu_spec(name).name
                  or "Tesla" in gpu_spec(name).name]
        amd = [gpu_spec(name) for name in gpus if gpu_spec(name).vendor.startswith("Advanced")]
        if nvidia:
            runtime.add_platform(
                SimulatedOpenCLPlatform(
                    name="NVIDIA CUDA",
                    vendor="NVIDIA Corporation",
                    version="OpenCL 1.1 CUDA 3.2.1",
                    devices=[
                        SimulatedDevice(spec, "GPU", i) for i, spec in enumerate(nvidia)
                    ],
                )
            )
        if amd or cpu:
            devices: list[SimulatedDevice] = [
                SimulatedDevice(spec, "GPU", i) for i, spec in enumerate(amd)
            ]
            if cpu:
                devices.append(SimulatedDevice(cpu_spec(cpu), "CPU", len(devices)))
            runtime.add_platform(
                SimulatedOpenCLPlatform(
                    name="AMD Accelerated Parallel Processing",
                    vendor="Advanced Micro Devices, Inc.",
                    version="OpenCL 1.1 AMD-APP-SDK-v2.4",
                    devices=devices,
                )
            )
        return runtime
