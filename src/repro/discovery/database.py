"""Device specification database backing the discovery simulators.

The paper generates PDL descriptors "from OpenCL run-time libraries"
(Listing 2).  Offline we replace the driver query with a curated database
of period-accurate device specs — including the exact devices of the
paper's testbed (GTX 480, GTX 285, Xeon X5550) — exposed through the same
query surface a real runtime would offer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiscoveryError

__all__ = ["GpuSpec", "CpuSpec", "GPU_DATABASE", "CPU_DATABASE", "gpu_spec", "cpu_spec"]


@dataclass(frozen=True)
class GpuSpec:
    """Specification of one GPU device."""

    name: str
    vendor: str
    compute_units: int  # OpenCL compute units == CUDA SMs
    max_clock_mhz: int
    global_mem_kb: int
    local_mem_kb: int
    max_work_group_size: int
    compute_capability: str
    peak_gflops_dp: float
    dgemm_efficiency: float  # fraction of DP peak a tuned DGEMM reaches
    mem_bandwidth_gbs: float
    pcie_bandwidth_gbs: float = 5.7  # PCIe 2.0 x16 effective
    extensions: tuple[str, ...] = ("cl_khr_fp64",)

    @property
    def sustained_dgemm_gflops(self) -> float:
        return self.peak_gflops_dp * self.dgemm_efficiency


@dataclass(frozen=True)
class CpuSpec:
    """Specification of one CPU package."""

    name: str
    vendor: str
    sockets: int
    cores_per_socket: int
    frequency_ghz: float
    flops_per_cycle_dp: int  # SIMD DP FLOPs per cycle per core
    l3_cache_kb: int
    l2_cache_kb: int
    l1_cache_kb: int
    mem_bandwidth_gbs: float
    dgemm_efficiency: float  # tuned BLAS fraction of peak (GotoBLAS2-class)

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def peak_gflops_dp_per_core(self) -> float:
        return self.frequency_ghz * self.flops_per_cycle_dp

    @property
    def sustained_dgemm_gflops_per_core(self) -> float:
        return self.peak_gflops_dp_per_core * self.dgemm_efficiency


GPU_DATABASE: dict[str, GpuSpec] = {
    spec.name: spec
    for spec in (
        GpuSpec(
            name="GeForce GTX 480",
            vendor="NVIDIA Corporation",
            compute_units=15,
            max_clock_mhz=1401,
            global_mem_kb=1_572_864,
            local_mem_kb=48,
            max_work_group_size=1024,
            compute_capability="2.0",
            # consumer Fermi: DP throughput capped at 1/8 of SP
            peak_gflops_dp=168.0,
            dgemm_efficiency=0.70,
            mem_bandwidth_gbs=177.4,
        ),
        GpuSpec(
            name="GeForce GTX 285",
            vendor="NVIDIA Corporation",
            compute_units=30,
            max_clock_mhz=1476,
            global_mem_kb=1_048_576,
            local_mem_kb=16,
            max_work_group_size=512,
            compute_capability="1.3",
            peak_gflops_dp=88.5,
            dgemm_efficiency=0.80,
            mem_bandwidth_gbs=159.0,
        ),
        GpuSpec(
            name="Tesla C2050",
            vendor="NVIDIA Corporation",
            compute_units=14,
            max_clock_mhz=1150,
            global_mem_kb=3_145_728,
            local_mem_kb=48,
            max_work_group_size=1024,
            compute_capability="2.0",
            peak_gflops_dp=515.0,
            dgemm_efficiency=0.65,
            mem_bandwidth_gbs=144.0,
        ),
        GpuSpec(
            name="Radeon HD 5870",
            vendor="Advanced Micro Devices, Inc.",
            compute_units=20,
            max_clock_mhz=850,
            global_mem_kb=1_048_576,
            local_mem_kb=32,
            max_work_group_size=256,
            compute_capability="",
            peak_gflops_dp=544.0,
            dgemm_efficiency=0.45,
            mem_bandwidth_gbs=153.6,
        ),
    )
}

CPU_DATABASE: dict[str, CpuSpec] = {
    spec.name: spec
    for spec in (
        CpuSpec(
            name="Intel Xeon X5550",
            vendor="GenuineIntel",
            sockets=2,
            cores_per_socket=4,
            frequency_ghz=2.66,
            flops_per_cycle_dp=4,  # SSE4.2: 2 mul + 2 add DP per cycle
            l3_cache_kb=8192,
            l2_cache_kb=256,
            l1_cache_kb=32,
            mem_bandwidth_gbs=25.6,
            dgemm_efficiency=0.90,
        ),
        CpuSpec(
            name="Intel Xeon E5620",
            vendor="GenuineIntel",
            sockets=2,
            cores_per_socket=4,
            frequency_ghz=2.40,
            flops_per_cycle_dp=4,
            l3_cache_kb=12288,
            l2_cache_kb=256,
            l1_cache_kb=32,
            mem_bandwidth_gbs=25.6,
            dgemm_efficiency=0.90,
        ),
        CpuSpec(
            name="AMD Opteron 6172",
            vendor="AuthenticAMD",
            sockets=4,
            cores_per_socket=12,
            frequency_ghz=2.10,
            flops_per_cycle_dp=4,
            l3_cache_kb=12288,
            l2_cache_kb=512,
            l1_cache_kb=64,
            mem_bandwidth_gbs=42.7,
            dgemm_efficiency=0.85,
        ),
        CpuSpec(
            name="Cell BE PPE",
            vendor="IBM",
            sockets=1,
            cores_per_socket=1,
            frequency_ghz=3.2,
            flops_per_cycle_dp=2,
            l3_cache_kb=0,
            l2_cache_kb=512,
            l1_cache_kb=32,
            mem_bandwidth_gbs=25.6,
            dgemm_efficiency=0.80,
        ),
    )
}


def gpu_spec(name: str) -> GpuSpec:
    """Look up a GPU by model name (exact or unique substring match)."""
    return _lookup(GPU_DATABASE, name, "GPU")


def cpu_spec(name: str) -> CpuSpec:
    """Look up a CPU by model name (exact or unique substring match)."""
    return _lookup(CPU_DATABASE, name, "CPU")


def _lookup(db, name: str, kind: str):
    if name in db:
        return db[name]
    matches = [spec for key, spec in db.items() if name.lower() in key.lower()]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise DiscoveryError(f"unknown {kind} model {name!r}; known: {sorted(db)}")
    raise DiscoveryError(
        f"ambiguous {kind} model {name!r} matches"
        f" {sorted(s.name for s in matches)}"
    )
