"""Automatic PDL descriptor generation from discovery sources.

Simulated stand-ins for the toolchain layers the paper names: hwloc-style
topology exploration, OpenCL runtime queries, and a curated device
database covering the paper's testbed hardware.
"""

from repro.discovery.database import (
    CPU_DATABASE,
    GPU_DATABASE,
    CpuSpec,
    GpuSpec,
    cpu_spec,
    gpu_spec,
)
from repro.discovery.generator import (
    generate_from_hwloc,
    generate_from_opencl,
    generate_host_platform,
    generate_machine_platform,
    opencl_properties,
)
from repro.discovery.hwloc_sim import (
    TopologyObject,
    read_host_topology,
    synthetic_topology,
)
from repro.discovery.opencl_sim import (
    SimulatedDevice,
    SimulatedOpenCLPlatform,
    SimulatedOpenCLRuntime,
)

__all__ = [
    "CpuSpec",
    "GpuSpec",
    "CPU_DATABASE",
    "GPU_DATABASE",
    "cpu_spec",
    "gpu_spec",
    "TopologyObject",
    "synthetic_topology",
    "read_host_topology",
    "SimulatedDevice",
    "SimulatedOpenCLPlatform",
    "SimulatedOpenCLRuntime",
    "generate_from_opencl",
    "generate_from_hwloc",
    "generate_machine_platform",
    "generate_host_platform",
    "opencl_properties",
]
