"""Automatic PDL descriptor generation (paper Fig. 1: "possible automatic
generation of PDL descriptors for various platforms").

Combines the two discovery sources the paper names — hwloc-style topology
exploration and OpenCL runtime queries — into complete, validated
:class:`~repro.model.platform.Platform` descriptions.  Generated properties
are marked ``fixed="false"`` with a ``source`` note: they were instantiated
by a tool and may be re-instantiated by a later run (paper §III-B).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DiscoveryError
from repro.model.entities import Interconnect, Master, MemoryRegion, Worker
from repro.model.platform import Platform
from repro.model.properties import Property, PropertyValue
from repro.discovery.database import cpu_spec
from repro.discovery.hwloc_sim import (
    TopologyObject,
    read_host_topology,
    synthetic_topology,
)
from repro.discovery.opencl_sim import SimulatedDevice, SimulatedOpenCLRuntime

__all__ = [
    "generate_from_opencl",
    "generate_from_hwloc",
    "generate_machine_platform",
    "generate_host_platform",
    "opencl_properties",
]

_OCL_TYPE = "ocl:oclDevicePropertyType"
_HWLOC_TYPE = "hwloc:hwlocObjPropertyType"
_CUDA_TYPE = "cuda:cudaDevicePropertyType"


def _prop(name, value, *, type_name, source):
    """A generated (unfixed) property, optionally with a unit."""
    if isinstance(value, tuple):
        magnitude, unit = value
        return Property(
            name,
            PropertyValue(magnitude, unit),
            fixed=False,
            type_name=type_name,
            source=source,
        )
    return Property(name, value, fixed=False, type_name=type_name, source=source)


def opencl_properties(device: SimulatedDevice) -> list[Property]:
    """Listing-2-shaped ``ocl:`` properties for one discovered device."""
    return [
        _prop(key, value, type_name=_OCL_TYPE, source="opencl-sim")
        for key, value in device.get_info().items()
    ]


def _gpu_worker(device: SimulatedDevice, worker_id: str) -> Worker:
    spec = device.spec
    worker = Worker(worker_id, name=spec.name)
    worker.descriptor.add(Property("ARCHITECTURE", "gpu"))
    worker.descriptor.add(Property("MODEL", spec.name))
    worker.descriptor.add(Property("PEAK_GFLOPS_DP", f"{spec.peak_gflops_dp}"))
    worker.descriptor.add(Property("DGEMM_EFFICIENCY", f"{spec.dgemm_efficiency}"))
    for prop in opencl_properties(device):
        worker.descriptor.add(prop)
    if spec.compute_capability:
        worker.descriptor.add(
            _prop(
                "COMPUTE_CAPABILITY",
                spec.compute_capability,
                type_name=_CUDA_TYPE,
                source="cuda-sim",
            )
        )
    region = MemoryRegion(f"{worker_id}-mem")
    region.descriptor.add(Property("SIZE", PropertyValue(spec.global_mem_kb, "kB")))
    region.descriptor.add(
        Property("BANDWIDTH", PropertyValue(spec.mem_bandwidth_gbs, "GB/s"))
    )
    worker.add_memory_region(region)
    worker.add_group("gpus")
    return worker


def generate_from_opencl(
    runtime: SimulatedOpenCLRuntime,
    *,
    name: str = "opencl-discovered",
    host_architecture: str = "x86_64",
) -> Platform:
    """Platform description from OpenCL enumeration alone.

    Produces the Listing-1 shape: one Master host plus one gpu Worker per
    discovered GPU device, linked by rDMA interconnects.
    """
    master = Master("host")
    master.descriptor.add(Property("ARCHITECTURE", host_architecture))
    master.add_group("hosts")
    gpu_devices = runtime.all_devices("GPU")
    if not gpu_devices:
        raise DiscoveryError("OpenCL runtime exposes no GPU devices")
    for i, device in enumerate(gpu_devices):
        worker = _gpu_worker(device, f"gpu{i}")
        master.add_child(worker)
        ic = Interconnect("host", worker.id, type="PCIe", scheme="rDMA", id=f"pcie{i}")
        if hasattr(device.spec, "pcie_bandwidth_gbs"):
            ic.descriptor.add(
                Property(
                    "BANDWIDTH",
                    PropertyValue(device.spec.pcie_bandwidth_gbs, "GB/s"),
                )
            )
        master.add_interconnect(ic)
    platform = Platform(name, [master])
    platform.validate()
    return platform


def generate_from_hwloc(
    topology: TopologyObject,
    *,
    name: str = "hwloc-discovered",
) -> Platform:
    """Platform description from an hwloc-style topology tree.

    The machine becomes a Master; each core a Worker annotated with
    ``hwloc:`` properties.  Homogeneous cores are collapsed into one
    Worker entity with ``quantity=n`` (keeping descriptors compact, as the
    shipped Xeon descriptors do).
    """
    cores = topology.by_type("Core")
    if not cores:
        raise DiscoveryError("topology has no Core objects")

    master = Master("host")
    master.descriptor.add(Property("ARCHITECTURE", "x86_64"))
    model = topology.attrs.get("CPU_MODEL")
    if model:
        master.descriptor.add(Property("MODEL", str(model)))
        master.descriptor.add(
            _prop("CPU_MODEL", str(model), type_name=_HWLOC_TYPE, source="hwloc-sim")
        )
    master.add_group("hosts")

    local_mem = topology.attrs.get("LOCAL_MEMORY")
    if local_mem:
        region = MemoryRegion("main")
        region.descriptor.add(Property("SIZE", PropertyValue(*local_mem)))
        master.add_memory_region(region)

    worker = Worker("cpu", quantity=len(cores), name=str(model or "cpu core"))
    worker.descriptor.add(Property("ARCHITECTURE", "x86_64"))
    first = cores[0]
    if "FREQUENCY_GHZ" in first.attrs and first.attrs["FREQUENCY_GHZ"]:
        worker.descriptor.add(
            Property("FREQUENCY", PropertyValue(first.attrs["FREQUENCY_GHZ"], "GHz"))
        )
    if "PEAK_GFLOPS_DP" in first.attrs:
        worker.descriptor.add(
            Property("PEAK_GFLOPS_DP", f"{first.attrs['PEAK_GFLOPS_DP']:.4g}")
        )
    if "DGEMM_EFFICIENCY" in first.attrs:
        worker.descriptor.add(
            Property("DGEMM_EFFICIENCY", f"{first.attrs['DGEMM_EFFICIENCY']}")
        )
    caches = topology.by_type("L3Cache")
    if caches:
        worker.descriptor.add(
            _prop(
                "CACHE_SIZE",
                caches[0].attrs["CACHE_SIZE"],
                type_name=_HWLOC_TYPE,
                source="hwloc-sim",
            )
        )
    worker.add_group("cpus")
    master.add_child(worker)
    master.add_interconnect(
        Interconnect("host", "cpu", type="SHM", scheme="shared-memory", id="shm")
    )
    platform = Platform(name, [master])
    platform.validate()
    return platform


def generate_machine_platform(
    *,
    cpu: str,
    gpus: Optional[list[str]] = None,
    name: Optional[str] = None,
    memory_gb: float = 48.0,
) -> Platform:
    """Full discovery pipeline for a named machine configuration.

    hwloc supplies the CPU side, the simulated OpenCL runtime the GPU side;
    results are merged into one Master as in the shipped
    ``xeon_x5550_2gpu`` descriptor.
    """
    gpus = gpus or []
    spec = cpu_spec(cpu)
    platform = generate_from_hwloc(
        synthetic_topology(spec.name, memory_gb=memory_gb),
        name=name or f"discovered-{spec.name.replace(' ', '-').lower()}",
    )
    master = platform.masters[0]

    if gpus:
        runtime = SimulatedOpenCLRuntime.for_machine(cpu=spec.name, gpus=gpus)
        for i, device in enumerate(runtime.all_devices("GPU")):
            worker = _gpu_worker(device, f"gpu{i}")
            master.add_child(worker)
            ic = Interconnect(
                "host", worker.id, type="PCIe", scheme="rDMA", id=f"pcie{i}"
            )
            ic.descriptor.add(
                Property(
                    "BANDWIDTH", PropertyValue(device.spec.pcie_bandwidth_gbs, "GB/s")
                )
            )
            ic.descriptor.add(Property("LATENCY", PropertyValue(15, "us")))
            master.add_interconnect(ic)
    platform.validate()
    return platform


def generate_host_platform(
    *,
    name: str = "discovered-host",
    gpu_models: Optional[list[str]] = None,
) -> Platform:
    """Descriptor for the *current* host (real ``/proc/cpuinfo`` when
    available, synthetic Xeon X5550 otherwise), plus requested GPUs."""
    topology = read_host_topology()
    if topology is None:
        topology = synthetic_topology("Intel Xeon X5550")
    platform = generate_from_hwloc(topology, name=name)
    if gpu_models:
        master = platform.masters[0]
        runtime = SimulatedOpenCLRuntime.for_machine(gpus=list(gpu_models))
        for i, device in enumerate(runtime.all_devices("GPU")):
            worker = _gpu_worker(device, f"gpu{i}")
            master.add_child(worker)
            master.add_interconnect(
                Interconnect("host", worker.id, type="PCIe", scheme="rDMA", id=f"pcie{i}")
            )
        platform.validate()
    return platform
