"""Simulated hwloc topology source.

hwloc (§V, [11]) exposes the hardware locality tree — machine, NUMA nodes,
packages, caches, cores.  This module provides (a) a synthetic topology
model built from :class:`~repro.discovery.database.CpuSpec` entries and
(b) a best-effort reader of the *actual* host via ``/proc/cpuinfo`` (Linux
only), both returning the same :class:`TopologyObject` tree so the PDL
generator can consume either interchangeably.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.discovery.database import CpuSpec, cpu_spec

__all__ = [
    "TopologyObject",
    "synthetic_topology",
    "read_host_topology",
]


@dataclass
class TopologyObject:
    """One node of the hwloc-style topology tree."""

    obj_type: str  # Machine | NUMANode | Package | L3Cache | L2Cache | L1Cache | Core | PU
    logical_index: int
    os_index: int = -1
    attrs: dict[str, object] = field(default_factory=dict)
    children: list["TopologyObject"] = field(default_factory=list)
    parent: Optional["TopologyObject"] = None

    def add(self, child: "TopologyObject") -> "TopologyObject":
        child.parent = self
        self.children.append(child)
        return child

    def walk(self) -> Iterator["TopologyObject"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def by_type(self, obj_type: str) -> list["TopologyObject"]:
        return [obj for obj in self.walk() if obj.obj_type == obj_type]

    def cores(self) -> list["TopologyObject"]:
        return self.by_type("Core")

    def __repr__(self) -> str:
        return f"TopologyObject({self.obj_type}#{self.logical_index})"


def synthetic_topology(cpu_model: str, *, memory_gb: float = 48.0) -> TopologyObject:
    """Build the topology tree a machine with ``cpu_model`` would expose.

    Shape: Machine → one NUMANode+Package per socket → shared L3 →
    per-core L2/L1 → Core.  Index numbering matches hwloc's logical order.
    """
    spec: CpuSpec = cpu_spec(cpu_model)
    machine = TopologyObject(
        "Machine",
        0,
        0,
        attrs={
            "CPU_MODEL": spec.name,
            "LOCAL_MEMORY": (int(memory_gb * 1024), "MB"),
        },
    )
    core_idx = 0
    for socket in range(spec.sockets):
        numa = machine.add(
            TopologyObject(
                "NUMANode",
                socket,
                socket,
                attrs={"LOCAL_MEMORY": (int(memory_gb * 1024 / spec.sockets), "MB")},
            )
        )
        package = numa.add(
            TopologyObject("Package", socket, socket, attrs={"CPU_MODEL": spec.name})
        )
        l3 = package.add(
            TopologyObject(
                "L3Cache",
                socket,
                attrs={"CACHE_SIZE": (spec.l3_cache_kb, "kB"), "CACHE_LINE_SIZE": (64, "B")},
            )
        ) if spec.l3_cache_kb else package
        for _ in range(spec.cores_per_socket):
            l2 = l3.add(
                TopologyObject(
                    "L2Cache",
                    core_idx,
                    attrs={"CACHE_SIZE": (spec.l2_cache_kb, "kB")},
                )
            )
            l1 = l2.add(
                TopologyObject(
                    "L1Cache",
                    core_idx,
                    attrs={"CACHE_SIZE": (spec.l1_cache_kb, "kB")},
                )
            )
            l1.add(
                TopologyObject(
                    "Core",
                    core_idx,
                    core_idx,
                    attrs={
                        "CPU_MODEL": spec.name,
                        "NUMA_NODE": socket,
                        "FREQUENCY_GHZ": spec.frequency_ghz,
                        "PEAK_GFLOPS_DP": spec.peak_gflops_dp_per_core,
                        "DGEMM_EFFICIENCY": spec.dgemm_efficiency,
                    },
                )
            )
            core_idx += 1
    return machine


def read_host_topology(proc_cpuinfo: str = "/proc/cpuinfo") -> Optional[TopologyObject]:
    """Best-effort topology of the *current* host from ``/proc/cpuinfo``.

    Returns ``None`` when the file is unavailable (non-Linux).  The result
    has a flat Machine → Core shape — good enough for descriptor
    generation; cache levels require real hwloc.
    """
    if not os.path.exists(proc_cpuinfo):
        return None
    try:
        with open(proc_cpuinfo, "r", encoding="utf-8", errors="replace") as handle:
            text = handle.read()
    except OSError:
        return None

    model_name = "unknown"
    match = re.search(r"model name\s*:\s*(.+)", text)
    if match:
        model_name = match.group(1).strip()
    processors = re.findall(r"^processor\s*:\s*(\d+)", text, flags=re.MULTILINE)
    freq = 0.0
    fmatch = re.search(r"cpu MHz\s*:\s*([\d.]+)", text)
    if fmatch:
        freq = float(fmatch.group(1)) / 1000.0

    machine = TopologyObject("Machine", 0, 0, attrs={"CPU_MODEL": model_name})
    for index_str in processors:
        index = int(index_str)
        machine.add(
            TopologyObject(
                "Core",
                index,
                index,
                attrs={"CPU_MODEL": model_name, "FREQUENCY_GHZ": freq},
            )
        )
    return machine
